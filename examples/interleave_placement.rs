//! Mixed placement exploration — the paper's discussion section asks
//! whether there is "room for exploration w.r.t. determining the optimal
//! memory tier per access type". This example sweeps DRAM/NVM *interleaved*
//! placements (the `numactl --interleave` analogue) and shows where a mixed
//! allocation lands between the pure tiers.
//!
//! ```text
//! cargo run --release --example interleave_placement -- [workload]
//! ```
//! (default workload: `pagerank`)

use spark_memtier::engine::{ExecutorPlacement, SparkConf, SparkContext};
use spark_memtier::memsim::{CpuBindPolicy, MemBindPolicy, TierId};
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn run_with(mem: MemBindPolicy, app: &str) -> (f64, f64) {
    let conf = SparkConf {
        placement: ExecutorPlacement {
            cpu: CpuBindPolicy::Socket(0),
            mem,
        },
        ..SparkConf::default()
    };
    let sc = SparkContext::new(conf).expect("context");
    workload_by_name(app)
        .expect("workload")
        .run(&sc, DataSize::Large, 42)
        .expect("run");
    let report = sc.finish();
    let energy: f64 = TierId::all()
        .iter()
        .map(|&t| report.telemetry.energy.tier(t).dynamic_j)
        .sum();
    (report.elapsed.as_secs_f64(), energy)
}

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "pagerank".into());
    println!("{app}-large under pure and interleaved DRAM/NVM placements:\n");

    let placements: Vec<(&str, MemBindPolicy)> = vec![
        (
            "pure DRAM (Tier 0)",
            MemBindPolicy::Tier(TierId::LOCAL_DRAM),
        ),
        (
            "interleave DRAM+NVM",
            MemBindPolicy::Interleave([TierId::LOCAL_DRAM, TierId::NVM_NEAR]),
        ),
        ("pure NVM (Tier 2)", MemBindPolicy::Tier(TierId::NVM_NEAR)),
    ];

    let mut table = AsciiTable::new(vec!["placement", "time (s)", "dynamic energy (J)"])
        .title(format!("{app}-large placement sweep"));
    let mut times = Vec::new();
    for (name, mem) in placements {
        let (t, e) = run_with(mem, &app);
        times.push((name, t));
        table.row(vec![name.to_string(), fmt_f64(t, 4), fmt_f64(e, 4)]);
    }
    println!("{}", table.render());

    let dram = times[0].1;
    let mixed = times[1].1;
    let nvm = times[2].1;
    println!(
        "interleaving recovers {:.0}% of the DRAM↔NVM gap while only half the pages \
         live in (cheap, capacious) Optane — the capacity/performance middle ground \
         the paper's discussion points at.",
        (nvm - mixed) / (nvm - dram).max(1e-12) * 100.0
    );
}
