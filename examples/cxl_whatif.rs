//! CXL what-if study — the paper's introduction points at CXL memory
//! expanders as the next tier. This example swaps the far Optane bank
//! (Tier 3) for a CXL-attached DRAM expander and reruns the suite: where
//! would each workload land if the slowest tier became cheap remote DRAM
//! instead of remote persistent memory?
//!
//! ```text
//! cargo run --release --example cxl_whatif
//! ```

use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::{MemSimConfig, TierId};
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{all_workloads, DataSize, Workload};

fn run(workload: &dyn Workload, memsim: MemSimConfig, tier: TierId) -> f64 {
    let mut conf = SparkConf::bound_to_tier(tier);
    conf.memsim = memsim;
    let sc = SparkContext::new(conf).expect("context");
    workload.run(&sc, DataSize::Large, 42).expect("run");
    sc.elapsed().as_secs_f64()
}

fn main() {
    println!("replacing Tier 3 (remote Optane) with a CXL DRAM expander…\n");
    let mut table = AsciiTable::new(vec![
        "workload",
        "Tier0 DRAM (s)",
        "Tier3 = Optane (s)",
        "Tier3 = CXL (s)",
        "CXL recovers",
    ])
    .title("Large inputs on the slowest tier: Optane vs CXL what-if");

    for w in all_workloads() {
        let t0 = run(
            w.as_ref(),
            MemSimConfig::paper_default(),
            TierId::LOCAL_DRAM,
        );
        let t_opt = run(w.as_ref(), MemSimConfig::paper_default(), TierId::NVM_FAR);
        let t_cxl = run(w.as_ref(), MemSimConfig::cxl_whatif(), TierId::NVM_FAR);
        let recovered = (t_opt - t_cxl) / (t_opt - t0).max(1e-12);
        table.row(vec![
            w.name().to_string(),
            fmt_f64(t0, 4),
            fmt_f64(t_opt, 4),
            fmt_f64(t_cxl, 4),
            format!("{:.0}%", recovered.clamp(0.0, 1.5) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "'CXL recovers' = fraction of the DRAM↔Optane gap closed by the expander. \
         Write-heavy workloads (lda) gain the most: CXL DRAM has no write asymmetry \
         and no endurance budget."
    );
}
