//! Spark vs MapReduce shuffle study — the paper's introduction motivates
//! Spark by its in-memory RDDs "avoiding expensive intermediate disk writes
//! found in prior big data frameworks, such as Hadoop". This example
//! quantifies that on the simulated testbed: the same workloads with the
//! shuffle kept in memory vs round-tripped through disk, across tiers.
//!
//! ```text
//! cargo run --release --example spark_vs_mapreduce
//! ```

use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{all_workloads, DataSize, Workload};

fn run(w: &dyn Workload, tier: TierId, through_disk: bool) -> f64 {
    let mut conf = SparkConf::bound_to_tier(tier);
    conf.shuffle_through_disk = through_disk;
    let sc = SparkContext::new(conf).expect("context");
    w.run(&sc, DataSize::Large, 42).expect("run");
    sc.elapsed().as_secs_f64()
}

fn main() {
    println!("in-memory shuffle (Spark) vs disk-materialized shuffle (MapReduce mode):\n");
    let mut table = AsciiTable::new(vec![
        "workload",
        "in-mem, Tier0 (s)",
        "disk, Tier0 (s)",
        "Spark advantage T0",
        "in-mem, Tier2 (s)",
        "disk, Tier2 (s)",
        "Spark advantage T2",
    ])
    .title("Large inputs; 'Spark advantage' = disk-shuffle time / in-memory time");

    let mut advantages = Vec::new();
    for w in all_workloads() {
        let mem0 = run(w.as_ref(), TierId::LOCAL_DRAM, false);
        let disk0 = run(w.as_ref(), TierId::LOCAL_DRAM, true);
        let mem2 = run(w.as_ref(), TierId::NVM_NEAR, false);
        let disk2 = run(w.as_ref(), TierId::NVM_NEAR, true);
        advantages.push(disk0 / mem0);
        table.row(vec![
            w.name().to_string(),
            fmt_f64(mem0, 4),
            fmt_f64(disk0, 4),
            format!("{:.2}x", disk0 / mem0),
            fmt_f64(mem2, 4),
            fmt_f64(disk2, 4),
            format!("{:.2}x", disk2 / mem2),
        ]);
    }
    println!("{}", table.render());
    let avg: f64 = advantages.iter().sum::<f64>() / advantages.len() as f64;
    println!(
        "average in-memory advantage on Tier 0: {avg:.2}x — and note the advantage \
         *shrinks* on the Optane tier: when memory itself is slow, materializing the \
         shuffle costs relatively less, which is exactly why persistent memory blurs \
         the memory/storage boundary the paper's architecture targets."
    );
}
