//! Energy & endurance study: run the suite's most write-intensive workload
//! (lda-large) on the Optane tier and break down where the joules go and
//! how fast the DIMMs wear — the quantitative side of Takeaways 3 and 5.
//!
//! ```text
//! cargo run --release --example energy_wear_study
//! ```

use spark_memtier::engine::SparkConf;
use spark_memtier::engine::SparkContext;
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn main() {
    let workload = workload_by_name("lda").expect("lda registered");

    let mut table = AsciiTable::new(vec![
        "tier",
        "time (s)",
        "static J",
        "dynamic J",
        "J/DIMM",
        "media writes",
        "write ratio",
    ])
    .title("lda-large: energy and write traffic per tier");

    let mut wear_lines = Vec::new();
    for tier in [TierId::LOCAL_DRAM, TierId::NVM_NEAR, TierId::NVM_FAR] {
        let sc = SparkContext::new(SparkConf::bound_to_tier(tier)).expect("context");
        workload.run(&sc, DataSize::Large, 42).expect("lda run");
        let report = sc.finish();
        let e = report.telemetry.energy.tier(tier);
        let c = report.telemetry.counters.tier(tier);
        table.row(vec![
            tier.to_string(),
            fmt_f64(report.elapsed.as_secs_f64(), 4),
            fmt_f64(e.static_j, 2),
            fmt_f64(e.dynamic_j, 3),
            fmt_f64(e.per_dimm_j(), 2),
            c.writes.to_string(),
            fmt_f64(c.writes as f64 / (c.reads + c.writes).max(1) as f64, 3),
        ]);
        for w in &report.telemetry.wear {
            if w.tier == tier && w.media_writes > 0 {
                // Project endurance if this workload looped forever.
                let life = w
                    .projected_lifetime
                    .map(|t| format!("{:.1} simulated years", t.as_secs_f64() / 3.15e7))
                    .unwrap_or_else(|| "n/a".into());
                wear_lines.push(format!(
                    "{tier}: {} media writes consumed {:.3e} of the endurance budget \
                     -> projected lifetime at this rate: {life}",
                    w.media_writes, w.consumed_fraction
                ));
            }
        }
    }
    println!("{}", table.render());
    println!("## endurance projection (Takeaway 3's long-term concern)");
    for line in wear_lines {
        println!("  {line}");
    }
}
