//! Tier explorer: characterize one workload across every memory tier and
//! input size — a single-app slice of the paper's Fig. 2 — and print a
//! placement recommendation.
//!
//! ```text
//! cargo run --release --example tier_explorer -- [workload]
//! ```
//! (default workload: `bayes`)

use spark_memtier::characterization::{run_scenarios, Scenario};
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "bayes".into());
    let workload = workload_by_name(&app).unwrap_or_else(|| {
        panic!("unknown workload {app:?}; try sort/repartition/als/bayes/rf/lda/pagerank")
    });
    println!(
        "characterizing `{}` ({})…\n",
        workload.name(),
        workload.category()
    );

    let scenarios: Vec<Scenario> = DataSize::all()
        .into_iter()
        .flat_map(|size| {
            let app = app.clone();
            TierId::all()
                .into_iter()
                .map(move |tier| Scenario::default_conf(&app, size, tier))
        })
        .collect();
    let results = run_scenarios(&scenarios, 8).expect("runs");

    let mut table = AsciiTable::new(vec![
        "size",
        "Tier0 (s)",
        "Tier1 (s)",
        "Tier2 (s)",
        "Tier3 (s)",
        "NVM slowdown",
        "NVM accesses",
    ])
    .title(format!("{app}: execution time per tier"));
    for (i, size) in DataSize::all().iter().enumerate() {
        let row = &results[i * 4..(i + 1) * 4];
        let slowdown = row[2].elapsed_s / row[0].elapsed_s;
        table.row(vec![
            size.label().to_string(),
            fmt_f64(row[0].elapsed_s, 4),
            fmt_f64(row[1].elapsed_s, 4),
            fmt_f64(row[2].elapsed_s, 4),
            fmt_f64(row[3].elapsed_s, 4),
            format!("{slowdown:.2}x"),
            row[2].bound_tier_accesses().to_string(),
        ]);
    }
    println!("{}", table.render());

    // Placement recommendation in the spirit of Takeaway 1.
    for (i, size) in DataSize::all().iter().enumerate() {
        let row = &results[i * 4..(i + 1) * 4];
        let m1 = (row[1].elapsed_s - row[0].elapsed_s) / row[1].elapsed_s;
        let m2 = (row[2].elapsed_s - row[0].elapsed_s) / row[2].elapsed_s;
        let advice = if m2 < 0.10 {
            "tier-tolerant: even the Optane tier costs <10% — a remote-placement candidate"
        } else if m1 < 0.10 {
            "remote-DRAM tolerant: keep off Optane, but remote DRAM is nearly free"
        } else {
            "tier-sensitive: keep on local DRAM"
        };
        println!(
            "{app}-{size}: {advice} (T1 margin {:.1}%, T2 margin {:.1}%)",
            m1 * 100.0,
            m2 * 100.0
        );
    }
}
