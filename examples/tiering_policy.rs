//! Tiering-policy sweep, on the real placement engine: executors allocate
//! from Optane, and a HeMem-style `HotCold` policy promotes the hottest
//! objects into a DRAM budget at every epoch — migrations charged through
//! the memory system like any other traffic. Sweeping the budget traces the
//! capacity/performance curve that page-migration systems (HeMem, Nimble,
//! AutoNUMA) navigate and that the paper's discussion section motivates
//! ("determining the optimal memory tier per access type").
//!
//! ```text
//! cargo run --release --example tiering_policy -- [workload]
//! ```

use spark_memtier::des::SimTime;
use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::{PlacementSpec, TierId};
use spark_memtier::metrics::table::{fmt_f64, sparkline};
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{workload_by_name, DataSize, Workload};

/// One epoch of virtual time between policy decisions.
const EPOCH: SimTime = SimTime::from_us(200);

fn run(workload: &dyn Workload, conf: SparkConf) -> (f64, u64, u64) {
    let sc = SparkContext::new(conf).expect("context");
    workload.run(&sc, DataSize::Large, 42).expect("run");
    let m = sc.migration_stats();
    (sc.elapsed().as_secs_f64(), m.migrations, m.bytes_moved)
}

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "bayes".into());
    let workload = workload_by_name(&app).expect("known workload");
    println!("{app}-large under the dynamic placement engine (DRAM hot / Optane cold):\n");

    // The endpoints the engine has to live between.
    let (all_dram, _, _) = run(&*workload, SparkConf::bound_to_tier(TierId::LOCAL_DRAM));
    let (all_nvm, _, _) = run(&*workload, SparkConf::bound_to_tier(TierId::NVM_NEAR));

    let mut table = AsciiTable::new(vec![
        "DRAM budget",
        "time (s)",
        "slowdown vs all-DRAM",
        "migrations",
        "moved (MB)",
    ])
    .title(format!("{app}-large tiering curve, epoch {EPOCH}"));

    let mut times = vec![all_dram];
    table.row(vec![
        "static DRAM".into(),
        fmt_f64(all_dram, 4),
        "1.00x".into(),
        "-".into(),
        "-".into(),
    ]);
    for budget_mib in [1024u64, 256, 64, 16, 4] {
        let conf = SparkConf::bound_to_tier(TierId::NVM_NEAR)
            .with_placement(PlacementSpec::hot_cold(budget_mib << 20, EPOCH));
        let (t, migrations, moved) = run(&*workload, conf);
        times.push(t);
        table.row(vec![
            format!("{budget_mib} MiB"),
            fmt_f64(t, 4),
            format!("{:.2}x", t / all_dram),
            migrations.to_string(),
            fmt_f64(moved as f64 / 1e6, 1),
        ]);
    }
    times.push(all_nvm);
    table.row(vec![
        "static Optane".into(),
        fmt_f64(all_nvm, 4),
        format!("{:.2}x", all_nvm / all_dram),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());
    println!("tiering curve: {}", sparkline(&times));
    println!(
        "\nShape: with a roomy budget the engine pays one migration wave and then \
         runs near DRAM speed; as the budget shrinks, more of the working set stays \
         cold and the curve bends toward the static Optane endpoint — the same \
         knee a real page migrator shows when the hot set stops fitting. The \
         migration column is the price the static sweep never showed: every \
         promotion is charged through the Optane controller before it pays off."
    );
}
