//! Tiering-policy sweep: approximate a perfect page migrator by keeping a
//! `hot` fraction of traffic in local DRAM and the rest on Optane, and
//! sweep the fraction — the capacity/performance curve that page-migration
//! systems (HeMem, Nimble, AutoNUMA) navigate and that the paper's
//! discussion section motivates ("determining the optimal memory tier per
//! access type").
//!
//! ```text
//! cargo run --release --example tiering_policy -- [workload]
//! ```

use spark_memtier::engine::{ExecutorPlacement, SparkConf, SparkContext};
use spark_memtier::memsim::{CpuBindPolicy, MemBindPolicy};
use spark_memtier::metrics::table::{fmt_f64, sparkline};
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "bayes".into());
    let workload = workload_by_name(&app).expect("known workload");
    println!("{app}-large with a hot-fraction tiering policy (DRAM hot / Optane cold):\n");

    let mut table = AsciiTable::new(vec![
        "DRAM share",
        "time (s)",
        "slowdown vs all-DRAM",
        "DRAM capacity used",
    ])
    .title(format!("{app}-large tiering curve"));

    let mut times = Vec::new();
    let fractions = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0];
    let mut all_dram = None;
    for &hot in &fractions {
        let conf = SparkConf {
            placement: ExecutorPlacement {
                cpu: CpuBindPolicy::Socket(0),
                mem: MemBindPolicy::hot_cold(hot),
            },
            ..SparkConf::default()
        };
        let sc = SparkContext::new(conf).expect("context");
        workload.run(&sc, DataSize::Large, 42).expect("run");
        let t = sc.elapsed().as_secs_f64();
        let base = *all_dram.get_or_insert(t);
        times.push(t);
        table.row(vec![
            format!("{:.0}%", hot * 100.0),
            fmt_f64(t, 4),
            format!("{:.2}x", t / base),
            format!("{:.0}%", hot * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("tiering curve: {}", sparkline(&times));
    println!(
        "\nShape: a step as soon as any traffic lands on Optane (the task wave now \
         queues on the DCPM controller — Takeaway 6's contention), then a shallow \
         linear slope in the cold fraction. For capacity-hungry tenants the slope is \
         the interesting part: pushing 80% of traffic cold costs only ~{:.0}% more than \
         pushing 20% cold, while freeing 4x the DRAM.",
        (times[4] / times[1] - 1.0) * 100.0
    );
}
