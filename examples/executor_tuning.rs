//! Executor tuning: sweep the executor × cores grid for one workload on the
//! Optane tier (the paper's Fig. 4 experiment) and report the best
//! deployment — the "fat vs skinny executors" question answered per
//! workload.
//!
//! ```text
//! cargo run --release --example executor_tuning -- [workload] [size]
//! ```
//! (defaults: `pagerank large`)

use spark_memtier::characterization::campaign::{fig4_grid, FIG4_CORES, FIG4_EXECUTORS};
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::DataSize;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "pagerank".into());
    let size = match std::env::args().nth(2).as_deref() {
        Some("tiny") => DataSize::Tiny,
        Some("small") => DataSize::Small,
        _ => DataSize::Large,
    };
    println!("sweeping executor grid for {app}-{size} on the Optane tier…\n");
    let cells = fig4_grid(&app, size, 8).expect("grid");

    let mut headers = vec!["executors \\ cores".to_string()];
    headers.extend(FIG4_CORES.iter().map(|c| c.to_string()));
    let mut table = AsciiTable::new(headers).title(format!(
        "{app}-{size}: speedup over the default 1x40 deployment"
    ));
    for &e in FIG4_EXECUTORS.iter() {
        let mut row = vec![e.to_string()];
        for &c in FIG4_CORES.iter() {
            row.push(
                cells
                    .iter()
                    .find(|x| x.executors == e && x.cores == c)
                    .map(|x| format!("{:.2}x", x.speedup))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.row(row);
    }
    println!("{}", table.render());

    let best = cells
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .expect("non-empty grid");
    let worst = cells
        .iter()
        .min_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .expect("non-empty grid");
    println!(
        "best deployment: {} executors x {} cores ({:.2}x, {:.4}s)",
        best.executors, best.cores, best.speedup, best.elapsed_s
    );
    println!(
        "worst deployment: {} executors x {} cores ({:.2}x slower, {:.4}s) — \
         NVM contention + coordination overhead (Takeaway 6)",
        worst.executors,
        worst.cores,
        1.0 / worst.speedup,
        worst.elapsed_s
    );
}
