//! Utilization timeline: watch the Optane channel while pagerank runs and
//! render per-tier utilization and executor concurrency as sparklines — a
//! quick way to *see* why MBA throttling doesn't bite (utilization stays
//! low) while executor contention does (busy cores spike at stage waves).
//!
//! The timeline comes from the always-on windowed rollup: every counter
//! charge is folded into per-window conserved totals as it happens, so no
//! sampler needs enabling and the per-window series re-sum *exactly* to the
//! run's machine counters. The run doctor re-bins the same rollup onto its
//! uniform grid and attaches ranked findings on top.
//!
//! ```text
//! cargo run --release --example utilization_timeline -- [workload]
//! ```

use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::sparkline;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "pagerank".into());
    let workload = workload_by_name(&app).expect("known workload");

    let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).expect("context");
    sc.enable_tracing();
    workload.run(&sc, DataSize::Large, 42).expect("run");
    let report = sc.finish();

    // The rollup the timeline is built from: always on, windowed at charge
    // time, and conserving against the machine counters in exact integers.
    let rollup = sc.window_rollup();
    assert!(
        rollup.conserves(&report.telemetry.counters),
        "windowed rollup must re-sum to the run's counters"
    );

    let doctor = &report.doctor;
    let idx = TierId::NVM_NEAR.index();
    let util: Vec<f64> = doctor
        .series
        .tier_utilization
        .iter()
        .map(|u| u[idx])
        .collect();
    let width_ps = doctor.window_width.as_ps().max(1) as f64;
    let busy_cores: Vec<f64> = doctor
        .series
        .busy
        .iter()
        .map(|b| b.as_ps() as f64 / width_ps)
        .collect();
    let peak_util = util.iter().cloned().fold(0.0, f64::max);
    let peak_cores = busy_cores.iter().cloned().fold(0.0, f64::max);

    println!(
        "{app}-large on Tier 2 ({} charge windows of {:.6}s each, re-binned to {} doctor windows over {}):\n",
        rollup.len(),
        rollup.width().as_secs_f64(),
        doctor.series.starts.len(),
        report.elapsed
    );
    println!("channel utilization (peak {:.0}%):", peak_util * 100.0);
    println!("  {}", sparkline(&util));
    println!(
        "busy executor cores (peak {peak_cores:.0} of {}):",
        doctor.total_cores
    );
    println!("  {}", sparkline(&busy_cores));
    println!(
        "\nutilization peaks at {:.0}% of the 10.7 GB/s channel — the Fig. 3 result \
         (MBA caps down to 10% leave headroom) while the busy-core series shows the \
         stage waves that drive Takeaway 6's contention.",
        peak_util * 100.0
    );
    let spans = sc.task_spans().unwrap();
    println!(
        "({} tasks executed; timeline also available as sc.chrome_trace())",
        spans.len()
    );

    // Who drove that channel: the ten hottest objects by nominal stall,
    // straight from the per-object attribution ledger.
    let hotness = &report.hotness;
    let mut table = spark_memtier::metrics::AsciiTable::new(vec![
        "object",
        "bytes (MB)",
        "accesses",
        "stall (s)",
        "gain if Tier 0 (s)",
    ])
    .title("Top-10 hot objects by stall");
    for o in hotness.top_by_stall(10) {
        table.row(vec![
            o.label.clone(),
            format!("{:.1}", o.total_bytes as f64 / 1e6),
            o.total_accesses.to_string(),
            format!("{:.4}", o.stall.as_secs_f64()),
            format!("{:.4}", o.promotion_gain().as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    // And the doctor's verdict on the same run.
    println!("{}", doctor.render(3));
}
