//! Utilization timeline: sample the Optane channel while pagerank runs and
//! render per-tier utilization and concurrency as sparklines — a quick way
//! to *see* why MBA throttling doesn't bite (utilization stays low) while
//! executor contention does (concurrency spikes at stage waves).
//!
//! ```text
//! cargo run --release --example utilization_timeline -- [workload]
//! ```

use spark_memtier::des::SimTime;
use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::sparkline;
use spark_memtier::workloads::{workload_by_name, DataSize};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "pagerank".into());
    let workload = workload_by_name(&app).expect("known workload");

    let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).expect("context");
    sc.enable_utilization_sampling(SimTime::from_us(250));
    sc.enable_tracing();
    workload.run(&sc, DataSize::Large, 42).expect("run");

    let samples = sc.utilization_samples();
    let idx = TierId::NVM_NEAR.index();
    let util: Vec<f64> = samples.iter().map(|s| s.utilization[idx]).collect();
    let flows: Vec<f64> = samples.iter().map(|s| s.active[idx] as f64).collect();
    let peak_util = util.iter().cloned().fold(0.0, f64::max);
    let peak_flows = flows.iter().cloned().fold(0.0, f64::max);

    println!(
        "{app}-large on Tier 2 ({} samples over {}):\n",
        samples.len(),
        sc.elapsed()
    );
    println!("channel utilization (peak {:.0}%):", peak_util * 100.0);
    println!("  {}", sparkline(&util));
    println!("concurrent flows (peak {peak_flows:.0}):");
    println!("  {}", sparkline(&flows));
    println!(
        "\nutilization peaks at {:.0}% of the 10.7 GB/s channel — the Fig. 3 result \
         (MBA caps down to 10% leave headroom) while the flow count shows the stage \
         waves that drive Takeaway 6's contention.",
        peak_util * 100.0
    );
    let spans = sc.task_spans().unwrap();
    println!(
        "({} tasks executed; timeline also available as sc.chrome_trace())",
        spans.len()
    );

    // Who drove that channel: the ten hottest objects by nominal stall,
    // straight from the per-object attribution ledger.
    let hotness = sc.hotness_report();
    let mut table = spark_memtier::metrics::AsciiTable::new(vec![
        "object",
        "bytes (MB)",
        "accesses",
        "stall (s)",
        "gain if Tier 0 (s)",
    ])
    .title("Top-10 hot objects by stall");
    for o in hotness.top_by_stall(10) {
        table.row(vec![
            o.label.clone(),
            format!("{:.1}", o.total_bytes as f64 / 1e6),
            o.total_accesses.to_string(),
            format!("{:.4}", o.stall.as_secs_f64()),
            format!("{:.4}", o.promotion_gain().as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
}
