//! Placement advisor: characterize the whole suite, then recommend the
//! cheapest memory tier each workload can live on under a slowdown budget —
//! the paper's deployment guidelines turned into a tool.
//!
//! ```text
//! cargo run --release --example placement_advisor -- [tolerance_pct] [write_cap]
//! ```
//! (defaults: 15 % slowdown tolerance, 0.35 write-ratio cap)

use spark_memtier::characterization::advisor::{default_cost_per_gb, recommend};
use spark_memtier::characterization::campaign::{by_workload_size, fig2_campaign};
use spark_memtier::metrics::AsciiTable;

fn main() {
    let tolerance = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(15.0)
        / 100.0;
    let write_cap = std::env::args()
        .nth(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.35);

    eprintln!(
        "characterizing all workloads (84 runs), then placing with tolerance {:.0}% and \
         write-ratio cap {write_cap}…\n",
        tolerance * 100.0
    );
    let results = fig2_campaign(8).expect("campaign");
    let series: Vec<_> = by_workload_size(&results)
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_by_key(|r| r.scenario.tier);
            (k, v)
        })
        .collect();
    let placements = recommend(&series, tolerance, write_cap);

    let mut table = AsciiTable::new(vec![
        "workload",
        "size",
        "placed on",
        "slowdown",
        "capacity-cost saving",
        "why",
    ])
    .title("Recommended placements");
    let mut total_saving = 0.0;
    for p in &placements {
        table.row(vec![
            p.workload.clone(),
            p.size.label().to_string(),
            p.tier.to_string(),
            format!("{:+.1}%", p.slowdown * 100.0),
            format!("{:.0}%", p.cost_saving * 100.0),
            p.rationale.clone(),
        ]);
        total_saving += p.cost_saving;
    }
    println!("{}", table.render());
    println!(
        "average capacity-cost saving across the suite: {:.0}% (all-DRAM baseline; \
         Tier-2/3 capacity priced at {:.0}/{:.0}% of DRAM)",
        total_saving / placements.len().max(1) as f64 * 100.0,
        default_cost_per_gb(spark_memtier::memsim::TierId::NVM_NEAR) * 100.0,
        default_cost_per_gb(spark_memtier::memsim::TierId::NVM_FAR) * 100.0,
    );

    // The object-level view behind the placements: the ten hottest objects
    // across the suite's Tier-2 runs, and what promoting each to local DRAM
    // would save in nominal stall.
    let mut hot: Vec<(String, &spark_memtier::memsim::ObjectReport)> = results
        .iter()
        .filter(|r| r.scenario.tier == spark_memtier::memsim::TierId::NVM_NEAR)
        .flat_map(|r| {
            r.hotness
                .objects
                .iter()
                .map(move |o| (r.scenario.label(), o))
        })
        .collect();
    hot.sort_by(|a, b| b.1.total_bytes.cmp(&a.1.total_bytes).then(a.0.cmp(&b.0)));
    hot.truncate(10);
    let mut hot_table = AsciiTable::new(vec![
        "scenario",
        "object",
        "bytes (MB)",
        "stall (s)",
        "gain if Tier 0 (s)",
    ])
    .title("Top-10 hot objects on Tier 2 (promotion candidates)");
    for (scenario, o) in &hot {
        hot_table.row(vec![
            scenario.clone(),
            o.label.clone(),
            format!("{:.1}", o.total_bytes as f64 / 1e6),
            format!("{:.4}", o.stall.as_secs_f64()),
            format!("{:.4}", o.promotion_gain().as_secs_f64()),
        ]);
    }
    println!("{}", hot_table.render());
}
