//! Quickstart: run a word-count on two different memory tiers and compare
//! virtual execution time, access counts and energy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spark_memtier::engine::{SparkConf, SparkContext};
use spark_memtier::memsim::TierId;

fn word_count_on(tier: TierId) -> (f64, u64, f64) {
    let sc = SparkContext::new(SparkConf::bound_to_tier(tier)).expect("context");

    // A small corpus, genuinely computed: 50k synthetic "log lines".
    let lines = sc.generate(
        16,
        |part| {
            (0..3_000u64)
                .map(|i| {
                    let level = ["INFO", "WARN", "ERROR"][(i % 3) as usize];
                    format!("{level} service-{} request {}", (part as u64 + i) % 7, i)
                })
                .collect::<Vec<String>>()
        },
        spark_memtier::engine::OpCost::cpu(150.0),
    );

    let counts = lines
        .flat_map(|line| line.split(' ').map(str::to_string).collect::<Vec<_>>())
        .map(|w| (w.clone(), 1u64))
        .reduce_by_key(|a, b| a + b);

    let top = {
        let mut all = counts.collect().expect("collect");
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(3);
        all
    };
    println!("  top words on {tier}: {top:?}");

    let report = sc.finish();
    (
        report.elapsed.as_secs_f64(),
        report.telemetry.counters.tier(tier).total(),
        report.telemetry.energy.tier(tier).total_j(),
    )
}

fn main() {
    println!("word-count on local DRAM (Tier 0) vs Optane DCPM (Tier 2):\n");
    let (t_dram, acc_dram, e_dram) = word_count_on(TierId::LOCAL_DRAM);
    let (t_nvm, acc_nvm, e_nvm) = word_count_on(TierId::NVM_NEAR);

    println!();
    println!("  Tier 0 (local DRAM): {t_dram:.4}s, {acc_dram} media accesses, {e_dram:.2} J");
    println!("  Tier 2 (Optane DCPM): {t_nvm:.4}s, {acc_nvm} media accesses, {e_nvm:.2} J");
    println!(
        "  => DCPM run is {:.2}x slower and uses {:.2}x the energy — the paper's \
         headline tradeoff.",
        t_nvm / t_dram,
        e_nvm / e_dram
    );
}
