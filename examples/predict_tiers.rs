//! Cross-tier prediction (Takeaway 8 in action): fit a linear model of
//! execution time against tier latency/bandwidth on three tiers and predict
//! the fourth, for every workload.
//!
//! ```text
//! cargo run --release --example predict_tiers -- [size]
//! ```
//! (default size: `small`)

use spark_memtier::characterization::predict::{correlation_with_specs, leave_one_tier_out};
use spark_memtier::characterization::{run_scenarios, Scenario};
use spark_memtier::memsim::TierId;
use spark_memtier::metrics::table::fmt_f64;
use spark_memtier::metrics::AsciiTable;
use spark_memtier::workloads::{all_workloads, DataSize};

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("tiny") => DataSize::Tiny,
        Some("large") => DataSize::Large,
        _ => DataSize::Small,
    };
    println!("fitting time ~ (idle latency, bandwidth) per workload at size {size}…\n");

    let mut table = AsciiTable::new(vec![
        "workload",
        "corr(time, latency)",
        "corr(time, bandwidth)",
        "leave-one-tier-out MAPE",
    ])
    .title("Takeaway 8: linear cross-tier prediction");

    for w in all_workloads() {
        let scenarios: Vec<Scenario> = TierId::all()
            .into_iter()
            .map(|t| Scenario::default_conf(w.name(), size, t))
            .collect();
        let results = run_scenarios(&scenarios, 4).expect("runs");
        let refs: Vec<_> = results.iter().collect();
        let corr = correlation_with_specs(&refs);
        let mape = leave_one_tier_out(&refs);
        table.row(vec![
            w.name().to_string(),
            corr.latency_r.map(|r| fmt_f64(r, 3)).unwrap_or("-".into()),
            corr.bandwidth_r
                .map(|r| fmt_f64(r, 3))
                .unwrap_or("-".into()),
            mape.map(|m| format!("{:.1}%", m * 100.0))
                .unwrap_or("-".into()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(positive latency correlation + negative bandwidth correlation, as in the paper's \
         Fig. 6; the MAPE column is what a provider would see deploying on an unmeasured tier)"
    );
}
