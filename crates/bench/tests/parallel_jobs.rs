//! Acceptance test for the parallel-sweep determinism contract
//! (DESIGN.md §16): a `--jobs 4` sweep produces **byte-identical**
//! deterministic artifact rows to a sequential (`--jobs 1`) sweep, for both
//! the policy and faults harnesses. Runs a reduced single-app slice of each
//! bin's scenario grid through the same `parallel_sweep` entry point the
//! bins use, then compares the serialized artifact entries string-for-string.

use memtier_bench::{bench_faults_entries, bench_policy_entries, parallel_sweep};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{PlacementSpec, TierId};
use memtier_workloads::DataSize;
use sparklite::{FaultPlan, SpeculationConf};

const APP: &str = "pagerank";
const SIZE: DataSize = DataSize::Tiny;

/// A single-app slice of the policy bin's grid: both static endpoints plus
/// two HotCold points and the WearAware point.
fn policy_scenarios() -> Vec<Scenario> {
    let epoch = SimTime::from_us(1_000);
    vec![
        Scenario::default_conf(APP, SIZE, TierId::LOCAL_DRAM),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR)
            .with_placement(PlacementSpec::hot_cold(1 << 20, epoch)),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR)
            .with_placement(PlacementSpec::hot_cold(256 << 20, epoch)),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR)
            .with_placement(PlacementSpec::wear_aware(256 << 20, epoch)),
    ]
}

/// A single-app slice of the faults bin's grid: the plan-free endpoint, two
/// failure rates, the zero-fault plan, and the straggler+speculation point.
fn faults_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR)
            .with_faults(FaultPlan::seeded(2024).with_task_failures(0.05)),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR)
            .with_faults(FaultPlan::seeded(2024).with_task_failures(0.15)),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR).with_faults(FaultPlan::seeded(2024)),
        Scenario::default_conf(APP, SIZE, TierId::NVM_NEAR).with_faults(
            FaultPlan::seeded(2024)
                .with_stragglers(0.35, 8.0)
                .with_speculation(SpeculationConf::default()),
        ),
    ]
}

fn sweep(scenarios: &[Scenario], jobs: usize) -> Vec<ScenarioResult> {
    parallel_sweep(scenarios, jobs, |s| {
        run_scenario(s).expect("sweep scenario")
    })
}

#[test]
fn policy_sweep_is_byte_identical_at_any_width() {
    let scenarios = policy_scenarios();
    let seq = sweep(&scenarios, 1);
    let par = sweep(&scenarios, 4);
    let a = serde_json::to_string(&bench_policy_entries(&seq)).expect("serialize sequential");
    let b = serde_json::to_string(&bench_policy_entries(&par)).expect("serialize parallel");
    assert_eq!(
        a, b,
        "--jobs 4 must reproduce the sequential policy artifact byte-for-byte"
    );
}

#[test]
fn faults_sweep_is_byte_identical_at_any_width() {
    let scenarios = faults_scenarios();
    let seq = sweep(&scenarios, 1);
    let par = sweep(&scenarios, 4);
    let a = serde_json::to_string(&bench_faults_entries(&seq)).expect("serialize sequential");
    let b = serde_json::to_string(&bench_faults_entries(&par)).expect("serialize parallel");
    assert_eq!(
        a, b,
        "--jobs 4 must reproduce the sequential faults artifact byte-for-byte"
    );
}

#[test]
fn oversubscribed_jobs_clamp_and_merge_in_input_order() {
    // More workers than scenarios: the sweep clamps and stays input-ordered.
    let scenarios = policy_scenarios();
    let seq = sweep(&scenarios, 1);
    let wide = sweep(&scenarios, 64);
    for (s, w) in seq.iter().zip(wide.iter()) {
        assert_eq!(
            s.scenario.label(),
            w.scenario.label(),
            "merge order drifted"
        );
    }
    assert_eq!(
        serde_json::to_string(&bench_policy_entries(&seq)).unwrap(),
        serde_json::to_string(&bench_policy_entries(&wide)).unwrap()
    );
}
