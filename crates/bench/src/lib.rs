//! # memtier-bench — table/figure regeneration harnesses
//!
//! One binary per paper artifact (Tables I–II, Figs. 2–6, the takeaways),
//! plus Criterion benches (`benches/`) that time the underlying campaigns
//! and the ablations DESIGN.md calls out. Every binary prints the same rows
//! or series the paper reports and, with `--json <path>`, also dumps the raw
//! results for EXPERIMENTS.md regeneration.

#![warn(missing_docs)]

use serde::Serialize;

/// Worker threads for campaign parallelism (scenarios are independent
/// deterministic simulations; parallelism never changes a measurement).
pub fn campaign_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parse `--json <path>` from argv, if present.
pub fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dump a serializable value to the `--json` path when one was given.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    if let Some(path) = json_path() {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Render a ratio as a signed percent string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn thread_count_is_positive() {
        assert!(super::campaign_threads() >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.25), "+25.0%");
        assert_eq!(super::pct(-0.051), "-5.1%");
    }
}
