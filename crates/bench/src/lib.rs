//! # memtier-bench — table/figure regeneration harnesses
//!
//! One binary per paper artifact (Tables I–II, Figs. 2–6, the takeaways),
//! plus Criterion benches (`benches/`) that time the underlying campaigns
//! and the ablations DESIGN.md calls out. Every binary prints the same rows
//! or series the paper reports and, with `--json <path>`, also dumps the raw
//! results for EXPERIMENTS.md regeneration.

#![warn(missing_docs)]

use memtier_core::ScenarioResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Worker threads for campaign parallelism (scenarios are independent
/// deterministic simulations; parallelism never changes a measurement).
pub fn campaign_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parse `--json <path>` from argv, if present.
pub fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dump a serializable value to the `--json` path when one was given.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    if let Some(path) = json_path() {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Render a ratio as a signed percent string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// One row of the machine-readable perf baseline (`BENCH_profile.json`): a
/// scenario's end-to-end virtual runtime and its conserved critical-path
/// attribution (component name → seconds; the components sum to
/// `virtual_runtime_s` exactly, see `sparklite::RunProfile::conserves`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfileEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Critical-path attribution: component name → seconds on the path.
    pub attribution: BTreeMap<String, f64>,
}

impl BenchProfileEntry {
    /// Absolute gap between the attribution sum and the runtime, seconds.
    /// Zero up to float rounding when the profile conserved.
    pub fn conservation_gap_s(&self) -> f64 {
        let total: f64 = self.attribution.values().sum();
        (total - self.virtual_runtime_s).abs()
    }
}

/// Build the perf-baseline rows for a result set, in input order.
pub fn bench_profile_entries(results: &[ScenarioResult]) -> Vec<BenchProfileEntry> {
    results
        .iter()
        .map(|r| BenchProfileEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            attribution: r.profile.attribution.named_seconds().into_iter().collect(),
        })
        .collect()
}

/// Write the consolidated machine-readable perf baseline to `path` — the
/// artifact CI archives so perf regressions show up as an attribution diff,
/// not just a runtime delta.
pub fn write_bench_profile(path: &str, results: &[ScenarioResult]) {
    let entries = bench_profile_entries(results);
    let json = serde_json::to_string_pretty(&entries).expect("serialize perf baseline");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path} ({} entries)", entries.len());
}

#[cfg(test)]
mod tests {
    #[test]
    fn thread_count_is_positive() {
        assert!(super::campaign_threads() >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.25), "+25.0%");
        assert_eq!(super::pct(-0.051), "-5.1%");
    }

    #[test]
    fn profile_entries_conserve_and_round_trip() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        let entries = super::bench_profile_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].app, "repartition");
        assert!(entries[0].virtual_runtime_s > 0.0);
        assert!(
            entries[0].conservation_gap_s() < 1e-9,
            "gap {}",
            entries[0].conservation_gap_s()
        );
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchProfileEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }
}
