//! # memtier-bench — table/figure regeneration harnesses
//!
//! One binary per paper artifact (Tables I–II, Figs. 2–6, the takeaways),
//! plus Criterion benches (`benches/`) that time the underlying campaigns
//! and the ablations DESIGN.md calls out. Every binary prints the same rows
//! or series the paper reports and, with `--json <path>`, also dumps the raw
//! results for EXPERIMENTS.md regeneration.
//!
//! ## Exit codes
//!
//! Every harness binary follows the same contract:
//!
//! * `0` — success (for `compare`: every scenario within tolerance).
//! * `1` — a substantive failure: a `--check` self-check failed
//!   ([`check_fail`]) or the `compare` gate found a regression / drifted
//!   scenario set.
//! * `2` — usage or I/O errors: unknown flags or values, unreadable or
//!   unparsable input artifacts, unwritable output paths
//!   ([`write_json_artifact`]).

#![warn(missing_docs)]

use memtier_core::ScenarioResult;
use memtier_memsim::MigrationStats;
use memtier_workloads::{all_workloads, DataSize};
use serde::{Deserialize, Serialize};
use sparklite::{
    explain, EngineStats, ExplainReport, Finding, NetReport, RecoveryStats, RunDigest,
};
use std::collections::BTreeMap;

/// Worker threads for campaign parallelism (scenarios are independent
/// deterministic simulations; parallelism never changes a measurement).
pub fn campaign_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `f` over `items` on up to `jobs` worker threads, returning results
/// in **input order** regardless of completion order.
///
/// This is the determinism contract behind the sweep bins' shared `--jobs`
/// flag (DESIGN.md §16): each item is an independent, internally
/// deterministic computation (a scenario simulation), workers pull items
/// off a shared atomic cursor, and every result lands in the slot of its
/// input index — so the output vector is byte-identical for any worker
/// count. `jobs <= 1` runs inline on the caller thread, which *is* the
/// sequential loop.
///
/// A panicking item panics the sweep (std `thread::scope` propagates it),
/// matching the sequential behavior of `f` panicking mid-loop.
pub fn parallel_sweep<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    {
        let locked: Vec<std::sync::Mutex<&mut Option<R>>> =
            slots.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    **locked[i].lock().expect("sweep slot poisoned") = Some(r);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|r| r.expect("sweep worker left a hole"))
        .collect()
}

/// Parse `--flag <value>` from an argv slice.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Abort a `--check` run: print the failure and exit with status 1 (the CI
/// smoke steps key off the exit status).
pub fn check_fail(msg: String) -> ! {
    eprintln!("check FAILED: {msg}");
    std::process::exit(1);
}

/// The workload names of the full suite, in suite order.
pub fn suite_apps() -> Vec<String> {
    all_workloads()
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

/// The common CLI surface of the bench harnesses: `--size tiny|small|large`
/// (default `tiny`), `--dir <path>` (default `results`), `--check`,
/// `--jobs <n>` (sweep worker threads; the default is per-harness), and —
/// for the harnesses that support it — `--app <name>`.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Data-size profile of every scenario the harness runs.
    pub size: DataSize,
    /// Output directory for artifacts (created on demand).
    pub dir: String,
    /// Run the harness's self-checks after writing artifacts.
    pub check: bool,
    /// Restrict the sweep to one workload (`--app`), when given.
    pub app: Option<String>,
    /// Sweep worker threads (`--jobs`), when given. Results are merged in
    /// input order, so any worker count produces byte-identical artifacts
    /// ([`parallel_sweep`]).
    pub jobs: Option<usize>,
}

impl BenchArgs {
    /// Parse from an argv slice; `Err` carries the usage message.
    pub fn try_parse(args: &[String]) -> Result<BenchArgs, String> {
        let size = match arg_value(args, "--size").as_deref() {
            None | Some("tiny") => DataSize::Tiny,
            Some("small") => DataSize::Small,
            Some("large") => DataSize::Large,
            Some(other) => {
                return Err(format!("unknown --size {other:?} (want tiny|small|large)"));
            }
        };
        let jobs = match arg_value(args, "--jobs") {
            None => None,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => return Err(format!("bad --jobs {v:?} (want an integer >= 1)")),
            },
        };
        Ok(BenchArgs {
            size,
            dir: arg_value(args, "--dir").unwrap_or_else(|| "results".to_string()),
            check: args.iter().any(|a| a == "--check"),
            app: arg_value(args, "--app"),
            jobs,
        })
    }

    /// The sweep width: `--jobs` when given, else the harness's default.
    pub fn jobs_or(&self, default: usize) -> usize {
        self.jobs.unwrap_or(default)
    }

    /// Parse from the process argv, exiting with status 2 on a bad flag —
    /// the shared front door of every harness `main`.
    pub fn parse() -> BenchArgs {
        let args: Vec<String> = std::env::args().collect();
        BenchArgs::try_parse(&args).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    }

    /// The workloads the sweep covers: the whole suite, or just `--app`.
    /// Exits with status 2 when `--app` names an unknown workload.
    pub fn apps(&self) -> Vec<String> {
        let apps = suite_apps();
        match &self.app {
            None => apps,
            Some(app) if apps.contains(app) => vec![app.clone()],
            Some(app) => {
                eprintln!("unknown --app {app:?} (want one of {apps:?})");
                std::process::exit(2);
            }
        }
    }
}

/// Write a JSON artifact: create the parent directory on demand, pretty-
/// print `entries`, and log the path. Harnesses own their output tree — CI
/// never has to `mkdir` for them. I/O failures exit with status 2 (the
/// usage-or-I/O code of the shared exit contract), not a panic — an
/// unwritable path is an environment problem, not a harness bug.
pub fn write_json_artifact<T: Serialize>(path: &str, entries: &[T]) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                eprintln!("mkdir {}: {e}", parent.display());
                std::process::exit(2);
            });
        }
    }
    let json = serde_json::to_string_pretty(entries).expect("serialize artifact");
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {path} ({} entries)", entries.len());
}

/// Parse `--json <path>` from argv, if present.
pub fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dump a serializable value to the `--json` path when one was given.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    if let Some(path) = json_path() {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Render a ratio as a signed percent string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// One row of the machine-readable perf baseline (`BENCH_profile.json`): a
/// scenario's end-to-end virtual runtime and its conserved critical-path
/// attribution (component name → seconds; the components sum to
/// `virtual_runtime_s` exactly, see `sparklite::RunProfile::conserves`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfileEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Critical-path attribution: component name → seconds on the path.
    pub attribution: BTreeMap<String, f64>,
    /// The run's conserved digest for the regression explainer: the same
    /// attribution in exact integer picoseconds, sliced per stage, plus
    /// per-object footprints and migration/recovery rollups.
    /// `#[serde(default)]` so baselines written before the explainer still
    /// load (as `None`) — the explainer degrades to a note for those.
    #[serde(default)]
    pub digest: Option<RunDigest>,
}

impl BenchProfileEntry {
    /// Absolute gap between the attribution sum and the runtime, seconds.
    /// Zero up to float rounding when the profile conserved.
    pub fn conservation_gap_s(&self) -> f64 {
        let total: f64 = self.attribution.values().sum();
        (total - self.virtual_runtime_s).abs()
    }
}

/// Build the perf-baseline rows for a result set, in input order.
pub fn bench_profile_entries(results: &[ScenarioResult]) -> Vec<BenchProfileEntry> {
    results
        .iter()
        .map(|r| BenchProfileEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            attribution: r.profile.attribution.named_seconds().into_iter().collect(),
            digest: Some(r.digest.clone()),
        })
        .collect()
}

/// Write the consolidated machine-readable perf baseline to `path` — the
/// artifact CI archives so perf regressions show up as an attribution diff,
/// not just a runtime delta.
pub fn write_bench_profile(path: &str, results: &[ScenarioResult]) {
    write_json_artifact(path, &bench_profile_entries(results));
}

/// One row of the object-hotness baseline (`BENCH_hotness.json`): a
/// scenario's virtual runtime, its total nominal memory stall, and the
/// hottest objects ranked by the bytes they moved. The full per-tier ledger
/// conserves against the machine counters in-process before this summary is
/// written; the file keeps the top objects only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchHotnessEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Total nominal memory stall across all objects and tiers, seconds.
    pub total_stall_s: f64,
    /// Hottest objects by bytes moved, descending.
    pub objects: Vec<HotObjectRow>,
}

/// One hot object inside a [`BenchHotnessEntry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotObjectRow {
    /// Object label (`rdd3:cache`, `shuffle1:write`, `scratch`, ...).
    pub object: String,
    /// Total bytes moved for this object across all tiers.
    pub total_bytes: u64,
    /// Nominal stall this object's accesses cost, seconds.
    pub stall_s: f64,
    /// Stall seconds saved if the object's traffic had run on Tier 0.
    pub promotion_gain_s: f64,
}

/// How many hot objects each [`BenchHotnessEntry`] keeps.
pub const HOTNESS_TOP_K: usize = 10;

/// Build the hotness-baseline rows for a result set, in input order.
pub fn bench_hotness_entries(results: &[ScenarioResult]) -> Vec<BenchHotnessEntry> {
    results
        .iter()
        .map(|r| BenchHotnessEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            total_stall_s: r.hotness.total_stall().as_secs_f64(),
            objects: r
                .hotness
                .top_by_bytes(HOTNESS_TOP_K)
                .into_iter()
                .map(|o| HotObjectRow {
                    object: o.label.clone(),
                    total_bytes: o.total_bytes,
                    stall_s: o.stall.as_secs_f64(),
                    promotion_gain_s: o.promotion_gain().as_secs_f64(),
                })
                .collect(),
        })
        .collect()
}

/// One row of the doctor baseline (`BENCH_doctor.json`): a scenario's
/// virtual runtime plus the run doctor's verdict — the conservation flag of
/// its windowed series, the grid shape, and the ranked findings with their
/// evidence and recovery estimates. Rows carry `scenario` and
/// `virtual_runtime_s`, so the file feeds the zero-tolerance `compare` gate
/// like every other baseline; the full per-window series stays in-process
/// (the doctor asserts its conservation before this summary is written).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDoctorEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// The doctor's conservation verdict: every windowed series re-summed
    /// exactly to its run total.
    pub conserved: bool,
    /// The doctor grid's window width, seconds.
    pub window_width_s: f64,
    /// Number of windows on the grid.
    pub windows: usize,
    /// Ranked findings, highest score first (the doctor's full finding
    /// records, evidence windows included).
    pub findings: Vec<Finding>,
}

/// Build the doctor-baseline rows for a result set, in input order.
pub fn bench_doctor_entries(results: &[ScenarioResult]) -> Vec<BenchDoctorEntry> {
    results
        .iter()
        .map(|r| BenchDoctorEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            conserved: r.doctor.conserved,
            window_width_s: r.doctor.window_width.as_secs_f64(),
            windows: r.doctor.series.starts.len(),
            findings: r.doctor.findings.clone(),
        })
        .collect()
}

/// One row of the placement-policy baseline (`BENCH_policy.json`): a
/// scenario's virtual runtime under one placement policy (static membind or
/// a dynamic engine configuration) plus what the engine did. The `scenario`
/// label embeds the policy for dynamic runs, so rows join uniquely and the
/// file feeds `compare` like every other baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchPolicyEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, grid, `[policy]` suffix
    /// for dynamic runs).
    pub scenario: String,
    /// Policy label (`static`, `hotcold(256MiB,5ms)`, ...).
    pub policy: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Migration activity (all zeros for static runs).
    pub migrations: MigrationStats,
}

/// Build the policy-baseline rows for a result set, in input order.
pub fn bench_policy_entries(results: &[ScenarioResult]) -> Vec<BenchPolicyEntry> {
    results
        .iter()
        .map(|r| BenchPolicyEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            policy: r
                .scenario
                .placement
                .as_ref()
                .map(|spec| spec.label())
                .unwrap_or_else(|| "static".to_string()),
            virtual_runtime_s: r.elapsed_s,
            migrations: r.migrations,
        })
        .collect()
}

/// One row of the fault-tolerance baseline (`BENCH_faults.json`): a
/// scenario's virtual runtime under one fault plan plus the scheduler's
/// recovery rollup. The `scenario` label embeds the plan for faulty runs,
/// so rows join uniquely and the file feeds `compare` like every other
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFaultsEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, grid, `[faults(...)]`
    /// suffix for runs carrying a plan).
    pub scenario: String,
    /// Fault-plan label (`none` for plan-free runs).
    pub plan: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// What recovery did (quiet — fault and waste counters all zero — for
    /// plan-free and zero-fault runs; `useful_time` accrues regardless).
    pub recovery: RecoveryStats,
}

/// Build the fault-baseline rows for a result set, in input order.
pub fn bench_faults_entries(results: &[ScenarioResult]) -> Vec<BenchFaultsEntry> {
    results
        .iter()
        .map(|r| BenchFaultsEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            plan: r
                .scenario
                .faults
                .as_ref()
                .map(|p| p.label())
                .unwrap_or_else(|| "none".to_string()),
            virtual_runtime_s: r.elapsed_s,
            recovery: r.recovery,
        })
        .collect()
}

/// One row of the network-plane baseline (`BENCH_net.json`): a scenario's
/// virtual runtime under one network wiring plus the full per-link traffic
/// rollup. The `scenario` label embeds the wiring (`[net(...)]` suffix for
/// topology runs), so rows join uniquely and the file feeds `compare` like
/// every other baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchNetEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, grid, `[net(...)]`
    /// suffix for runs with a wired topology).
    pub scenario: String,
    /// Network-mode label (`loopback` for unwired runs).
    pub wiring: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// The run's traffic report (empty — all counters zero — for loopback
    /// and single-node runs, where no transfer crosses a link).
    pub network: NetReport,
}

/// Build the network-baseline rows for a result set, in input order.
pub fn bench_net_entries(results: &[ScenarioResult]) -> Vec<BenchNetEntry> {
    results
        .iter()
        .map(|r| BenchNetEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            wiring: r
                .scenario
                .network
                .as_ref()
                .map(|m| m.label())
                .unwrap_or_else(|| "loopback".to_string()),
            virtual_runtime_s: r.elapsed_s,
            network: r.network.clone(),
        })
        .collect()
}

/// One row of the simulator-throughput baseline (`BENCH_simspeed.json`).
///
/// The leading fields are deterministic — pure functions of (workload,
/// config, seed), identical across hosts and runs, and the ones the
/// zero-tolerance `compare` gate joins on via [`RuntimeRow`]. The trailing
/// fields (`wall_ms`, `events_per_sec`, `tasks_per_sec`, `virtual_to_wall`)
/// are the wall-clock sidecar: they vary run to run and host to host, and
/// `compare` ignores them by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSimspeedEntry {
    /// Workload name (`dag-stress` for the synthetic stressor row).
    pub app: String,
    /// Full scenario label; the join key between two baselines.
    pub scenario: String,
    /// End-to-end virtual runtime, seconds (deterministic).
    pub virtual_runtime_s: f64,
    /// Discrete events the engine processed (deterministic).
    pub events_total: u64,
    /// Tasks the scheduler ran (deterministic).
    pub tasks: u64,
    /// Wall-clock time of the run, milliseconds (sidecar).
    pub wall_ms: f64,
    /// Engine throughput: events per wall-clock second (sidecar).
    pub events_per_sec: f64,
    /// Scheduler throughput: tasks per wall-clock second (sidecar).
    pub tasks_per_sec: f64,
    /// Virtual seconds simulated per wall-clock second (sidecar).
    pub virtual_to_wall: f64,
}

impl BenchSimspeedEntry {
    /// The deterministic projection of this row, as canonical JSON — what
    /// the determinism checks compare. Two generations of the same scenario
    /// agree here byte-for-byte even though their wall-clock fields differ.
    pub fn deterministic_json(&self) -> String {
        serde_json::json!({
            "app": self.app,
            "scenario": self.scenario,
            "virtual_runtime_s": self.virtual_runtime_s,
            "events_total": self.events_total,
            "tasks": self.tasks,
        })
        .to_string()
    }
}

/// Assemble one throughput row from a run's virtual facts and its engine
/// sidecar — shared by the suite rows and the synthetic DAG stressor.
pub fn simspeed_row(
    app: String,
    scenario: String,
    virtual_runtime_s: f64,
    tasks: u64,
    engine: &EngineStats,
) -> BenchSimspeedEntry {
    let wall_s = engine.wall_ms / 1e3;
    BenchSimspeedEntry {
        app,
        scenario,
        virtual_runtime_s,
        events_total: engine.events_total,
        tasks,
        wall_ms: engine.wall_ms,
        events_per_sec: engine.events_per_sec,
        tasks_per_sec: if wall_s > 0.0 {
            tasks as f64 / wall_s
        } else {
            0.0
        },
        virtual_to_wall: engine.speedup,
    }
}

/// Build the throughput-baseline rows for a set of *profiled* results, in
/// input order. Panics on a result without an engine sidecar — simspeed
/// rows are meaningless for unprofiled runs.
pub fn bench_simspeed_entries(results: &[ScenarioResult]) -> Vec<BenchSimspeedEntry> {
    results
        .iter()
        .map(|r| {
            let e = r
                .engine
                .as_ref()
                .unwrap_or_else(|| panic!("{}: simspeed needs profiled runs", r.scenario.label()));
            simspeed_row(
                r.scenario.workload.clone(),
                r.scenario.label(),
                r.elapsed_s,
                r.tasks,
                e,
            )
        })
        .collect()
}

/// The fields the regression explainer needs from a baseline row: the
/// `compare` join key plus the run's conserved digest, when the baseline
/// carries one. Deserializes from any `BENCH_*.json` — rows written before
/// the explainer (or by digest-less harnesses) load with `digest: None`,
/// and [`explain_baselines`] reports those as notes instead of failing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestRow {
    /// Full scenario label; the join key between two baselines.
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// The run's conserved digest, when the row carries one.
    #[serde(default)]
    pub digest: Option<RunDigest>,
}

/// One explained scenario: the join label plus the hierarchical diff of its
/// two runs. The array of these is what `EXPLAIN_*.json` holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioExplain {
    /// Full scenario label (the `compare` join key).
    pub scenario: String,
    /// The conserved hierarchical diff (see `sparklite::explain`).
    pub report: ExplainReport,
}

/// Join two digest-bearing baselines on the scenario label and explain
/// every pair that has a digest on both sides. `only` restricts the join to
/// the scenarios named (all pairs when empty). Returns the explanations (in
/// baseline order) plus human-readable notes for every scenario that could
/// not be explained: present on one side only, or missing a digest.
pub fn explain_baselines(
    baseline: &[DigestRow],
    candidate: &[DigestRow],
    only: &[String],
) -> (Vec<ScenarioExplain>, Vec<String>) {
    let cand: BTreeMap<&str, &DigestRow> =
        candidate.iter().map(|r| (r.scenario.as_str(), r)).collect();
    let mut explained = Vec::new();
    let mut notes = Vec::new();
    for b in baseline {
        if !only.is_empty() && !only.contains(&b.scenario) {
            continue;
        }
        match cand.get(b.scenario.as_str()) {
            None => notes.push(format!("{}: candidate has no such scenario", b.scenario)),
            Some(c) => match (&b.digest, &c.digest) {
                (Some(bd), Some(cd)) => explained.push(ScenarioExplain {
                    scenario: b.scenario.clone(),
                    report: explain(bd, cd),
                }),
                (None, _) => notes.push(format!(
                    "{}: baseline row carries no digest (regenerate it with this tree to explain)",
                    b.scenario
                )),
                (_, None) => notes.push(format!(
                    "{}: candidate row carries no digest (regenerate it with this tree to explain)",
                    b.scenario
                )),
            },
        }
    }
    if !only.is_empty() {
        let base_labels: std::collections::BTreeSet<&str> =
            baseline.iter().map(|r| r.scenario.as_str()).collect();
        for label in only {
            if !base_labels.contains(label.as_str()) {
                notes.push(format!("{label}: baseline has no such scenario"));
            }
        }
    }
    (explained, notes)
}

/// The fields `compare` needs from a baseline row — deserializes from both
/// `BENCH_profile.json` and `BENCH_hotness.json` entries (unknown fields are
/// ignored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeRow {
    /// Full scenario label; the join key between two baselines.
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
}

/// One scenario's baseline-vs-candidate runtime comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeDelta {
    /// Full scenario label.
    pub scenario: String,
    /// Baseline virtual runtime, seconds.
    pub baseline_s: f64,
    /// Candidate virtual runtime, seconds.
    pub candidate_s: f64,
    /// Signed relative change, percent (`+` means the candidate is slower).
    pub delta_pct: f64,
}

impl RuntimeDelta {
    /// Whether the delta exceeds `tolerance_pct` in either direction.
    pub fn out_of_tolerance(&self, tolerance_pct: f64) -> bool {
        self.delta_pct.abs() > tolerance_pct
    }
}

/// Join two baselines on the scenario label and compute per-scenario
/// runtime deltas. Returns the deltas (baseline order) plus the labels
/// present in only one side — a changed scenario set is itself a
/// comparison failure, so `compare` reports those too.
pub fn compare_runtimes(
    baseline: &[RuntimeRow],
    candidate: &[RuntimeRow],
) -> (Vec<RuntimeDelta>, Vec<String>) {
    let cand: BTreeMap<&str, f64> = candidate
        .iter()
        .map(|r| (r.scenario.as_str(), r.virtual_runtime_s))
        .collect();
    let base_labels: std::collections::BTreeSet<&str> =
        baseline.iter().map(|r| r.scenario.as_str()).collect();
    let mut deltas = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for r in baseline {
        match cand.get(r.scenario.as_str()) {
            Some(&c) => deltas.push(RuntimeDelta {
                scenario: r.scenario.clone(),
                baseline_s: r.virtual_runtime_s,
                candidate_s: c,
                delta_pct: if r.virtual_runtime_s > 0.0 {
                    (c - r.virtual_runtime_s) / r.virtual_runtime_s * 100.0
                } else {
                    0.0
                },
            }),
            None => unmatched.push(format!("baseline-only: {}", r.scenario)),
        }
    }
    for r in candidate {
        if !base_labels.contains(r.scenario.as_str()) {
            unmatched.push(format!("candidate-only: {}", r.scenario));
        }
    }
    (deltas, unmatched)
}

#[cfg(test)]
mod tests {
    use super::{compare_runtimes, RuntimeRow};

    fn row(scenario: &str, s: f64) -> RuntimeRow {
        RuntimeRow {
            scenario: scenario.to_string(),
            virtual_runtime_s: s,
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::campaign_threads() >= 1);
    }

    #[test]
    fn bench_args_parse_defaults_flags_and_errors() {
        use memtier_workloads::DataSize;
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|a| a.to_string()).collect() };
        let a = super::BenchArgs::try_parse(&argv(&["bin"])).unwrap();
        assert_eq!(a.size, DataSize::Tiny);
        assert_eq!(a.dir, "results");
        assert!(!a.check && a.app.is_none());
        assert!(a.jobs.is_none());
        assert_eq!(a.jobs_or(7), 7);
        let a = super::BenchArgs::try_parse(&argv(&[
            "bin", "--size", "small", "--dir", "out", "--check", "--app", "sort", "--jobs", "4",
        ]))
        .unwrap();
        assert_eq!(a.size, DataSize::Small);
        assert_eq!(a.dir, "out");
        assert!(a.check);
        assert_eq!(a.app.as_deref(), Some("sort"));
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.jobs_or(7), 4);
        assert!(super::BenchArgs::try_parse(&argv(&["bin", "--size", "huge"])).is_err());
        assert!(super::BenchArgs::try_parse(&argv(&["bin", "--jobs", "0"])).is_err());
        assert!(super::BenchArgs::try_parse(&argv(&["bin", "--jobs", "many"])).is_err());
        assert_eq!(super::arg_value(&argv(&["bin", "--dir"]), "--dir"), None);
    }

    /// The `parallel_sweep` determinism contract: results land in input
    /// order for any worker count, including widths past the item count.
    #[test]
    fn parallel_sweep_merges_in_input_order() {
        let items: Vec<u64> = (0..23).collect();
        let f = |&x: &u64| x * x + 1;
        let seq = super::parallel_sweep(&items, 1, f);
        for jobs in [2, 4, 64] {
            assert_eq!(super::parallel_sweep(&items, jobs, f), seq, "jobs={jobs}");
        }
        assert!(super::parallel_sweep(&Vec::<u64>::new(), 4, f).is_empty());
    }

    #[test]
    fn suite_apps_match_the_workload_registry() {
        let apps = super::suite_apps();
        assert!(!apps.is_empty());
        assert!(apps.contains(&"sort".to_string()));
        for app in &apps {
            assert!(memtier_workloads::workload_by_name(app).is_some());
        }
    }

    #[test]
    fn write_json_artifact_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("memtier_bench_{}", std::process::id()));
        let path = dir.join("nested").join("artifact.json");
        let path = path.to_str().unwrap().to_string();
        super::write_json_artifact(&path, &[row("a", 1.0)]);
        let rows: Vec<RuntimeRow> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(rows, vec![row("a", 1.0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simspeed_rows_feed_compare_and_wall_fields_are_invisible_to_it() {
        use super::BenchSimspeedEntry;
        // Two generations of the same scenarios: identical deterministic
        // fields, wildly different wall-clock sidecars.
        let gen = |wall: f64| -> Vec<BenchSimspeedEntry> {
            vec![
                BenchSimspeedEntry {
                    app: "sort".into(),
                    scenario: "sort-tiny@Tier 2, 1x40".into(),
                    virtual_runtime_s: 1.5,
                    events_total: 1000,
                    tasks: 40,
                    wall_ms: wall,
                    events_per_sec: 1000.0 / wall * 1e3,
                    tasks_per_sec: 40.0 / wall * 1e3,
                    virtual_to_wall: 1.5 / wall * 1e3,
                },
                BenchSimspeedEntry {
                    app: "dag-stress".into(),
                    scenario: "dag-stress-tiny@Tier 2".into(),
                    virtual_runtime_s: 2.25,
                    events_total: 5000,
                    tasks: 128,
                    wall_ms: wall * 3.0,
                    events_per_sec: 5000.0 / (wall * 3.0) * 1e3,
                    tasks_per_sec: 128.0 / (wall * 3.0) * 1e3,
                    virtual_to_wall: 2.25 / (wall * 3.0) * 1e3,
                },
            ]
        };
        let (a, b) = (gen(12.0), gen(97.0));
        assert_ne!(a, b, "wall-clock sidecars should differ");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.deterministic_json(), y.deterministic_json());
            assert!(!x.deterministic_json().contains("wall_ms"));
        }
        // `compare` sees only the deterministic projection: the two
        // generations join cleanly and every delta is exactly zero.
        let load = |e: &[BenchSimspeedEntry]| -> Vec<RuntimeRow> {
            serde_json::from_str(&serde_json::to_string(e).unwrap()).unwrap()
        };
        let (deltas, unmatched) = compare_runtimes(&load(&a), &load(&b));
        assert_eq!(deltas.len(), 2);
        assert!(unmatched.is_empty());
        for d in &deltas {
            assert_eq!(d.delta_pct, 0.0);
            assert!(!d.out_of_tolerance(0.0));
        }
    }

    #[test]
    fn simspeed_entries_require_and_summarize_profiled_runs() {
        use memtier_core::{run_scenario_profiled, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario_profiled(&s).unwrap();
        let entries = super::bench_simspeed_entries(std::slice::from_ref(&r));
        let e = &entries[0];
        assert_eq!(e.app, "repartition");
        assert_eq!(e.scenario, s.label());
        assert_eq!(e.virtual_runtime_s, r.elapsed_s);
        assert_eq!(e.tasks, r.tasks);
        assert!(e.events_total > 0);
        assert!(e.wall_ms > 0.0 && e.events_per_sec > 0.0 && e.tasks_per_sec > 0.0);
        assert!(e.virtual_to_wall.is_finite());
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchSimspeedEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.25), "+25.0%");
        assert_eq!(super::pct(-0.051), "-5.1%");
    }

    #[test]
    fn profile_entries_conserve_and_round_trip() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        let entries = super::bench_profile_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].app, "repartition");
        assert!(entries[0].virtual_runtime_s > 0.0);
        assert!(
            entries[0].conservation_gap_s() < 1e-9,
            "gap {}",
            entries[0].conservation_gap_s()
        );
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchProfileEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn hotness_entries_summarize_the_report() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        assert!(r.hotness.conserves(&r.counters));
        let entries = super::bench_hotness_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.app, "sort");
        assert!(e.total_stall_s > 0.0);
        assert!(!e.objects.is_empty() && e.objects.len() <= super::HOTNESS_TOP_K);
        for pair in e.objects.windows(2) {
            assert!(pair[0].total_bytes >= pair[1].total_bytes);
        }
        // Everything ran on an NVM tier, so promoting the traffic to local
        // DRAM saves stall on every object that moved bytes.
        assert!(e.objects[0].promotion_gain_s > 0.0);
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchHotnessEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn doctor_entries_carry_the_verdict_and_feed_compare() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        let entries = super::bench_doctor_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.app, "sort");
        assert!(e.conserved, "the doctor's windowed series must conserve");
        assert!(e.window_width_s > 0.0 && e.windows > 0);
        // Findings come ranked.
        for pair in e.findings.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchDoctorEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
        // A doctor baseline feeds `compare` like the others.
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].virtual_runtime_s - r.elapsed_s).abs() < 1e-15);
    }

    #[test]
    fn policy_entries_label_static_and_dynamic_runs() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_des::SimTime;
        use memtier_memsim::{PlacementSpec, TierId};
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
        let d = s
            .clone()
            .with_placement(PlacementSpec::hot_cold(256 << 20, SimTime::from_ms(1)));
        let results = vec![run_scenario(&s).unwrap(), run_scenario(&d).unwrap()];
        let entries = super::bench_policy_entries(&results);
        assert_eq!(entries[0].policy, "static");
        assert_eq!(entries[0].migrations, Default::default());
        assert!(entries[1].policy.contains("hotcold"));
        assert!(entries[1].scenario.contains(&entries[1].policy));
        assert!(entries[1].migrations.epochs > 0);
        // A policy baseline feeds `compare` like the others.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].scenario, rows[1].scenario);
    }

    #[test]
    fn faults_entries_label_plans_and_roll_up_recovery() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        use sparklite::FaultPlan;
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
        let f = s
            .clone()
            .with_faults(FaultPlan::seeded(11).with_task_failures(0.15));
        let results = vec![run_scenario(&s).unwrap(), run_scenario(&f).unwrap()];
        let entries = super::bench_faults_entries(&results);
        assert_eq!(entries[0].plan, "none");
        assert!(entries[0].recovery.is_quiet());
        assert!(entries[1].plan.starts_with("faults(seed11"));
        assert!(entries[1].scenario.contains(&entries[1].plan));
        assert!(entries[1].recovery.task_failures > 0);
        // A faults baseline feeds `compare` like the others.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].scenario, rows[1].scenario);
        let back: Vec<super::BenchFaultsEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn net_entries_label_wirings_and_roll_up_traffic() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        use sparklite::{LocalityMode, NetTopology, NetworkMode};
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR)
            .with_grid(4, 10);
        let wired = s.clone().with_network(NetworkMode::Topology {
            topology: NetTopology::new(4, 2).with_oversubscription(4.0),
            locality: LocalityMode::Blind,
        });
        let results = vec![run_scenario(&s).unwrap(), run_scenario(&wired).unwrap()];
        let entries = super::bench_net_entries(&results);
        assert_eq!(entries[0].wiring, "loopback");
        assert!(entries[0].network.is_empty());
        assert_eq!(entries[1].wiring, "net(4n/2r,os4,blind)");
        assert!(entries[1].scenario.contains(&entries[1].wiring));
        assert!(entries[1].network.total_bytes > 0);
        // The per-link counters partition the locality split exactly.
        assert_eq!(
            entries[1].network.total_bytes,
            entries[1].network.rack_local_bytes + entries[1].network.cross_rack_bytes
        );
        // A network baseline feeds `compare` like the others.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].scenario, rows[1].scenario);
        let back: Vec<super::BenchNetEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn runtime_rows_load_from_profile_entries() {
        // `compare` must accept both baseline formats; a profile entry's
        // extra fields deserialize away silently. A pre-explainer row (no
        // `digest` key) must also load as a DigestRow with `digest: None`.
        let json = r#"[{"app":"sort","scenario":"sort-tiny@Tier 2, 1x40",
                        "virtual_runtime_s":1.5,"attribution":{"compute":1.5}}]"#;
        let rows: Vec<RuntimeRow> = serde_json::from_str(json).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].virtual_runtime_s, 1.5);
        let drows: Vec<super::DigestRow> = serde_json::from_str(json).unwrap();
        assert_eq!(drows[0].digest, None);
    }

    #[test]
    fn profile_entries_carry_conserving_digests_and_explain_joins() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        let entries = super::bench_profile_entries(std::slice::from_ref(&r));
        let d = entries[0].digest.as_ref().unwrap();
        assert!(d.conserves(), "baseline digest must conserve");
        // DigestRow loads from the serialized baseline with the digest
        // intact, and a self-join explains to an all-zero conserved report.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<super::DigestRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows[0].digest.as_ref(), Some(d));
        let (explained, notes) = super::explain_baselines(&rows, &rows, &[]);
        assert_eq!(explained.len(), 1);
        assert!(notes.is_empty());
        assert!(explained[0].report.is_zero());
        assert!(explained[0].report.conserves());
        // Digest-less rows degrade to a note instead of failing the join.
        let mut bare = rows.clone();
        bare[0].digest = None;
        let (none_explained, bare_notes) = super::explain_baselines(&bare, &rows, &[]);
        assert!(none_explained.is_empty());
        assert_eq!(bare_notes.len(), 1);
        assert!(bare_notes[0].contains("no digest"));
        // Filtering to an unknown scenario surfaces as a note too.
        let (_, missing) = super::explain_baselines(&rows, &rows, &["nope".to_string()]);
        assert!(missing.iter().any(|n| n.contains("no such scenario")));
    }

    #[test]
    fn compare_joins_on_label_and_flags_drift() {
        let base = vec![row("a", 1.0), row("b", 2.0), row("gone", 3.0)];
        let cand = vec![row("a", 1.01), row("b", 2.0), row("new", 4.0)];
        let (deltas, unmatched) = compare_runtimes(&base, &cand);
        assert_eq!(deltas.len(), 2);
        assert!((deltas[0].delta_pct - 1.0).abs() < 1e-9);
        assert!(deltas[0].out_of_tolerance(0.5));
        assert!(!deltas[0].out_of_tolerance(2.0));
        assert_eq!(deltas[1].delta_pct, 0.0);
        assert_eq!(
            unmatched,
            vec![
                "baseline-only: gone".to_string(),
                "candidate-only: new".to_string()
            ]
        );
    }
}
