//! # memtier-bench — table/figure regeneration harnesses
//!
//! One binary per paper artifact (Tables I–II, Figs. 2–6, the takeaways),
//! plus Criterion benches (`benches/`) that time the underlying campaigns
//! and the ablations DESIGN.md calls out. Every binary prints the same rows
//! or series the paper reports and, with `--json <path>`, also dumps the raw
//! results for EXPERIMENTS.md regeneration.

#![warn(missing_docs)]

use memtier_core::ScenarioResult;
use memtier_memsim::MigrationStats;
use serde::{Deserialize, Serialize};
use sparklite::RecoveryStats;
use std::collections::BTreeMap;

/// Worker threads for campaign parallelism (scenarios are independent
/// deterministic simulations; parallelism never changes a measurement).
pub fn campaign_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Parse `--json <path>` from argv, if present.
pub fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dump a serializable value to the `--json` path when one was given.
pub fn maybe_dump_json<T: Serialize>(value: &T) {
    if let Some(path) = json_path() {
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Render a ratio as a signed percent string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// One row of the machine-readable perf baseline (`BENCH_profile.json`): a
/// scenario's end-to-end virtual runtime and its conserved critical-path
/// attribution (component name → seconds; the components sum to
/// `virtual_runtime_s` exactly, see `sparklite::RunProfile::conserves`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchProfileEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Critical-path attribution: component name → seconds on the path.
    pub attribution: BTreeMap<String, f64>,
}

impl BenchProfileEntry {
    /// Absolute gap between the attribution sum and the runtime, seconds.
    /// Zero up to float rounding when the profile conserved.
    pub fn conservation_gap_s(&self) -> f64 {
        let total: f64 = self.attribution.values().sum();
        (total - self.virtual_runtime_s).abs()
    }
}

/// Build the perf-baseline rows for a result set, in input order.
pub fn bench_profile_entries(results: &[ScenarioResult]) -> Vec<BenchProfileEntry> {
    results
        .iter()
        .map(|r| BenchProfileEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            attribution: r.profile.attribution.named_seconds().into_iter().collect(),
        })
        .collect()
}

/// Write the consolidated machine-readable perf baseline to `path` — the
/// artifact CI archives so perf regressions show up as an attribution diff,
/// not just a runtime delta.
pub fn write_bench_profile(path: &str, results: &[ScenarioResult]) {
    let entries = bench_profile_entries(results);
    let json = serde_json::to_string_pretty(&entries).expect("serialize perf baseline");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path} ({} entries)", entries.len());
}

/// One row of the object-hotness baseline (`BENCH_hotness.json`): a
/// scenario's virtual runtime, its total nominal memory stall, and the
/// hottest objects ranked by the bytes they moved. The full per-tier ledger
/// conserves against the machine counters in-process before this summary is
/// written; the file keeps the top objects only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchHotnessEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, executor grid).
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Total nominal memory stall across all objects and tiers, seconds.
    pub total_stall_s: f64,
    /// Hottest objects by bytes moved, descending.
    pub objects: Vec<HotObjectRow>,
}

/// One hot object inside a [`BenchHotnessEntry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotObjectRow {
    /// Object label (`rdd3:cache`, `shuffle1:write`, `scratch`, ...).
    pub object: String,
    /// Total bytes moved for this object across all tiers.
    pub total_bytes: u64,
    /// Nominal stall this object's accesses cost, seconds.
    pub stall_s: f64,
    /// Stall seconds saved if the object's traffic had run on Tier 0.
    pub promotion_gain_s: f64,
}

/// How many hot objects each [`BenchHotnessEntry`] keeps.
pub const HOTNESS_TOP_K: usize = 10;

/// Build the hotness-baseline rows for a result set, in input order.
pub fn bench_hotness_entries(results: &[ScenarioResult]) -> Vec<BenchHotnessEntry> {
    results
        .iter()
        .map(|r| BenchHotnessEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            virtual_runtime_s: r.elapsed_s,
            total_stall_s: r.hotness.total_stall().as_secs_f64(),
            objects: r
                .hotness
                .top_by_bytes(HOTNESS_TOP_K)
                .into_iter()
                .map(|o| HotObjectRow {
                    object: o.label.clone(),
                    total_bytes: o.total_bytes,
                    stall_s: o.stall.as_secs_f64(),
                    promotion_gain_s: o.promotion_gain().as_secs_f64(),
                })
                .collect(),
        })
        .collect()
}

/// One row of the placement-policy baseline (`BENCH_policy.json`): a
/// scenario's virtual runtime under one placement policy (static membind or
/// a dynamic engine configuration) plus what the engine did. The `scenario`
/// label embeds the policy for dynamic runs, so rows join uniquely and the
/// file feeds `compare` like every other baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchPolicyEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, grid, `[policy]` suffix
    /// for dynamic runs).
    pub scenario: String,
    /// Policy label (`static`, `hotcold(256MiB,5ms)`, ...).
    pub policy: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// Migration activity (all zeros for static runs).
    pub migrations: MigrationStats,
}

/// Build the policy-baseline rows for a result set, in input order.
pub fn bench_policy_entries(results: &[ScenarioResult]) -> Vec<BenchPolicyEntry> {
    results
        .iter()
        .map(|r| BenchPolicyEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            policy: r
                .scenario
                .placement
                .as_ref()
                .map(|spec| spec.label())
                .unwrap_or_else(|| "static".to_string()),
            virtual_runtime_s: r.elapsed_s,
            migrations: r.migrations,
        })
        .collect()
}

/// One row of the fault-tolerance baseline (`BENCH_faults.json`): a
/// scenario's virtual runtime under one fault plan plus the scheduler's
/// recovery rollup. The `scenario` label embeds the plan for faulty runs,
/// so rows join uniquely and the file feeds `compare` like every other
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFaultsEntry {
    /// Workload name.
    pub app: String,
    /// Full scenario label (workload, size, tier, grid, `[faults(...)]`
    /// suffix for runs carrying a plan).
    pub scenario: String,
    /// Fault-plan label (`none` for plan-free runs).
    pub plan: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
    /// What recovery did (quiet — fault and waste counters all zero — for
    /// plan-free and zero-fault runs; `useful_time` accrues regardless).
    pub recovery: RecoveryStats,
}

/// Build the fault-baseline rows for a result set, in input order.
pub fn bench_faults_entries(results: &[ScenarioResult]) -> Vec<BenchFaultsEntry> {
    results
        .iter()
        .map(|r| BenchFaultsEntry {
            app: r.scenario.workload.clone(),
            scenario: r.scenario.label(),
            plan: r
                .scenario
                .faults
                .as_ref()
                .map(|p| p.label())
                .unwrap_or_else(|| "none".to_string()),
            virtual_runtime_s: r.elapsed_s,
            recovery: r.recovery,
        })
        .collect()
}

/// The fields `compare` needs from a baseline row — deserializes from both
/// `BENCH_profile.json` and `BENCH_hotness.json` entries (unknown fields are
/// ignored).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeRow {
    /// Full scenario label; the join key between two baselines.
    pub scenario: String,
    /// End-to-end virtual runtime, seconds.
    pub virtual_runtime_s: f64,
}

/// One scenario's baseline-vs-candidate runtime comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuntimeDelta {
    /// Full scenario label.
    pub scenario: String,
    /// Baseline virtual runtime, seconds.
    pub baseline_s: f64,
    /// Candidate virtual runtime, seconds.
    pub candidate_s: f64,
    /// Signed relative change, percent (`+` means the candidate is slower).
    pub delta_pct: f64,
}

impl RuntimeDelta {
    /// Whether the delta exceeds `tolerance_pct` in either direction.
    pub fn out_of_tolerance(&self, tolerance_pct: f64) -> bool {
        self.delta_pct.abs() > tolerance_pct
    }
}

/// Join two baselines on the scenario label and compute per-scenario
/// runtime deltas. Returns the deltas (baseline order) plus the labels
/// present in only one side — a changed scenario set is itself a
/// comparison failure, so `compare` reports those too.
pub fn compare_runtimes(
    baseline: &[RuntimeRow],
    candidate: &[RuntimeRow],
) -> (Vec<RuntimeDelta>, Vec<String>) {
    let cand: BTreeMap<&str, f64> = candidate
        .iter()
        .map(|r| (r.scenario.as_str(), r.virtual_runtime_s))
        .collect();
    let base_labels: std::collections::BTreeSet<&str> =
        baseline.iter().map(|r| r.scenario.as_str()).collect();
    let mut deltas = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for r in baseline {
        match cand.get(r.scenario.as_str()) {
            Some(&c) => deltas.push(RuntimeDelta {
                scenario: r.scenario.clone(),
                baseline_s: r.virtual_runtime_s,
                candidate_s: c,
                delta_pct: if r.virtual_runtime_s > 0.0 {
                    (c - r.virtual_runtime_s) / r.virtual_runtime_s * 100.0
                } else {
                    0.0
                },
            }),
            None => unmatched.push(format!("baseline-only: {}", r.scenario)),
        }
    }
    for r in candidate {
        if !base_labels.contains(r.scenario.as_str()) {
            unmatched.push(format!("candidate-only: {}", r.scenario));
        }
    }
    (deltas, unmatched)
}

#[cfg(test)]
mod tests {
    use super::{compare_runtimes, RuntimeRow};

    fn row(scenario: &str, s: f64) -> RuntimeRow {
        RuntimeRow {
            scenario: scenario.to_string(),
            virtual_runtime_s: s,
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::campaign_threads() >= 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(super::pct(0.25), "+25.0%");
        assert_eq!(super::pct(-0.051), "-5.1%");
    }

    #[test]
    fn profile_entries_conserve_and_round_trip() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("repartition", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        let entries = super::bench_profile_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].app, "repartition");
        assert!(entries[0].virtual_runtime_s > 0.0);
        assert!(
            entries[0].conservation_gap_s() < 1e-9,
            "gap {}",
            entries[0].conservation_gap_s()
        );
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchProfileEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn hotness_entries_summarize_the_report() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("sort", DataSize::Tiny, TierId::NVM_NEAR);
        let r = run_scenario(&s).unwrap();
        assert!(r.hotness.conserves(&r.counters));
        let entries = super::bench_hotness_entries(std::slice::from_ref(&r));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.app, "sort");
        assert!(e.total_stall_s > 0.0);
        assert!(!e.objects.is_empty() && e.objects.len() <= super::HOTNESS_TOP_K);
        for pair in e.objects.windows(2) {
            assert!(pair[0].total_bytes >= pair[1].total_bytes);
        }
        // Everything ran on an NVM tier, so promoting the traffic to local
        // DRAM saves stall on every object that moved bytes.
        assert!(e.objects[0].promotion_gain_s > 0.0);
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<super::BenchHotnessEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn policy_entries_label_static_and_dynamic_runs() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_des::SimTime;
        use memtier_memsim::{PlacementSpec, TierId};
        use memtier_workloads::DataSize;
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
        let d = s
            .clone()
            .with_placement(PlacementSpec::hot_cold(256 << 20, SimTime::from_ms(1)));
        let results = vec![run_scenario(&s).unwrap(), run_scenario(&d).unwrap()];
        let entries = super::bench_policy_entries(&results);
        assert_eq!(entries[0].policy, "static");
        assert_eq!(entries[0].migrations, Default::default());
        assert!(entries[1].policy.contains("hotcold"));
        assert!(entries[1].scenario.contains(&entries[1].policy));
        assert!(entries[1].migrations.epochs > 0);
        // A policy baseline feeds `compare` like the others.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].scenario, rows[1].scenario);
    }

    #[test]
    fn faults_entries_label_plans_and_roll_up_recovery() {
        use memtier_core::{run_scenario, Scenario};
        use memtier_memsim::TierId;
        use memtier_workloads::DataSize;
        use sparklite::FaultPlan;
        let s = Scenario::default_conf("pagerank", DataSize::Tiny, TierId::NVM_NEAR);
        let f = s
            .clone()
            .with_faults(FaultPlan::seeded(11).with_task_failures(0.15));
        let results = vec![run_scenario(&s).unwrap(), run_scenario(&f).unwrap()];
        let entries = super::bench_faults_entries(&results);
        assert_eq!(entries[0].plan, "none");
        assert!(entries[0].recovery.is_quiet());
        assert!(entries[1].plan.starts_with("faults(seed11"));
        assert!(entries[1].scenario.contains(&entries[1].plan));
        assert!(entries[1].recovery.task_failures > 0);
        // A faults baseline feeds `compare` like the others.
        let json = serde_json::to_string(&entries).unwrap();
        let rows: Vec<RuntimeRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_ne!(rows[0].scenario, rows[1].scenario);
        let back: Vec<super::BenchFaultsEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn runtime_rows_load_from_profile_entries() {
        // `compare` must accept both baseline formats; a profile entry's
        // extra fields deserialize away silently.
        let json = r#"[{"app":"sort","scenario":"sort-tiny@Tier 2, 1x40",
                        "virtual_runtime_s":1.5,"attribution":{"compute":1.5}}]"#;
        let rows: Vec<RuntimeRow> = serde_json::from_str(json).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].virtual_runtime_s, 1.5);
    }

    #[test]
    fn compare_joins_on_label_and_flags_drift() {
        let base = vec![row("a", 1.0), row("b", 2.0), row("gone", 3.0)];
        let cand = vec![row("a", 1.01), row("b", 2.0), row("new", 4.0)];
        let (deltas, unmatched) = compare_runtimes(&base, &cand);
        assert_eq!(deltas.len(), 2);
        assert!((deltas[0].delta_pct - 1.0).abs() < 1e-9);
        assert!(deltas[0].out_of_tolerance(0.5));
        assert!(!deltas[0].out_of_tolerance(2.0));
        assert_eq!(deltas[1].delta_pct, 0.0);
        assert_eq!(
            unmatched,
            vec![
                "baseline-only: gone".to_string(),
                "candidate-only: new".to_string()
            ]
        );
    }
}
