//! Simulator throughput baseline (`simspeed`): how fast is the engine
//! itself? Runs the whole suite across tiers with the engine self-profiler
//! on, plus a synthetic wide-DAG stressor, and reports events/sec,
//! tasks/sec and the virtual-to-wall speedup per run alongside each run's
//! top wall-clock hotspots.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin simspeed
//! # -> results/BENCH_simspeed.json
//! ```
//!
//! Unlike every other harness, scenarios run **sequentially by default**
//! (`--jobs 1`): wall-clock throughput is the measurement here, and
//! concurrent runs would share cores and depress each other's numbers. An
//! explicit `--jobs N` still works — the deterministic fields are identical
//! at any width; only the wall-clock sidecar columns degrade.
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--app <name>` to measure a single workload (the CI
//! simspeed-smoke step uses this), `--jobs <n>` (default 1, see above), and
//! `--check` to re-read the artifact and verify it parses, its rows are
//! sane, its deterministic fields regenerate byte-identically, and
//! profiling stays byte-invisible to the virtual results.

use memtier_bench::{
    bench_simspeed_entries, check_fail as fail, compare_runtimes, parallel_sweep, simspeed_row,
    write_json_artifact, BenchArgs, BenchSimspeedEntry, RuntimeRow,
};
use memtier_core::{run_scenario, run_scenario_profiled, Scenario};
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use memtier_workloads::DataSize;
use sparklite::{OpCost, SparkConf, SparkContext};

/// App label of the synthetic stressor row (not a suite workload).
const STRESS_APP: &str = "dag-stress";

fn main() {
    let args = BenchArgs::parse();
    let apps = args.apps();
    // Sequential unless --jobs says otherwise: wall-clock is the measurement.
    let jobs = args.jobs_or(1);
    let (size, dir, check) = (args.size, args.dir, args.check);

    let scenarios: Vec<Scenario> = apps
        .iter()
        .flat_map(|app| {
            TierId::all()
                .into_iter()
                .map(move |t| Scenario::default_conf(app, size, t))
        })
        .collect();
    eprintln!(
        "measuring {} suite scenarios + 1 synthetic stressor ({size}, {jobs} worker{})…",
        scenarios.len(),
        if jobs == 1 {
            " — wall-clock is the measurement"
        } else {
            "s: wall-clock columns will share cores"
        }
    );

    let results = parallel_sweep(&scenarios, jobs, |s| {
        let r = run_scenario_profiled(s).expect("simspeed run");
        let e = r.engine.as_ref().expect("profiled run carries EngineStats");
        eprintln!("{}: {}", r.scenario.label(), e.summary());
        r
    });
    let mut entries = bench_simspeed_entries(&results);
    entries.push(dag_stress_entry(size));

    print_throughput(&entries);
    let path = format!("{dir}/BENCH_simspeed.json");
    write_json_artifact(&path, &entries);

    if check {
        verify(&path, &scenarios[0]);
        println!(
            "  check passed: artifact parses, rows are sane, deterministic fields \
             regenerate identically, and profiling is byte-invisible"
        );
    }
}

/// A deterministic 64-bit mixer (SplitMix-style) so the stressor needs no
/// RNG state: record contents are a pure function of the index.
fn mix(x: u64) -> u64 {
    let x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// The synthetic DAG stressor: a shuffle cascade (generate → map →
/// reduce_by_key → partition_by → join → sort_by_key → count) much wider
/// than any suite workload. It exists to stress the event queue and the
/// `SharedResource` re-share path — the engine's known hot spots — rather
/// than to model anything; its virtual result is still deterministic and
/// gated like every other row.
fn dag_stress_entry(size: DataSize) -> BenchSimspeedEntry {
    let (records, partitions) = match size {
        DataSize::Tiny => (2_000usize, 16usize),
        DataSize::Small => (20_000, 32),
        DataSize::Large => (100_000, 64),
    };
    let conf = SparkConf::bound_to_tier(TierId::NVM_NEAR)
        .with_parallelism(partitions)
        .with_engine_profiling();
    let sc = SparkContext::new(conf).expect("stressor context");

    let per_part = records / partitions;
    let input = sc.generate(
        partitions,
        move |part| {
            (0..per_part)
                .map(|i| {
                    let x = mix((part * per_part + i) as u64);
                    (x % 4096, x)
                })
                .collect::<Vec<(u64, u64)>>()
        },
        OpCost::cpu(40.0),
    );
    let left = input
        .map(|&(k, v)| (k % 1024, v))
        .reduce_by_key(u64::wrapping_add);
    let right = input
        .map(|&(k, v)| (k % 1024, v.rotate_left(7)))
        .partition_by(partitions);
    let joined = left.join(&right, partitions);
    let sorted = joined
        .map(|&(k, (a, b))| (a ^ b ^ k, k))
        .sort_by_key(partitions)
        .expect("stressor sort");
    let n = sorted.count().expect("stressor count");
    assert!(n > 0, "stressor produced no records");

    let report = sc.finish();
    let engine = report
        .engine
        .expect("profiled stressor carries EngineStats");
    eprintln!("{STRESS_APP}-{size}: {}", engine.summary());
    simspeed_row(
        STRESS_APP.to_string(),
        format!("{STRESS_APP}-{size}@Tier 2, {partitions}p"),
        report.elapsed.as_secs_f64(),
        report.metrics.tasks,
        &engine,
    )
}

/// The throughput table: per run, how much work the engine did and how fast
/// it did it.
fn print_throughput(entries: &[BenchSimspeedEntry]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "virtual (s)",
        "wall (ms)",
        "events",
        "events/s",
        "tasks/s",
        "virtual/wall",
    ])
    .title("Simulator throughput (wall-clock columns vary by host; the rest is deterministic)");
    for e in entries {
        t.row(vec![
            e.scenario.clone(),
            fmt_f64(e.virtual_runtime_s, 4),
            fmt_f64(e.wall_ms, 1),
            e.events_total.to_string(),
            fmt_f64(e.events_per_sec, 0),
            fmt_f64(e.tasks_per_sec, 0),
            fmt_f64(e.virtual_to_wall, 2),
        ]);
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses and stays
/// sane; re-running one scenario reproduces the deterministic projection of
/// its row byte-for-byte (wall-clock fields are expected to differ); the
/// re-run row joins its on-disk twin cleanly through `compare` at tolerance
/// zero; and an unprofiled run of the same scenario is virtual-identical to
/// the profiled one.
fn verify(path: &str, scenario: &Scenario) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchSimspeedEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid simspeed baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    for e in &entries {
        if e.virtual_runtime_s <= 0.0 || e.events_total == 0 || e.tasks == 0 {
            fail(format!(
                "{path}: {} has empty deterministic fields",
                e.scenario
            ));
        }
        if e.wall_ms <= 0.0 || e.events_per_sec <= 0.0 || e.tasks_per_sec <= 0.0 {
            fail(format!("{path}: {} has an empty sidecar", e.scenario));
        }
        if !e.virtual_to_wall.is_finite() {
            fail(format!(
                "{path}: {} has a non-finite virtual-to-wall ratio",
                e.scenario
            ));
        }
    }
    if !entries.iter().any(|e| e.app == STRESS_APP) {
        fail(format!("{path} is missing the {STRESS_APP} row"));
    }

    // Determinism through serialization: a fresh profiled run of the first
    // suite scenario must reproduce its on-disk row's deterministic
    // projection exactly, even though its wall-clock sidecar differs.
    let rerun = run_scenario_profiled(scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_simspeed_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    if fresh[0].deterministic_json() != on_disk.deterministic_json() {
        fail(format!(
            "{} deterministic fields do not regenerate identically:\n fresh: {}\n disk:  {}",
            scenario.label(),
            fresh[0].deterministic_json(),
            on_disk.deterministic_json()
        ));
    }

    // And the artifact feeds `compare` like every other baseline: the
    // re-run row joins its on-disk twin with a delta of exactly zero —
    // wall-clock fields are invisible to the gate by construction.
    let disk_rows: Vec<RuntimeRow> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} does not load as runtime rows: {e}")));
    let fresh_rows: Vec<RuntimeRow> =
        serde_json::from_str(&serde_json::to_string(&fresh).expect("serialize fresh row"))
            .unwrap_or_else(|e| fail(format!("fresh row does not load as a runtime row: {e}")));
    let disk_row = disk_rows
        .iter()
        .find(|r| r.scenario == scenario.label())
        .cloned()
        .unwrap_or_else(|| fail(format!("{} missing from runtime rows", scenario.label())));
    let (deltas, unmatched) = compare_runtimes(&[disk_row], &fresh_rows);
    if !unmatched.is_empty() || deltas.iter().any(|d| d.out_of_tolerance(0.0)) {
        fail(format!(
            "re-run drifted through `compare` at tolerance 0: {deltas:?} {unmatched:?}"
        ));
    }

    // The firewall itself: an unprofiled run of the same scenario is
    // byte-identical to the profiled one outside the sidecar.
    let plain = run_scenario(scenario).unwrap_or_else(|e| fail(format!("plain re-run: {e}")));
    if plain.engine.is_some() {
        fail("unprofiled run grew an engine sidecar".to_string());
    }
    if plain.virtual_identity_json() != rerun.virtual_identity_json() {
        fail(format!(
            "profiling changed virtual results for {}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated identically; profiling is byte-invisible",
        scenario.label()
    );
}
