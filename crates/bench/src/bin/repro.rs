//! One-shot reproduction: run every campaign and write a self-contained
//! markdown report (default `REPORT.md`, override with `--out <path>`)
//! plus the machine-readable perf baseline (`BENCH_profile.json`, override
//! with `--profile-out <path>`) CI archives.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin repro [-- --out REPORT.md]
//! ```

use memtier_bench::{campaign_threads, write_bench_profile};
use memtier_core::campaign::{
    by_workload_size, fig2_campaign, fig3_campaign, fig4_grid, FIG4_APPS, FIG4_CORES,
    FIG4_EXECUTORS,
};
use memtier_core::guidelines::{check_all, CampaignData};
use memtier_core::predict::{combined_model, correlation_with_specs, leave_one_tier_out};
use memtier_core::{Fig4Cell, ScenarioResult};
use memtier_memsim::probe::table1;
use memtier_memsim::{MemorySystem, TierId};
use memtier_workloads::{all_workloads, DataSize};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "REPORT.md".to_string());
    let profile_path = args
        .iter()
        .position(|a| a == "--profile-out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    let threads = campaign_threads();
    let mut md = String::new();

    writeln!(md, "# spark-memtier reproduction report\n").unwrap();
    writeln!(
        md,
        "Deterministic virtual-time reproduction of Katsaragakis et al., IPDPSW 2023. \
         Every number below regenerates bit-identically from `--bin repro`.\n"
    )
    .unwrap();

    // --- Table I ---------------------------------------------------------
    eprintln!("[1/6] Table I probes…");
    let rows = table1(&MemorySystem::paper_default());
    writeln!(
        md,
        "## Table I — tier characteristics (measured by probe)\n"
    )
    .unwrap();
    writeln!(md, "| tier | idle latency (ns) | bandwidth (GB/s) |").unwrap();
    writeln!(md, "|---|---|---|").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            md,
            "| Tier {i} | {:.1} | {:.2} |",
            r.idle_latency_ns, r.bandwidth_gb_s
        )
        .unwrap();
    }

    // --- Fig 2 -----------------------------------------------------------
    eprintln!("[2/6] Fig 2 campaign (84 scenarios)…");
    let fig2 = fig2_campaign(threads).expect("fig2");
    writeln!(md, "\n## Fig. 2 — time / NVM accesses / energy\n").unwrap();
    writeln!(
        md,
        "| benchmark | size | T0 (s) | T1 (s) | T2 (s) | T3 (s) | T2 accesses | write ratio | DRAM J/DIMM | DCPM J/DIMM | stages | peak-stage share |"
    )
    .unwrap();
    writeln!(md, "|---|---|---|---|---|---|---|---|---|---|---|---|").unwrap();
    for ((w, s), mut v) in by_workload_size(&fig2) {
        v.sort_by_key(|r| r.scenario.tier);
        // Per-stage rollups of the Tier-2 run: how concentrated the NVM
        // traffic is in the hottest stage.
        let rollups = &v[2].stage_rollups;
        let traffic_total: u64 = rollups
            .iter()
            .map(|r| r.metrics.traffic.total_bytes())
            .sum();
        let peak_share = rollups
            .iter()
            .map(|r| r.metrics.traffic.total_bytes())
            .max()
            .filter(|_| traffic_total > 0)
            .map(|peak| peak as f64 / traffic_total as f64)
            .unwrap_or(0.0);
        writeln!(
            md,
            "| {w} | {s} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {:.2} | {:.2} | {:.2} | {} | {:.2} |",
            v[0].elapsed_s,
            v[1].elapsed_s,
            v[2].elapsed_s,
            v[3].elapsed_s,
            v[2].bound_tier_accesses(),
            v[2].write_ratio(),
            v[0].energy_per_dimm_j[TierId::LOCAL_DRAM.index()],
            v[2].energy_per_dimm_j[TierId::NVM_NEAR.index()],
            rollups.len(),
            peak_share,
        )
        .unwrap();
    }

    // --- Fig 3 -----------------------------------------------------------
    eprintln!("[3/6] Fig 3 campaign (210 scenarios)…");
    let fig3 = fig3_campaign(threads).expect("fig3");
    let mut worst: f64 = 0.0;
    for (_, v) in by_workload_size(&fig3) {
        let base = v
            .iter()
            .find(|r| r.scenario.mba_percent == Some(100))
            .map(|r| r.elapsed_s)
            .unwrap();
        for r in v {
            worst = worst.max((r.elapsed_s - base).abs() / base);
        }
    }
    writeln!(
        md,
        "\n## Fig. 3 — MBA sweep\n\nWorst per-run deviation from the 100 % baseline across \
         all 210 runs: **{:.2} %** (paper: unchanged — latency-bound).",
        worst * 100.0
    )
    .unwrap();

    // --- Fig 4 -----------------------------------------------------------
    eprintln!("[4/6] Fig 4 grids…");
    let mut fig4: Vec<(String, DataSize, Vec<Fig4Cell>)> = Vec::new();
    writeln!(
        md,
        "\n## Fig. 4 — executor grids (speedup over 1×40, NVM tier)\n"
    )
    .unwrap();
    for size in [DataSize::Small, DataSize::Large] {
        for app in FIG4_APPS {
            let cells = fig4_grid(app, size, threads).expect("fig4");
            writeln!(md, "### {app}-{size}\n").unwrap();
            let mut header = String::from("| executors \\\\ cores |");
            for c in FIG4_CORES {
                write!(header, " {c} |").unwrap();
            }
            writeln!(md, "{header}").unwrap();
            writeln!(md, "|---|---|---|---|---|---|").unwrap();
            for e in FIG4_EXECUTORS {
                let mut row = format!("| {e} |");
                for c in FIG4_CORES {
                    match cells.iter().find(|x| x.executors == e && x.cores == c) {
                        Some(cell) => write!(row, " {:.2}x |", cell.speedup).unwrap(),
                        None => write!(row, " - |").unwrap(),
                    }
                }
                writeln!(md, "{row}").unwrap();
            }
            writeln!(md).unwrap();
            fig4.push((app.to_string(), size, cells));
        }
    }

    // --- Figs 5/6 + prediction --------------------------------------------
    eprintln!("[5/6] correlation analyses…");
    writeln!(md, "## Fig. 6 — spec correlations and prediction\n").unwrap();
    writeln!(
        md,
        "| benchmark | size | corr(lat) | corr(bw) | LOTO MAPE |"
    )
    .unwrap();
    writeln!(md, "|---|---|---|---|---|").unwrap();
    for ((w, s), mut v) in by_workload_size(&fig2) {
        v.sort_by_key(|r| r.scenario.tier);
        let c = correlation_with_specs(&v);
        let m = leave_one_tier_out(&v);
        writeln!(
            md,
            "| {w} | {s} | {} | {} | {} |",
            c.latency_r.map(|r| format!("{r:.3}")).unwrap_or("-".into()),
            c.bandwidth_r
                .map(|r| format!("{r:.3}"))
                .unwrap_or("-".into()),
            m.map(|x| format!("{:.1}%", x * 100.0))
                .unwrap_or("-".into()),
        )
        .unwrap();
    }
    let refs: Vec<&ScenarioResult> = fig2.iter().collect();
    if let Some(combined) = combined_model(&refs) {
        writeln!(
            md,
            "\nCombined specs+events model over the whole campaign: R² = {:.3}, \
             MAPE = {:.1} % (paper §IV-F's expectation).",
            combined.r_squared,
            combined.mape * 100.0
        )
        .unwrap();
    }

    // --- Takeaways ---------------------------------------------------------
    eprintln!("[6/6] takeaway checks…");
    let reports = check_all(&CampaignData {
        fig2: &fig2,
        fig3: &fig3,
        fig4: &fig4,
    });
    writeln!(md, "\n## Takeaways\n").unwrap();
    let mut pass = 0;
    for r in &reports {
        writeln!(
            md,
            "- **T{} [{}]** {} — {}",
            r.id,
            if r.holds { "PASS" } else { "FAIL" },
            r.statement,
            r.evidence
        )
        .unwrap();
        pass += usize::from(r.holds);
    }
    writeln!(md, "\n**{pass}/8 takeaways reproduced.**").unwrap();

    // --- Critical-path attribution (perf baseline) -------------------------
    write_bench_profile(&profile_path, &fig2);
    writeln!(md, "\n## Critical-path attribution (perf baseline)\n").unwrap();
    writeln!(
        md,
        "Per-run virtual-time attribution over the critical path (conserved: the \
         components sum to the runtime exactly). Dominant component of each \
         large-size Tier-2 run below; the full per-run vector is in \
         `{profile_path}`.\n"
    )
    .unwrap();
    writeln!(
        md,
        "| benchmark | runtime (s) | compute | shuffle fetch | queue | mem stall | dominant |"
    )
    .unwrap();
    writeln!(md, "|---|---|---|---|---|---|---|").unwrap();
    for ((w, s), mut v) in by_workload_size(&fig2) {
        if s != DataSize::Large {
            continue;
        }
        v.sort_by_key(|r| r.scenario.tier);
        let r = v[2];
        assert!(
            r.profile.conserves(),
            "attribution must conserve for {w}-{s}"
        );
        let a = &r.profile.attribution;
        let named = a.named_seconds();
        let dominant = named
            .iter()
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        writeln!(
            md,
            "| {w} | {:.3} | {:.2} | {:.2} | {:.2} | {:.2} | {dominant} |",
            r.elapsed_s,
            a.compute.as_secs_f64() / r.elapsed_s,
            a.shuffle_fetch.as_secs_f64() / r.elapsed_s,
            a.sched_queue.as_secs_f64() / r.elapsed_s,
            a.mem_total().as_secs_f64() / r.elapsed_s,
        )
        .unwrap();
    }

    // Suite inventory footer.
    writeln!(md, "\n## Suite\n").unwrap();
    for w in all_workloads() {
        writeln!(
            md,
            "- `{}` ({}) — {}",
            w.name(),
            w.category(),
            w.data_description(DataSize::Large)
        )
        .unwrap();
    }

    std::fs::write(&out_path, md).expect("write report");
    eprintln!("wrote {out_path} ({pass}/8 takeaways)");
    if pass < 8 {
        std::process::exit(1);
    }
}
