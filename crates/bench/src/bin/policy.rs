//! Placement-policy harness: sweep the dynamic engine's DRAM capacity ×
//! epoch grid against the static membind endpoints on every suite workload,
//! verify the acceptance ordering (HotCold beats static NVM and loses to
//! all-DRAM), verify migration traffic conserves against the machine
//! counters in exact integers, and write the machine-readable policy
//! baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin policy
//! # -> results/BENCH_policy.json
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--app <name>` to sweep a single workload (the CI
//! policy-smoke step uses this), `--jobs <n>` sweep workers (default: all
//! cores; any width is byte-identical), and `--check` to re-read the
//! artifact and verify it parses, stays internally consistent, and
//! regenerates byte-identically from a fresh run.

use memtier_bench::{
    bench_policy_entries, campaign_threads, check_fail as fail, parallel_sweep, pct,
    write_json_artifact, BenchArgs, BenchPolicyEntry,
};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::{PlacementSpec, TierId};
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;

/// The DRAM-capacity axis of the sweep (bytes).
const CAPACITIES: [u64; 3] = [1 << 20, 16 << 20, 256 << 20];

/// The epoch axis of the sweep (microseconds of virtual time).
const EPOCHS_US: [u64; 2] = [100, 1_000];

/// The single `WearAware` point, run at the roomiest HotCold configuration
/// to show the write-penalty's effect in isolation.
const WEAR_CAPACITY: u64 = 256 << 20;

fn main() {
    let args = BenchArgs::parse();
    let apps = args.apps();
    let jobs = args.jobs_or(campaign_threads());
    let (size, dir, check) = (args.size, args.dir, args.check);

    // Per app: the two static endpoints, the HotCold grid, one WearAware
    // point. Dynamic runs bind to NVM_NEAR — the tier the engine promotes
    // *out of*, and the static endpoint it has to beat.
    let mut scenarios = Vec::new();
    for app in &apps {
        scenarios.push(Scenario::default_conf(app, size, TierId::LOCAL_DRAM));
        scenarios.push(Scenario::default_conf(app, size, TierId::NVM_NEAR));
        for &cap in &CAPACITIES {
            for &epoch_us in &EPOCHS_US {
                scenarios.push(
                    Scenario::default_conf(app, size, TierId::NVM_NEAR)
                        .with_placement(PlacementSpec::hot_cold(cap, SimTime::from_us(epoch_us))),
                );
            }
        }
        scenarios.push(
            Scenario::default_conf(app, size, TierId::NVM_NEAR).with_placement(
                PlacementSpec::wear_aware(WEAR_CAPACITY, SimTime::from_us(EPOCHS_US[1])),
            ),
        );
    }
    eprintln!(
        "sweeping {} scenarios ({} apps x {} policies, {size})…",
        scenarios.len(),
        apps.len(),
        scenarios.len() / apps.len()
    );
    let results = parallel_sweep(&scenarios, jobs, |s| run_scenario(s).expect("policy sweep"));

    check_conservation(&results);
    check_ordering(&apps, &results);
    print_sweep(&apps, &results);

    let path = format!("{dir}/BENCH_policy.json");
    write_json_artifact(&path, &bench_policy_entries(&results));

    if check {
        verify(&path, &results);
        println!("  check passed: artifact parses, stays consistent, and regenerates identically");
    }
}

/// Every dynamic run's migration traffic must be visible in the hotness
/// report and conserve against the machine counters in exact integers: the
/// `migration` ledger object carries each migration's read at the source
/// tier plus its write at the destination, i.e. exactly `2 × bytes_moved`.
fn check_conservation(results: &[ScenarioResult]) {
    for r in results {
        assert!(
            r.hotness.conserves(&r.counters),
            "per-object attribution must partition the counters for {}",
            r.scenario.label()
        );
        let migration_bytes: u64 = r
            .hotness
            .objects
            .iter()
            .filter(|o| o.label == "migration")
            .map(|o| o.total_bytes)
            .sum();
        assert_eq!(
            migration_bytes,
            2 * r.migrations.bytes_moved,
            "migration ledger bytes must equal 2x the engine's bytes_moved for {}",
            r.scenario.label()
        );
        if r.scenario.placement.is_none() {
            assert_eq!(
                r.migrations,
                Default::default(),
                "static runs must not migrate: {}",
                r.scenario.label()
            );
        }
    }
}

/// The acceptance ordering, per workload: every HotCold point loses to the
/// all-DRAM endpoint, and the best HotCold point beats the static NVM_NEAR
/// endpoint it started from.
fn check_ordering(apps: &[String], results: &[ScenarioResult]) {
    for app in apps {
        let (dram, nvm, best) = endpoints(app, results);
        for r in hot_cold_runs(app, results) {
            assert!(
                r.elapsed_s > dram,
                "{}: HotCold ({:.6}s) must lose to all-DRAM ({dram:.6}s)",
                r.scenario.label(),
                r.elapsed_s
            );
        }
        assert!(
            best.elapsed_s < nvm,
            "{}: best HotCold ({:.6}s) must beat static NVM_NEAR ({nvm:.6}s)",
            best.scenario.label(),
            best.elapsed_s
        );
    }
}

/// The app's static endpoints and its fastest HotCold run.
fn endpoints<'a>(app: &str, results: &'a [ScenarioResult]) -> (f64, f64, &'a ScenarioResult) {
    let statics: Vec<&ScenarioResult> = results
        .iter()
        .filter(|r| r.scenario.workload == app && r.scenario.placement.is_none())
        .collect();
    let dram = statics
        .iter()
        .find(|r| r.scenario.tier == TierId::LOCAL_DRAM)
        .expect("all-DRAM endpoint")
        .elapsed_s;
    let nvm = statics
        .iter()
        .find(|r| r.scenario.tier == TierId::NVM_NEAR)
        .expect("NVM endpoint")
        .elapsed_s;
    let best = hot_cold_runs(app, results)
        .into_iter()
        .min_by(|a, b| a.elapsed_s.partial_cmp(&b.elapsed_s).unwrap())
        .expect("HotCold runs");
    (dram, nvm, best)
}

fn hot_cold_runs<'a>(app: &str, results: &'a [ScenarioResult]) -> Vec<&'a ScenarioResult> {
    results
        .iter()
        .filter(|r| {
            r.scenario.workload == app
                && matches!(r.scenario.placement, Some(PlacementSpec::HotCold { .. }))
        })
        .collect()
}

/// The sweep table: each run's runtime against the two static endpoints,
/// plus what the engine did to get there.
fn print_sweep(apps: &[String], results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "policy",
        "runtime (s)",
        "vs DRAM",
        "vs NVM",
        "migrations",
        "promoted",
        "moved (MB)",
    ])
    .title("Placement-policy sweep (dynamic engine vs static membind endpoints)");
    for app in apps {
        let (dram, nvm, _) = endpoints(app, results);
        for r in results.iter().filter(|r| &r.scenario.workload == app) {
            let policy = r
                .scenario
                .placement
                .as_ref()
                .map(|s| s.label())
                .unwrap_or_else(|| "static".to_string());
            t.row(vec![
                r.scenario.label(),
                policy,
                fmt_f64(r.elapsed_s, 4),
                pct(r.elapsed_s / dram - 1.0),
                pct(r.elapsed_s / nvm - 1.0),
                r.migrations.migrations.to_string(),
                r.migrations.promotions.to_string(),
                fmt_f64(r.migrations.bytes_moved as f64 / 1e6, 2),
            ]);
        }
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses, each entry is
/// internally consistent, and re-running one dynamic scenario reproduces its
/// row byte-for-byte (determinism end to end, through serialization).
fn verify(path: &str, results: &[ScenarioResult]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchPolicyEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid policy baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    for e in &entries {
        if e.virtual_runtime_s <= 0.0 {
            fail(format!("{path}: {} has a non-positive runtime", e.scenario));
        }
        let m = &e.migrations;
        if m.migrations != m.promotions + m.demotions {
            fail(format!(
                "{path}: {} migration counts are inconsistent: {m:?}",
                e.scenario
            ));
        }
        if e.policy == "static" && *m != Default::default() {
            fail(format!(
                "{path}: static run {} reports migrations: {m:?}",
                e.scenario
            ));
        }
    }

    // Re-run the first dynamic scenario and require its regenerated row to
    // match the one on disk exactly.
    let scenario = results
        .iter()
        .find(|r| r.scenario.placement.is_some())
        .expect("a dynamic run")
        .scenario
        .clone();
    let rerun = run_scenario(&scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_policy_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    let a = serde_json::to_string(&fresh[0]).expect("serialize fresh entry");
    let b = serde_json::to_string(on_disk).expect("serialize disk entry");
    if a != b {
        fail(format!(
            "{} does not regenerate byte-identically:\n fresh: {a}\n disk:  {b}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated byte-identically",
        scenario.label()
    );
}
