//! Fault-tolerance harness: sweep deterministic task-failure rates across
//! tier placements on every suite workload (plus one straggler+speculation
//! point), verify the acceptance properties — a zero-fault plan is
//! byte-identical to no plan, recovery overhead is monotone in the failure
//! rate, and recovery traffic conserves against the machine counters in
//! exact integers — and write the machine-readable faults baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin faults
//! # -> results/BENCH_faults.json
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--app <name>` to sweep a single workload (the CI
//! faults-smoke step uses this), `--jobs <n>` sweep workers (default: all
//! cores; any width is byte-identical), and `--check` to re-read the
//! artifact and verify it parses, stays internally consistent, and
//! regenerates byte-identically from a fresh run.

use memtier_bench::{
    bench_faults_entries, campaign_threads, check_fail as fail, parallel_sweep, pct,
    write_json_artifact, BenchArgs, BenchFaultsEntry,
};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_memsim::{ObjectId, TierId};
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use sparklite::{FaultPlan, SpeculationConf};

/// The failure-rate axis of the sweep (`0.0` is the plan-free endpoint).
const FAILURE_RATES: [f64; 3] = [0.0, 0.05, 0.15];

/// The tier-placement axis of the sweep.
const TIERS: [TierId; 2] = [TierId::LOCAL_DRAM, TierId::NVM_NEAR];

/// One seed for the whole artifact: the sweep is a pure function of it.
const SEED: u64 = 2024;

/// The straggler point: heavy slowdowns with speculation cleaning them up.
const STRAGGLER_PROB: f64 = 0.35;
const STRAGGLER_FACTOR: f64 = 8.0;

fn main() {
    let args = BenchArgs::parse();
    let apps = args.apps();
    let jobs = args.jobs_or(campaign_threads());
    let (size, dir, check) = (args.size, args.dir, args.check);

    // Per app: the failure-rate axis on each tier (rate 0 is the plan-free
    // endpoint), one zero-fault plan for the byte-identity check, and one
    // straggler+speculation point.
    let mut scenarios = Vec::new();
    for app in &apps {
        for &tier in &TIERS {
            for &rate in &FAILURE_RATES {
                let s = Scenario::default_conf(app, size, tier);
                scenarios.push(if rate > 0.0 {
                    s.with_faults(FaultPlan::seeded(SEED).with_task_failures(rate))
                } else {
                    s
                });
            }
        }
        scenarios.push(
            Scenario::default_conf(app, size, TierId::NVM_NEAR)
                .with_faults(FaultPlan::seeded(SEED)),
        );
        scenarios.push(
            Scenario::default_conf(app, size, TierId::NVM_NEAR).with_faults(
                FaultPlan::seeded(SEED)
                    .with_stragglers(STRAGGLER_PROB, STRAGGLER_FACTOR)
                    .with_speculation(SpeculationConf::default()),
            ),
        );
    }
    eprintln!(
        "sweeping {} scenarios ({} apps x {} plans, {size})…",
        scenarios.len(),
        apps.len(),
        scenarios.len() / apps.len()
    );
    let results = parallel_sweep(&scenarios, jobs, |s| run_scenario(s).expect("faults sweep"));

    check_conservation(&results);
    check_zero_fault_identity(&apps, &results);
    check_monotone_overhead(&apps, &results);
    print_sweep(&apps, &results);

    let path = format!("{dir}/BENCH_faults.json");
    write_json_artifact(&path, &bench_faults_entries(&results));

    if check {
        verify(&path, &results);
        println!("  check passed: artifact parses, stays consistent, and regenerates identically");
    }
}

/// Every run's attribution must partition the machine counters in exact
/// integers, faults or not, and the `recovery` ledger object must carry
/// exactly the bytes of the killed tasks' partially-drained flows.
fn check_conservation(results: &[ScenarioResult]) {
    for r in results {
        assert!(
            r.hotness.conserves(&r.counters),
            "per-object attribution must partition the counters for {}",
            r.scenario.label()
        );
        let recovery_bytes: u64 = r
            .hotness
            .objects
            .iter()
            .filter(|o| o.object == ObjectId::Recovery)
            .map(|o| o.total_bytes)
            .sum();
        assert_eq!(
            recovery_bytes,
            r.recovery.cancelled_bytes,
            "recovery ledger bytes must equal the cancelled flows' for {}",
            r.scenario.label()
        );
        if r.scenario.faults.is_none() {
            assert!(
                r.recovery.is_quiet(),
                "plan-free runs must report quiet recovery: {}",
                r.scenario.label()
            );
        }
    }
}

/// The subsystem's ground rule, re-checked on the artifact's own runs: the
/// zero-fault plan reproduces the plan-free NVM_NEAR endpoint byte-for-byte
/// (everything measured — only the scenario descriptor may differ).
fn check_zero_fault_identity(apps: &[String], results: &[ScenarioResult]) {
    for app in apps {
        let plain = find(results, app, TierId::NVM_NEAR, |s| s.faults.is_none());
        let zero = find(results, app, TierId::NVM_NEAR, |s| {
            s.faults.as_ref().is_some_and(|p| p.is_zero())
        });
        let blank = |r: &ScenarioResult| {
            let mut r = r.clone();
            r.scenario = plain.scenario.clone();
            serde_json::to_string(&r).expect("serialize result")
        };
        assert_eq!(
            blank(plain),
            blank(zero),
            "{app}: a zero-fault plan must be bit-for-bit no-plan"
        );
    }
}

/// Recovery overhead is monotone in the failure rate: on each tier, runtime
/// never decreases as the rate climbs, and the sweep as a whole injected
/// real failures.
fn check_monotone_overhead(apps: &[String], results: &[ScenarioResult]) {
    let mut total_failures = 0u64;
    for app in apps {
        for &tier in &TIERS {
            let series: Vec<&ScenarioResult> = FAILURE_RATES
                .iter()
                .map(|&rate| {
                    find(results, app, tier, |s| match &s.faults {
                        None => rate == 0.0,
                        Some(p) => {
                            p.task_failure_prob == rate && p.straggler_prob == 0.0 && !p.is_zero()
                        }
                    })
                })
                .collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].elapsed_s >= pair[0].elapsed_s,
                    "{}: runtime must be monotone in the failure rate \
                     ({:.6}s at a higher rate vs {:.6}s)",
                    pair[1].scenario.label(),
                    pair[1].elapsed_s,
                    pair[0].elapsed_s
                );
            }
            total_failures += series.iter().map(|r| r.recovery.task_failures).sum::<u64>();
        }
    }
    assert!(
        total_failures > 0,
        "the sweep must inject at least one failure overall"
    );
}

/// First result for `app` on `tier` whose scenario satisfies `pred`.
fn find<'a>(
    results: &'a [ScenarioResult],
    app: &str,
    tier: TierId,
    pred: impl Fn(&Scenario) -> bool,
) -> &'a ScenarioResult {
    results
        .iter()
        .find(|r| r.scenario.workload == app && r.scenario.tier == tier && pred(&r.scenario))
        .unwrap_or_else(|| panic!("missing sweep point for {app} on {tier}"))
}

/// The sweep table: each run's runtime against its plan-free endpoint, plus
/// what recovery did to get there.
fn print_sweep(apps: &[String], results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "plan",
        "runtime (s)",
        "vs clean",
        "failures",
        "retries",
        "resubmits",
        "spec won",
        "waste",
    ])
    .title("Fault-injection sweep (recovery overhead vs plan-free endpoints)");
    for app in apps {
        for r in results.iter().filter(|r| &r.scenario.workload == app) {
            let clean = find(results, app, r.scenario.tier, |s| s.faults.is_none());
            let v = &r.recovery;
            t.row(vec![
                r.scenario.label(),
                r.scenario
                    .faults
                    .as_ref()
                    .map(|p| p.label())
                    .unwrap_or_else(|| "none".to_string()),
                fmt_f64(r.elapsed_s, 4),
                pct(r.elapsed_s / clean.elapsed_s - 1.0),
                v.task_failures.to_string(),
                v.retries.to_string(),
                v.stage_resubmissions.to_string(),
                v.speculative_won.to_string(),
                pct(v.waste_fraction()),
            ]);
        }
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses, each entry is
/// internally consistent, and re-running one faulty scenario reproduces its
/// row byte-for-byte (determinism end to end, through serialization).
fn verify(path: &str, results: &[ScenarioResult]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchFaultsEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid faults baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    for e in &entries {
        if e.virtual_runtime_s <= 0.0 {
            fail(format!("{path}: {} has a non-positive runtime", e.scenario));
        }
        let v = &e.recovery;
        let frac = v.waste_fraction();
        if !(0.0..=1.0).contains(&frac) {
            fail(format!(
                "{path}: {} waste fraction {frac} out of range",
                e.scenario
            ));
        }
        if e.plan == "none" && !v.is_quiet() {
            fail(format!(
                "{path}: plan-free run {} reports recovery activity: {v:?}",
                e.scenario
            ));
        }
        if v.retries > 0 && v.task_failures + v.fetch_failures + v.executor_crashes == 0 {
            fail(format!(
                "{path}: {} retried without any recorded failure: {v:?}",
                e.scenario
            ));
        }
    }

    // Re-run the first scenario that actually saw failures and require its
    // regenerated row to match the one on disk exactly.
    let scenario = results
        .iter()
        .find(|r| r.recovery.task_failures > 0)
        .expect("a faulty run")
        .scenario
        .clone();
    let rerun = run_scenario(&scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_faults_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    let a = serde_json::to_string(&fresh[0]).expect("serialize fresh entry");
    let b = serde_json::to_string(on_disk).expect("serialize disk entry");
    if a != b {
        fail(format!(
            "{} does not regenerate byte-identically:\n fresh: {a}\n disk:  {b}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated byte-identically",
        scenario.label()
    );
}
