//! Regression explainer: hierarchically diff two digest-bearing baselines
//! (`BENCH_profile.json`) and attribute each scenario's virtual-runtime
//! delta down the conserved decompositions — per stage, per task phase
//! (compute, shuffle fetch, per-tier read/write stall, queue, driver), per
//! object and tier, migration traffic, and fault/recovery waste. The
//! attributed deltas sum exactly (integer picoseconds) to the end-to-end
//! delta at every level; see `sparklite::explain`.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin explain -- \
//!     --baseline results/BENCH_profile.json \
//!     --candidate fresh/BENCH_profile.json \
//!     [--scenario <label>] [--top 8] [--json-out results/EXPLAIN_run.json]
//! ```
//!
//! This is a diagnostic lens, not a gate: it renders a report for every
//! scenario present in both files (or just `--scenario`), whether or not
//! anything regressed — a self-diff prints all-zero reports. `compare
//! --explain` is the gated sibling that runs this analysis only on breach.
//!
//! # Exit codes
//!
//! * `0` — reports produced (regressions included; this bin never fails a
//!   run for being slow).
//! * `2` — usage or I/O error, or nothing to explain (no scenario joined
//!   with a digest on both sides).

use memtier_bench::{arg_value as arg, explain_baselines, DigestRow};
use std::process::exit;

fn load(path: &str) -> Vec<DigestRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("explain: read {path}: {e}");
        exit(2);
    });
    let rows: Vec<DigestRow> = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("explain: {path} is not a baseline (array of rows with scenario + virtual_runtime_s): {e}");
        exit(2);
    });
    if rows.is_empty() {
        eprintln!("explain: {path} is empty");
        exit(2);
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = || -> ! {
        eprintln!(
            "usage: explain --baseline <json> --candidate <json> \
             [--scenario <label>] [--top <k>] [--json-out <path>]"
        );
        exit(2);
    };
    let baseline_path = arg(&args, "--baseline").unwrap_or_else(|| usage());
    let candidate_path = arg(&args, "--candidate").unwrap_or_else(|| usage());
    let top: usize = arg(&args, "--top")
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("explain: bad --top {s:?}: {e}");
                exit(2);
            })
        })
        .unwrap_or(8);
    let only: Vec<String> = arg(&args, "--scenario").into_iter().collect();

    let baseline = load(&baseline_path);
    let candidate = load(&candidate_path);
    let (explained, notes) = explain_baselines(&baseline, &candidate, &only);
    for n in &notes {
        eprintln!("explain: {n}");
    }
    if explained.is_empty() {
        eprintln!("explain: nothing to explain — no scenario joined with a digest on both sides");
        exit(2);
    }

    for e in &explained {
        println!("=== {} ===\n{}", e.scenario, e.report.render(top));
    }
    let moved = explained.iter().filter(|e| !e.report.is_zero()).count();
    println!(
        "explain: {} scenario(s) diffed, {} moved, {} note(s)",
        explained.len(),
        moved,
        notes.len()
    );

    if let Some(path) = arg(&args, "--json-out") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("explain: mkdir {}: {e}", dir.display());
                    exit(2);
                });
            }
        }
        let json = serde_json::to_string_pretty(&explained).expect("reports serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("explain: write {path}: {e}");
            exit(2);
        });
        println!("explain: wrote {path}");
    }
}
