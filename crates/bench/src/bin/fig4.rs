//! Fig. 4 regeneration: speedup/slowdown heat maps over the executor ×
//! cores grid for sort, rf, lda and pagerank under small and large inputs,
//! NVM tier, baseline 1 executor × 40 cores.

use memtier_bench::{campaign_threads, maybe_dump_json};
use memtier_core::campaign::{fig4_grid, FIG4_APPS, FIG4_CORES, FIG4_EXECUTORS};
use memtier_core::Fig4Cell;
use memtier_metrics::AsciiTable;
use memtier_workloads::DataSize;

fn main() {
    let threads = campaign_threads();
    let mut all: Vec<(String, String, Vec<Fig4Cell>)> = Vec::new();
    for size in [DataSize::Small, DataSize::Large] {
        for app in FIG4_APPS {
            let cells = fig4_grid(app, size, threads).expect("fig4 grid");
            print_grid(app, size, &cells);
            all.push((app.to_string(), size.label().to_string(), cells));
        }
    }
    maybe_dump_json(&all);
}

fn print_grid(app: &str, size: DataSize, cells: &[Fig4Cell]) {
    let mut headers = vec!["executors \\ cores".to_string()];
    headers.extend(FIG4_CORES.iter().map(|c| c.to_string()));
    let mut t = AsciiTable::new(headers).title(format!(
        "Fig 4 — {app}-{size}: speedup over 1x40 (NVM tier; >1 faster, <1 slower; '-' shape \
         does not fit the machine)"
    ));
    for &e in FIG4_EXECUTORS.iter() {
        let mut row = vec![e.to_string()];
        for &c in FIG4_CORES.iter() {
            match cells.iter().find(|x| x.executors == e && x.cores == c) {
                Some(cell) => row.push(format!("{:.2}x", cell.speedup)),
                None => row.push("-".to_string()),
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
}
