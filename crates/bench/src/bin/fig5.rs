//! Fig. 5 regeneration: Pearson correlation of system-level events with
//! execution time, per benchmark, on local memory.
//!
//! Like the paper, each benchmark's correlation is computed across its
//! local-tier runs — we vary the input size and the executor grid to get a
//! run population (the paper varies workload size and configuration).

use memtier_bench::{campaign_threads, maybe_dump_json};
use memtier_core::predict::event_correlations;
use memtier_core::{run_scenarios, Scenario, ScenarioResult};
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use memtier_workloads::{all_workloads, DataSize};

/// Executor grids sampled for the run population.
const GRIDS: [(usize, usize); 3] = [(1, 40), (2, 20), (4, 10)];

fn main() {
    let mut scenarios = Vec::new();
    for w in all_workloads() {
        for size in DataSize::all() {
            for (e, c) in GRIDS {
                scenarios.push(
                    Scenario::default_conf(w.name(), size, TierId::LOCAL_DRAM).with_grid(e, c),
                );
            }
        }
    }
    let results = run_scenarios(&scenarios, campaign_threads()).expect("fig5 runs");
    maybe_dump_json(&results);

    // Event names from the first result.
    let names: Vec<String> = results[0].events.iter().map(|(n, _)| n.clone()).collect();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(names.iter().cloned());
    let mut t = AsciiTable::new(headers)
        .title("Fig 5 — Pearson correlation of system-level events with execution time (Tier 0)");

    for w in all_workloads() {
        let runs: Vec<&ScenarioResult> = results
            .iter()
            .filter(|r| r.scenario.workload == w.name())
            .collect();
        let ec = event_correlations(w.name(), &runs);
        let mut row = vec![w.name().to_string()];
        for name in &names {
            let r = ec
                .correlations
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, r)| *r);
            row.push(r.map(|v| fmt_f64(v, 2)).unwrap_or_else(|| "-".into()));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "(paper: bayes near-linear with almost all events; pagerank weakly correlated — \
         complex models needed)"
    );
}
