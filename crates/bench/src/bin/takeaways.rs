//! Evaluate the paper's eight takeaways against a full reproduction
//! campaign (Figs. 2, 3 and 4) and print the verdicts with evidence.

use memtier_bench::{campaign_threads, maybe_dump_json};
use memtier_core::campaign::{fig2_campaign, fig3_campaign, fig4_grid, FIG4_APPS};
use memtier_core::guidelines::{check_all, CampaignData};
use memtier_core::Fig4Cell;
use memtier_workloads::DataSize;

fn main() {
    let threads = campaign_threads();
    eprintln!("running Fig 2 campaign (84 scenarios)…");
    let fig2 = fig2_campaign(threads).expect("fig2");
    eprintln!("running Fig 3 campaign (210 scenarios)…");
    let fig3 = fig3_campaign(threads).expect("fig3");
    eprintln!("running Fig 4 grids…");
    let mut fig4: Vec<(String, DataSize, Vec<Fig4Cell>)> = Vec::new();
    for size in [DataSize::Small, DataSize::Large] {
        for app in FIG4_APPS {
            fig4.push((
                app.to_string(),
                size,
                fig4_grid(app, size, threads).expect("fig4"),
            ));
        }
    }

    let reports = check_all(&CampaignData {
        fig2: &fig2,
        fig3: &fig3,
        fig4: &fig4,
    });
    maybe_dump_json(&reports);

    println!("## Takeaways 1-8 — paper claims vs reproduction");
    let mut pass = 0;
    for r in &reports {
        println!(
            "[{}] Takeaway {}: {}\n      evidence: {}",
            if r.holds { "PASS" } else { "FAIL" },
            r.id,
            r.statement,
            r.evidence
        );
        pass += usize::from(r.holds);
    }
    println!("{pass}/8 takeaways reproduced");
    if pass < 8 {
        std::process::exit(1);
    }
}
