//! Critical-path profiler harness: run the whole suite across tiers, print
//! each run's conserved virtual-time attribution, demonstrate the
//! analytical what-if engine, and write the machine-readable perf baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin profile
//! # -> results/profile_<app>.json   (one per workload: all tier runs)
//! # -> results/BENCH_profile.json   (consolidated baseline)
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), and `--check` to re-read every artifact and verify
//! it parses, conserves, and that the what-if prediction stays within 10 %
//! of an actual perturbed re-run (the CI profile-smoke step).

use memtier_bench::{
    bench_profile_entries, campaign_threads, check_fail as fail, suite_apps, write_bench_profile,
    write_json_artifact, BenchArgs,
};
use memtier_core::{conf_for, run_scenario_with_conf, run_scenarios, Scenario, ScenarioResult};
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use memtier_workloads::DataSize;
use sparklite::{reprice, WhatIf};

/// The what-if scenario the harness demonstrates and validates: double the
/// DCPM (Tier 2) write-drain rate, i.e. halve its idle write latency.
const WHATIF_LABEL: &str = "2x Tier-2 write bandwidth (idle write latency / 2)";

fn main() {
    let args = BenchArgs::parse();
    let (size, dir, check) = (args.size, args.dir, args.check);

    let apps = suite_apps();
    let scenarios: Vec<Scenario> = apps
        .iter()
        .flat_map(|app| {
            TierId::all()
                .into_iter()
                .map(move |t| Scenario::default_conf(app, size, t))
        })
        .collect();
    eprintln!(
        "profiling {} scenarios ({} apps x {} tiers, {size})…",
        scenarios.len(),
        apps.len(),
        TierId::all().len()
    );
    let results = run_scenarios(&scenarios, campaign_threads()).expect("profile campaign");
    for r in &results {
        assert!(
            r.profile.conserves(),
            "attribution must conserve for {}",
            r.scenario.label()
        );
    }

    print_attribution(&results);

    for app in &apps {
        let app_results: Vec<ScenarioResult> = results
            .iter()
            .filter(|r| &r.scenario.workload == app)
            .cloned()
            .collect();
        let path = format!("{dir}/profile_{app}.json");
        write_json_artifact(&path, &bench_profile_entries(&app_results));
    }
    let baseline_path = format!("{dir}/BENCH_profile.json");
    write_bench_profile(&baseline_path, &results);

    // What-if demo on the Tier-2 run of every app: analytically re-price
    // the critical path under WHATIF_LABEL.
    println!("## What-if: {WHATIF_LABEL}");
    let whatif = halved_t2_write_whatif();
    for r in results
        .iter()
        .filter(|r| r.scenario.tier == TierId::NVM_NEAR)
    {
        let w = reprice(&r.profile, &whatif);
        println!(
            "{:<24} {:.3}s -> {:.3}s predicted ({:.2}x)",
            r.scenario.label(),
            w.baseline_s,
            w.predicted_s,
            w.speedup
        );
    }

    if check {
        verify(&dir, &apps, &results, size);
        println!("  check passed: artifacts parse, conserve, and the what-if validates");
    }
}

/// The [`WhatIf`] for halved Tier-2 idle write latency.
fn halved_t2_write_whatif() -> WhatIf {
    let base = memtier_memsim::MemSimConfig::paper_default();
    let mut fast = base.clone();
    fast.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
    WhatIf::from_configs(&base, &fast)
}

/// Per-run attribution table: where the critical path spends its time.
fn print_attribution(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "runtime (s)",
        "compute",
        "shuffle fetch",
        "queue",
        "driver",
        "mem read",
        "mem write",
    ])
    .title("Critical-path attribution (component share of virtual runtime)");
    for r in results {
        let a = &r.profile.attribution;
        let share = |x: memtier_des::SimTime| fmt_f64(x.as_secs_f64() / r.elapsed_s.max(1e-12), 3);
        let read: memtier_des::SimTime = a.mem_read.iter().copied().sum();
        let write: memtier_des::SimTime = a.mem_write.iter().copied().sum();
        t.row(vec![
            r.scenario.label(),
            fmt_f64(r.elapsed_s, 3),
            share(a.compute),
            share(a.shuffle_fetch),
            share(a.sched_queue),
            share(a.driver),
            share(read),
            share(write),
        ]);
    }
    println!("{}", t.render());
}

/// The CI smoke checks: artifacts re-read from disk parse and conserve, and
/// the analytical what-if matches an actual perturbed re-run within 10 %.
fn verify(dir: &str, apps: &[String], results: &[ScenarioResult], size: DataSize) {
    for path in apps
        .iter()
        .map(|app| format!("{dir}/profile_{app}.json"))
        .chain(std::iter::once(format!("{dir}/BENCH_profile.json")))
    {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
        let entries: Vec<memtier_bench::BenchProfileEntry> = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(format!("{path} is not a valid baseline: {e}")));
        if entries.is_empty() {
            fail(format!("{path} is empty"));
        }
        for e in &entries {
            if e.conservation_gap_s() > 1e-9 {
                fail(format!(
                    "{path}: {} attribution does not conserve (gap {:.3e}s)",
                    e.scenario,
                    e.conservation_gap_s()
                ));
            }
        }
    }

    // Validate the what-if against reality: actually re-run one scenario
    // with the perturbed tier parameters and compare.
    let scenario = Scenario::default_conf("repartition", size, TierId::NVM_NEAR);
    let baseline = results
        .iter()
        .find(|r| r.scenario == scenario)
        .unwrap_or_else(|| fail("baseline repartition run missing".to_string()));
    let predicted = reprice(&baseline.profile, &halved_t2_write_whatif());
    let mut conf = conf_for(&scenario);
    conf.memsim.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
    let actual = run_scenario_with_conf(&scenario, conf)
        .unwrap_or_else(|e| fail(format!("perturbed re-run: {e}")));
    let err = (predicted.predicted_s - actual.elapsed_s).abs() / actual.elapsed_s;
    println!(
        "  what-if validation: predicted {:.4}s vs actual {:.4}s ({:+.1}% error)",
        predicted.predicted_s,
        actual.elapsed_s,
        err * 100.0
    );
    if err > 0.10 {
        fail(format!("what-if prediction off by {:.1}%", err * 100.0));
    }
}
