//! Table I regeneration: idle latency and peak bandwidth per tier, measured
//! by running the MLC-style probes against the simulated memory system.

use memtier_bench::maybe_dump_json;
use memtier_memsim::probe::{compare_to_paper, loaded_latency_curve, table1};
use memtier_memsim::MemorySystem;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;

fn main() {
    let system = MemorySystem::paper_default();
    let rows = table1(&system);
    maybe_dump_json(&rows.to_vec());

    const PAPER: [(f64, f64); 4] = [(77.8, 39.3), (130.9, 31.6), (172.1, 10.7), (231.3, 0.47)];
    let errs = compare_to_paper(&rows);
    let mut t = AsciiTable::new(vec![
        "tier",
        "idle latency (ns)",
        "paper (ns)",
        "bandwidth (GB/s)",
        "paper (GB/s)",
    ])
    .title("Table I — idle access latency and memory bandwidth per tier");
    for (i, row) in rows.iter().enumerate() {
        t.row(vec![
            format!("Tier {i}"),
            fmt_f64(row.idle_latency_ns, 1),
            fmt_f64(PAPER[i].0, 1),
            fmt_f64(row.bandwidth_gb_s, 2),
            fmt_f64(PAPER[i].1, 2),
        ]);
    }
    println!("{}", t.render());
    for (i, (lat_err, bw_err)) in errs.iter().enumerate() {
        println!(
            "Tier {i}: latency err {:.1}%, bandwidth err {:.1}%",
            lat_err * 100.0,
            bw_err * 100.0
        );
    }

    // Bonus characterization: the MLC-style loaded-latency curves that the
    // contention model produces (the Fig. 4 mechanism, visualized).
    let loads = [0usize, 1, 4, 8, 16, 24, 32, 39];
    let mut ll = AsciiTable::new(vec![
        "tier",
        "idle (ns)",
        "+4 streams",
        "+16",
        "+39 (full socket)",
    ])
    .title("Loaded latency (effective per-access cost under concurrent streams)");
    use memtier_memsim::TierId;
    for tier in TierId::all() {
        let curve = loaded_latency_curve(&system, tier, &loads);
        let at = |n: usize| {
            curve
                .iter()
                .find(|p| p.load_streams == n)
                .map(|p| format!("{:.1}", p.latency_ns))
                .unwrap_or_default()
        };
        ll.row(vec![tier.to_string(), at(0), at(4), at(16), at(39)]);
    }
    println!("{}", ll.render());
}
