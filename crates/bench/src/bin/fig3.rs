//! Fig. 3 regeneration: execution-time distributions under MBA bandwidth
//! caps of 10–100 %, for every workload (violin summaries over the three
//! input sizes, like the paper's per-benchmark violins).

use memtier_bench::{campaign_threads, maybe_dump_json};
use memtier_core::campaign::fig3_campaign;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::{AsciiTable, ViolinSummary};
use memtier_workloads::all_workloads;

fn main() {
    let results = fig3_campaign(campaign_threads()).expect("fig3 campaign");
    maybe_dump_json(&results);

    let mut t = AsciiTable::new(vec![
        "benchmark",
        "MBA %",
        "min (s)",
        "q1",
        "median",
        "q3",
        "max (s)",
        "mean",
    ])
    .title("Fig 3 — execution time vs memory-bandwidth allocation (Tier 2, all sizes pooled)");

    let mut worst_dev: f64 = 0.0;
    for w in all_workloads() {
        // Normalize each size's time by its own MBA-100 run so the three
        // sizes pool into one distribution per violin, then report seconds
        // for the pooled absolute summary as well.
        let mut per_level: Vec<(u8, Vec<f64>)> = Vec::new();
        for r in results.iter().filter(|r| r.scenario.workload == w.name()) {
            let pct = r.scenario.mba_percent.unwrap();
            match per_level.iter_mut().find(|(p, _)| *p == pct) {
                Some((_, v)) => v.push(r.elapsed_s),
                None => per_level.push((pct, vec![r.elapsed_s])),
            }
        }
        per_level.sort_by_key(|&(p, _)| p);
        let baseline = per_level
            .iter()
            .find(|(p, _)| *p == 100)
            .map(|(_, v)| v.clone())
            .expect("MBA 100% runs present");
        for (pct, samples) in &per_level {
            let s = ViolinSummary::from_samples(samples);
            t.row(vec![
                w.name().to_string(),
                pct.to_string(),
                fmt_f64(s.min, 3),
                fmt_f64(s.q1, 3),
                fmt_f64(s.median, 3),
                fmt_f64(s.q3, 3),
                fmt_f64(s.max, 3),
                fmt_f64(s.mean, 3),
            ]);
            for (sample, base) in samples.iter().zip(&baseline) {
                worst_dev = worst_dev.max((sample - base).abs() / base);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "## Fig 3 summary: worst per-run deviation from the MBA-100% baseline: {:.2}% \
         (paper: distributions unchanged — bandwidth is not the bottleneck)",
        worst_dev * 100.0
    );
}
