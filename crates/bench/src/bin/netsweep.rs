//! Network-plane harness: sweep rack-uplink oversubscription × locality
//! policy × memory tier on every suite workload over a 4-node/2-rack
//! topology with a loopback endpoint per (app, tier), verify the per-link
//! byte counters partition the traffic in exact integers, verify
//! locality-aware scheduling strictly reduces cross-rack bytes against
//! blind placement, and write the machine-readable network baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin netsweep
//! # -> results/BENCH_net.json
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--app <name>` to sweep a single workload (the CI
//! net-smoke step uses this), `--jobs <n>` sweep workers (default: all
//! cores; any width is byte-identical), and `--check` to re-read the
//! artifact and verify it parses, stays internally consistent, keeps the
//! locality win, and regenerates byte-identically from a fresh run.

use memtier_bench::{
    bench_net_entries, campaign_threads, check_fail as fail, parallel_sweep, pct,
    write_json_artifact, BenchArgs, BenchNetEntry,
};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_des::SimTime;
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use sparklite::{LocalityMode, NetReport, NetTopology, NetworkMode};

/// The rack-uplink oversubscription axis of the sweep.
const OVERSUBSCRIPTION: [f64; 3] = [1.0, 4.0, 16.0];

/// The tier axis: the paper's local-DRAM and near-NVM endpoints, so the
/// sweep shows how network cost composes with memory-tier cost.
const TIERS: [TierId; 2] = [TierId::LOCAL_DRAM, TierId::NVM_NEAR];

/// Cluster shape: 3 executors over a 4-node/2-rack fabric. Executors land
/// on nodes 0..2 round-robin, so the racks are deliberately asymmetric
/// (two executors in rack 0, one in rack 1) — the configuration where task
/// placement visibly moves bytes between the rack-local and cross-rack
/// buckets.
const NODES: u32 = 4;
const RACKS: u32 = 2;
const EXECUTORS: usize = 3;
const CORES: usize = 12;

/// How long delay scheduling holds a task for a preferred-node slot.
const DELAY_WAIT_US: u64 = 500;

/// The two placement policies under comparison.
fn policies() -> [LocalityMode; 2] {
    [
        LocalityMode::Blind,
        LocalityMode::DelayScheduling {
            wait: SimTime::from_us(DELAY_WAIT_US),
        },
    ]
}

fn wired(oversub: f64, locality: LocalityMode) -> NetworkMode {
    NetworkMode::Topology {
        topology: NetTopology::new(NODES, RACKS).with_oversubscription(oversub),
        locality,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let apps = args.apps();
    let jobs = args.jobs_or(campaign_threads());
    let (size, dir, check) = (args.size, args.dir, args.check);

    // Per (app, tier): the loopback endpoint, then the oversubscription ×
    // locality grid on the shared 4-node/2-rack fabric.
    let mut scenarios = Vec::new();
    for app in &apps {
        for &tier in &TIERS {
            let base = Scenario::default_conf(app, size, tier).with_grid(EXECUTORS, CORES);
            scenarios.push(base.clone());
            for &oversub in &OVERSUBSCRIPTION {
                for locality in policies() {
                    scenarios.push(base.clone().with_network(wired(oversub, locality)));
                }
            }
        }
    }
    eprintln!(
        "sweeping {} scenarios ({} apps x {} wirings, {size})…",
        scenarios.len(),
        apps.len(),
        scenarios.len() / apps.len()
    );
    let results = parallel_sweep(&scenarios, jobs, |s| run_scenario(s).expect("net sweep"));

    check_conservation(&results);
    check_locality_wins(&apps, &results);
    print_sweep(&apps, &results);

    let path = format!("{dir}/BENCH_net.json");
    write_json_artifact(&path, &bench_net_entries(&results));

    if check {
        verify(&path, &results);
        println!("  check passed: artifact parses, stays consistent, and regenerates identically");
    }
}

/// Every wired run's traffic must partition in exact integers: the locality
/// split and the charge-kind split both re-sum to the byte total, and every
/// completed transfer exits its source through exactly one node uplink, so
/// the node-up link counters re-sum to the total too (and the rack-up
/// counters to the cross-rack slice). Loopback runs must report nothing.
fn check_conservation(results: &[ScenarioResult]) {
    for r in results {
        let label = r.scenario.label();
        let net = &r.network;
        if r.scenario.network.is_none() {
            assert!(net.is_empty(), "loopback run {label} reports traffic");
            continue;
        }
        assert!(net.transfers > 0, "wired run {label} saw no transfers");
        assert_eq!(
            net.cancelled_transfers, 0,
            "fault-free run {label} cancelled transfers"
        );
        assert_eq!(
            net.total_bytes,
            net.rack_local_bytes + net.cross_rack_bytes,
            "locality split must partition the bytes for {label}"
        );
        let kind_sum = net.shuffle_bytes
            + net.broadcast_bytes
            + net.dfs_read_bytes
            + net.dfs_write_bytes
            + net.rereplicate_bytes;
        assert_eq!(
            net.total_bytes, kind_sum,
            "charge-kind split must partition the bytes for {label}"
        );
        assert_eq!(
            net.total_bytes,
            link_sum(net, "node", ":up"),
            "node uplink counters must re-sum to the total for {label}"
        );
        assert_eq!(
            net.cross_rack_bytes,
            link_sum(net, "rack", ":up"),
            "rack uplink counters must re-sum to the cross-rack slice for {label}"
        );
    }
}

/// Bytes over the links whose label starts with `prefix` and ends with
/// `suffix` (e.g. the `node*:up` halves).
fn link_sum(net: &NetReport, prefix: &str, suffix: &str) -> u64 {
    net.links
        .iter()
        .filter(|l| l.label.starts_with(prefix) && l.label.ends_with(suffix))
        .map(|l| l.bytes)
        .sum()
}

/// The acceptance criterion: summed over the sweep grid, delay scheduling
/// moves strictly fewer bytes across racks than blind placement on at least
/// one workload (shuffle-heavy apps are where the win lives), and never
/// sees traffic appear from nowhere.
fn check_locality_wins(apps: &[String], results: &[ScenarioResult]) {
    let wins: Vec<&String> = apps
        .iter()
        .filter(|app| {
            let (blind, delay) = cross_rack_split(app, results);
            delay < blind
        })
        .collect();
    assert!(
        !wins.is_empty(),
        "delay scheduling must strictly reduce cross-rack bytes vs blind on >=1 workload"
    );
    eprintln!(
        "locality win on {}/{} workloads: {}",
        wins.len(),
        apps.len(),
        wins.iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// Cross-rack bytes for an app summed over the wired grid, split by policy:
/// `(blind, delay-scheduling)`.
fn cross_rack_split(app: &str, results: &[ScenarioResult]) -> (u64, u64) {
    let mut blind = 0u64;
    let mut delay = 0u64;
    for r in results.iter().filter(|r| r.scenario.workload == app) {
        match &r.scenario.network {
            Some(NetworkMode::Topology { locality, .. }) => match locality {
                LocalityMode::Blind => blind += r.network.cross_rack_bytes,
                LocalityMode::DelayScheduling { .. } => delay += r.network.cross_rack_bytes,
            },
            _ => {}
        }
    }
    (blind, delay)
}

/// The sweep table: each run's runtime against its loopback endpoint, plus
/// where the bytes went.
fn print_sweep(apps: &[String], results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "wiring",
        "runtime (s)",
        "vs loopback",
        "transfers",
        "node-local (MB)",
        "rack (MB)",
        "x-rack (MB)",
    ])
    .title("Network sweep (oversubscription x locality policy x tier)");
    for app in apps {
        for r in results.iter().filter(|r| &r.scenario.workload == app) {
            let loopback = results
                .iter()
                .find(|b| {
                    b.scenario.workload == r.scenario.workload
                        && b.scenario.tier == r.scenario.tier
                        && b.scenario.network.is_none()
                })
                .expect("loopback endpoint")
                .elapsed_s;
            let wiring = r
                .scenario
                .network
                .as_ref()
                .map(|m| m.label())
                .unwrap_or_else(|| "loopback".to_string());
            t.row(vec![
                r.scenario.label(),
                wiring,
                fmt_f64(r.elapsed_s, 4),
                pct(r.elapsed_s / loopback - 1.0),
                r.network.transfers.to_string(),
                fmt_f64(r.network.node_local_bytes as f64 / 1e6, 2),
                fmt_f64(r.network.rack_local_bytes as f64 / 1e6, 2),
                fmt_f64(r.network.cross_rack_bytes as f64 / 1e6, 2),
            ]);
        }
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses, each entry is
/// internally consistent, the locality win holds in the rows on disk, and
/// re-running one wired scenario reproduces its row byte-for-byte
/// (determinism end to end, through serialization).
fn verify(path: &str, results: &[ScenarioResult]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchNetEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid network baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    let mut split: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for e in &entries {
        if e.virtual_runtime_s <= 0.0 {
            fail(format!("{path}: {} has a non-positive runtime", e.scenario));
        }
        if e.wiring == "loopback" {
            if !e.network.is_empty() {
                fail(format!(
                    "{path}: loopback run {} reports traffic",
                    e.scenario
                ));
            }
            continue;
        }
        let n = &e.network;
        if n.total_bytes != n.rack_local_bytes + n.cross_rack_bytes {
            fail(format!(
                "{path}: {} locality split does not partition the bytes",
                e.scenario
            ));
        }
        let per_app = split.entry(e.app.as_str()).or_default();
        if e.wiring.contains(",blind)") {
            per_app.0 += n.cross_rack_bytes;
        } else {
            per_app.1 += n.cross_rack_bytes;
        }
    }
    let win = split.iter().find(|(_, (blind, delay))| delay < blind);
    let Some((app, (blind, delay))) = win else {
        fail(format!(
            "{path}: delay scheduling must strictly reduce cross-rack bytes \
             vs blind on >=1 workload: {split:?}"
        ));
    };
    println!("  locality: delay scheduling cut {app}'s cross-rack bytes {blind} -> {delay}");

    // Re-run the first wired scenario and require its regenerated row to
    // match the one on disk exactly.
    let scenario = results
        .iter()
        .find(|r| r.scenario.network.is_some())
        .expect("a wired run")
        .scenario
        .clone();
    let rerun = run_scenario(&scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_net_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    let a = serde_json::to_string(&fresh[0]).expect("serialize fresh entry");
    let b = serde_json::to_string(on_disk).expect("serialize disk entry");
    if a != b {
        fail(format!(
            "{} does not regenerate byte-identically:\n fresh: {a}\n disk:  {b}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated byte-identically",
        scenario.label()
    );
}
