//! Fig. 6 regeneration: Pearson correlation of execution time with the
//! hardware specs (idle latency / bandwidth) of the tiers, per application
//! and workload size — plus the Takeaway-8 leave-one-tier-out linear
//! prediction error.

use memtier_bench::{campaign_threads, maybe_dump_json};
use memtier_core::campaign::{by_workload_size, fig2_campaign};
use memtier_core::predict::{correlation_with_specs, leave_one_tier_out};
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;

fn main() {
    let results = fig2_campaign(campaign_threads()).expect("fig6 campaign");
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "corr(time, latency)",
        "corr(time, bandwidth)",
        "LOTO MAPE",
    ])
    .title("Fig 6 — correlation of hardware specs with execution time, across Tier 0-3");

    let mut rows = Vec::new();
    for ((w, s), mut v) in by_workload_size(&results) {
        v.sort_by_key(|r| r.scenario.tier);
        let corr = correlation_with_specs(&v);
        let mape = leave_one_tier_out(&v);
        t.row(vec![
            w.clone(),
            s.label().to_string(),
            corr.latency_r.map(|r| fmt_f64(r, 3)).unwrap_or("-".into()),
            corr.bandwidth_r
                .map(|r| fmt_f64(r, 3))
                .unwrap_or("-".into()),
            mape.map(|m| format!("{:.1}%", m * 100.0))
                .unwrap_or("-".into()),
        ]);
        rows.push((w, s, corr, mape));
    }
    println!("{}", t.render());
    maybe_dump_json(
        &rows
            .iter()
            .map(|(w, s, c, m)| (w, s.label(), c, m))
            .collect::<Vec<_>>(),
    );
    println!("(paper: near-perfect +1 / -1 correlations — linear cross-tier prediction is viable)");
}
