//! Perf-regression gate: diff two machine-readable baselines (any
//! `BENCH_*.json` whose rows carry `scenario` + `virtual_runtime_s`; extra
//! fields — including `BENCH_simspeed.json`'s wall-clock sidecar columns —
//! are ignored by construction) and fail when any scenario's virtual
//! runtime drifted beyond tolerance.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin compare -- \
//!     --baseline results/BENCH_profile.json \
//!     --candidate fresh/BENCH_profile.json \
//!     --tolerance-pct 2 \
//!     [--json-out results/COMPARE.json] \
//!     [--explain] [--explain-out results/EXPLAIN_compare.json] [--top 8]
//! ```
//!
//! The two files are joined on the scenario label. Scenarios present in
//! only one file also fail the gate — a silently changed scenario set is a
//! regression of the baseline itself. The simulator is deterministic, so
//! two runs of the same code must agree to the last bit; the tolerance
//! exists for intentional model changes that also update the baseline.
//!
//! With `--explain`, a breached gate additionally attributes each
//! out-of-tolerance scenario's virtual-runtime delta down the conserved
//! hierarchy — stages, task phases, per-object tier stalls, migration
//! traffic, and fault waste — from the [`RunDigest`]s embedded in
//! `BENCH_profile.json` rows. It prints the top contributors per scenario
//! and writes the machine-readable reports (plus a rendered `.txt`
//! sibling) to `--explain-out`. Digest-less baselines degrade to a note,
//! not an error.
//!
//! # Exit codes
//!
//! * `0` — every scenario within tolerance, scenario sets identical.
//! * `1` — regression: a scenario drifted beyond tolerance or the
//!   scenario sets differ.
//! * `2` — usage or I/O error (bad flags, unreadable or unparsable
//!   baseline, unwritable output).
//!
//! [`RunDigest`]: sparklite::RunDigest

use memtier_bench::{
    arg_value as arg, compare_runtimes, explain_baselines, pct, DigestRow, RuntimeDelta, RuntimeRow,
};
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use std::process::exit;

fn load(path: &str) -> Vec<RuntimeRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: read {path}: {e}");
        exit(2);
    });
    let rows: Vec<RuntimeRow> = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("compare: {path} is not a baseline (array of rows with scenario + virtual_runtime_s): {e}");
        exit(2);
    });
    if rows.is_empty() {
        eprintln!("compare: {path} is empty");
        exit(2);
    }
    rows
}

/// Re-read a baseline keeping the embedded digests (rows without one load
/// as `digest: None` and surface as explain notes downstream).
fn load_digests(path: &str) -> Vec<DigestRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: read {path}: {e}");
        exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("compare: {path}: {e}");
        exit(2);
    })
}

/// Write `contents` to `path`, creating parent directories; exits 2 on
/// failure like every other I/O error in this binary.
fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("compare: mkdir {}: {e}", dir.display());
                exit(2);
            });
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("compare: write {path}: {e}");
        exit(2);
    });
}

/// The `--explain` path: attribute every breached scenario's delta from
/// the digests and persist the reports for the CI artifact upload.
fn explain_breach(
    args: &[String],
    baseline_path: &str,
    candidate_path: &str,
    deltas: &[RuntimeDelta],
    tolerance_pct: f64,
) {
    let top: usize = arg(args, "--top")
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("compare: bad --top {s:?}: {e}");
                exit(2);
            })
        })
        .unwrap_or(8);
    let breached: Vec<String> = deltas
        .iter()
        .filter(|d| d.out_of_tolerance(tolerance_pct))
        .map(|d| d.scenario.clone())
        .collect();
    if breached.is_empty() {
        eprintln!(
            "compare: nothing to explain — the breach is scenario-set drift, \
             and a scenario present on only one side has no run pair to diff"
        );
        return;
    }
    let baseline = load_digests(baseline_path);
    let candidate = load_digests(candidate_path);
    let (explained, notes) = explain_baselines(&baseline, &candidate, &breached);
    let mut rendered = String::new();
    for e in &explained {
        rendered.push_str(&format!(
            "=== {} ===\n{}\n",
            e.scenario,
            e.report.render(top)
        ));
    }
    print!("{rendered}");
    for n in &notes {
        eprintln!("compare: explain — {n}");
    }
    let out = arg(args, "--explain-out").unwrap_or_else(|| "results/EXPLAIN_compare.json".into());
    write_file(
        &out,
        &serde_json::to_string_pretty(&explained).expect("reports serialize"),
    );
    let txt = std::path::Path::new(&out).with_extension("txt");
    write_file(&txt.to_string_lossy(), &rendered);
    println!("compare: wrote {out} and {}", txt.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = || -> ! {
        eprintln!(
            "usage: compare --baseline <json> --candidate <json> [--tolerance-pct <pct>] \
             [--json-out <path>] [--explain] [--explain-out <path>] [--top <k>]"
        );
        exit(2);
    };
    let baseline_path = arg(&args, "--baseline").unwrap_or_else(|| usage());
    let candidate_path = arg(&args, "--candidate").unwrap_or_else(|| usage());
    let tolerance_pct: f64 = arg(&args, "--tolerance-pct")
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("compare: bad --tolerance-pct {s:?}: {e}");
                exit(2);
            })
        })
        .unwrap_or(2.0);

    let baseline = load(&baseline_path);
    let candidate = load(&candidate_path);
    let (deltas, unmatched) = compare_runtimes(&baseline, &candidate);

    let mut t =
        AsciiTable::new(vec!["scenario", "baseline (s)", "candidate (s)", "delta"]).title(format!(
            "Virtual-runtime comparison ({} scenarios, tolerance {:.2}%)",
            deltas.len(),
            tolerance_pct
        ));
    let mut worst = 0.0f64;
    let mut failures = 0usize;
    for d in &deltas {
        let flag = if d.out_of_tolerance(tolerance_pct) {
            failures += 1;
            "  <-- REGRESSION"
        } else {
            ""
        };
        worst = worst.max(d.delta_pct.abs());
        t.row(vec![
            d.scenario.clone(),
            fmt_f64(d.baseline_s, 6),
            fmt_f64(d.candidate_s, 6),
            format!("{}{}", pct(d.delta_pct / 100.0), flag),
        ]);
    }
    println!("{}", t.render());
    for u in &unmatched {
        eprintln!("compare: scenario set drifted — {u}");
    }
    println!(
        "worst |delta| {:.4}% over {} scenarios ({} beyond tolerance, {} unmatched)",
        worst,
        deltas.len(),
        failures,
        unmatched.len()
    );

    // The machine-readable verdict goes out before the exit status so a
    // failing gate still leaves an artifact behind.
    if let Some(path) = arg(&args, "--json-out") {
        let payload = serde_json::json!({
            "tolerance_pct": tolerance_pct,
            "failures": failures,
            "deltas": deltas,
            "unmatched": unmatched,
        });
        write_file(
            &path,
            &serde_json::to_string_pretty(&payload).expect("verdict serializes"),
        );
        println!("compare: wrote {path}");
    }

    if failures > 0 || !unmatched.is_empty() {
        if args.iter().any(|a| a == "--explain") {
            explain_breach(
                &args,
                &baseline_path,
                &candidate_path,
                &deltas,
                tolerance_pct,
            );
        }
        eprintln!(
            "compare: FAILED — {failures} scenario(s) beyond ±{tolerance_pct}% and {} unmatched label(s)",
            unmatched.len()
        );
        exit(1);
    }
    println!("compare: OK — all scenarios within ±{tolerance_pct}%");
}
