//! Perf-regression gate: diff two machine-readable baselines (any
//! `BENCH_*.json` whose rows carry `scenario` + `virtual_runtime_s`; extra
//! fields — including `BENCH_simspeed.json`'s wall-clock sidecar columns —
//! are ignored by construction) and fail when any scenario's virtual
//! runtime drifted beyond tolerance.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin compare -- \
//!     --baseline results/BENCH_profile.json \
//!     --candidate fresh/BENCH_profile.json \
//!     --tolerance-pct 2
//! ```
//!
//! The two files are joined on the scenario label. Scenarios present in
//! only one file also fail the gate — a silently changed scenario set is a
//! regression of the baseline itself. The simulator is deterministic, so
//! two runs of the same code must agree to the last bit; the tolerance
//! exists for intentional model changes that also update the baseline.

use memtier_bench::{arg_value as arg, compare_runtimes, pct, RuntimeRow};
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use std::process::exit;

fn load(path: &str) -> Vec<RuntimeRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: read {path}: {e}");
        exit(2);
    });
    let rows: Vec<RuntimeRow> = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("compare: {path} is not a baseline (array of rows with scenario + virtual_runtime_s): {e}");
        exit(2);
    });
    if rows.is_empty() {
        eprintln!("compare: {path} is empty");
        exit(2);
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("usage: compare --baseline <json> --candidate <json> [--tolerance-pct <pct>]");
        exit(2);
    });
    let candidate_path = arg(&args, "--candidate").unwrap_or_else(|| {
        eprintln!("usage: compare --baseline <json> --candidate <json> [--tolerance-pct <pct>]");
        exit(2);
    });
    let tolerance_pct: f64 = arg(&args, "--tolerance-pct")
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("compare: bad --tolerance-pct {s:?}: {e}");
                exit(2);
            })
        })
        .unwrap_or(2.0);

    let baseline = load(&baseline_path);
    let candidate = load(&candidate_path);
    let (deltas, unmatched) = compare_runtimes(&baseline, &candidate);

    let mut t =
        AsciiTable::new(vec!["scenario", "baseline (s)", "candidate (s)", "delta"]).title(format!(
            "Virtual-runtime comparison ({} scenarios, tolerance {:.2}%)",
            deltas.len(),
            tolerance_pct
        ));
    let mut worst = 0.0f64;
    let mut failures = 0usize;
    for d in &deltas {
        let flag = if d.out_of_tolerance(tolerance_pct) {
            failures += 1;
            "  <-- REGRESSION"
        } else {
            ""
        };
        worst = worst.max(d.delta_pct.abs());
        t.row(vec![
            d.scenario.clone(),
            fmt_f64(d.baseline_s, 6),
            fmt_f64(d.candidate_s, 6),
            format!("{}{}", pct(d.delta_pct / 100.0), flag),
        ]);
    }
    println!("{}", t.render());
    for u in &unmatched {
        eprintln!("compare: scenario set drifted — {u}");
    }
    println!(
        "worst |delta| {:.4}% over {} scenarios ({} beyond tolerance, {} unmatched)",
        worst,
        deltas.len(),
        failures,
        unmatched.len()
    );

    if failures > 0 || !unmatched.is_empty() {
        eprintln!(
            "compare: FAILED — {failures} scenario(s) beyond ±{tolerance_pct}% and {} unmatched label(s)",
            unmatched.len()
        );
        exit(1);
    }
    println!("compare: OK — all scenarios within ±{tolerance_pct}%");
}
