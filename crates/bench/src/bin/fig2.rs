//! Fig. 2 regeneration: execution time (top), NVM access counts (middle)
//! and DRAM-vs-DCPM energy per DIMM (bottom) for all 7 workloads ×
//! {tiny, small, large} × Tier 0–3 under the default 1×40 deployment.
//! Also emits the consolidated machine-readable perf baseline
//! (`BENCH_profile.json`, override with `--profile-out <path>`).

use memtier_bench::{campaign_threads, maybe_dump_json, pct, write_bench_profile};
use memtier_core::campaign::{by_workload_size, fig2_campaign};
use memtier_core::ScenarioResult;
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile_path = args
        .iter()
        .position(|a| a == "--profile-out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    let results = fig2_campaign(campaign_threads()).expect("fig2 campaign");
    maybe_dump_json(&results);
    write_bench_profile(&profile_path, &results);
    print_time(&results);
    print_accesses(&results);
    print_energy(&results);
    print_stage_shape(&results);
    print_attribution(&results);
    print_summary(&results);
}

fn groups(results: &[ScenarioResult]) -> Vec<((String, String), Vec<&ScenarioResult>)> {
    by_workload_size(results)
        .into_iter()
        .map(|((w, s), mut v)| {
            v.sort_by_key(|r| r.scenario.tier);
            ((w, s.label().to_string()), v)
        })
        .collect()
}

fn print_time(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "Tier0 (s)",
        "Tier1 (s)",
        "Tier2 (s)",
        "Tier3 (s)",
    ])
    .title("Fig 2 (top) — execution time per tier, 1 executor x 40 cores");
    for ((w, s), v) in groups(results) {
        t.row(vec![
            w,
            s,
            fmt_f64(v[0].elapsed_s, 3),
            fmt_f64(v[1].elapsed_s, 3),
            fmt_f64(v[2].elapsed_s, 3),
            fmt_f64(v[3].elapsed_s, 3),
        ]);
    }
    println!("{}", t.render());
}

fn print_accesses(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "T2 reads",
        "T2 writes",
        "T3 reads",
        "T3 writes",
        "write ratio T2",
    ])
    .title("Fig 2 (middle) — NVM media accesses (ipmctl-equivalent counters)");
    for ((w, s), v) in groups(results) {
        let t2 = v[2].counters.tier(TierId::NVM_NEAR);
        let t3 = v[3].counters.tier(TierId::NVM_FAR);
        t.row(vec![
            w,
            s,
            t2.reads.to_string(),
            t2.writes.to_string(),
            t3.reads.to_string(),
            t3.writes.to_string(),
            fmt_f64(v[2].write_ratio(), 3),
        ]);
    }
    println!("{}", t.render());
}

fn print_energy(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "DRAM J/DIMM (Tier0 run)",
        "DCPM J/DIMM (Tier2 run)",
        "DRAM saving",
    ])
    .title("Fig 2 (bottom) — per-DIMM energy, DRAM vs Optane DCPM");
    for ((w, s), v) in groups(results) {
        let dram = v[0].energy_per_dimm_j[TierId::LOCAL_DRAM.index()];
        let dcpm = v[2].energy_per_dimm_j[TierId::NVM_NEAR.index()];
        t.row(vec![
            w,
            s,
            fmt_f64(dram, 2),
            fmt_f64(dcpm, 2),
            pct(1.0 - dram / dcpm),
        ]);
    }
    println!("{}", t.render());
}

fn print_stage_shape(results: &[ScenarioResult]) {
    // The time-resolved view behind Fig. 2's middle row: how concentrated
    // each workload's memory traffic is in its hottest stage on the DCPM
    // tier (stage rollups; the full series is in the trace_demo binary).
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "stages (T2 run)",
        "peak-stage traffic share",
        "peak stage time (s)",
    ])
    .title("Fig 2 (stage shape) — traffic concentration per stage, Tier 2 run");
    for ((w, s), v) in groups(results) {
        let rollups = &v[2].stage_rollups;
        let total: u64 = rollups
            .iter()
            .map(|r| r.metrics.traffic.total_bytes())
            .sum();
        let peak = rollups
            .iter()
            .max_by_key(|r| r.metrics.traffic.total_bytes());
        let (share, peak_s) = match peak {
            Some(p) if total > 0 => (
                p.metrics.traffic.total_bytes() as f64 / total as f64,
                p.duration().as_secs_f64(),
            ),
            _ => (0.0, 0.0),
        };
        t.row(vec![
            w,
            s,
            rollups.len().to_string(),
            fmt_f64(share, 3),
            fmt_f64(peak_s, 3),
        ]);
    }
    println!("{}", t.render());
}

fn print_attribution(results: &[ScenarioResult]) {
    // The profiler's view of Fig. 2's slowdowns: where the Tier-2 run's
    // critical path spends its time, as shares of the virtual runtime. The
    // shares sum to 1 (conservation) — the mem-write column is exactly the
    // part the paper's DCPM write-asymmetry discussion predicts grows.
    let mut t = AsciiTable::new(vec![
        "benchmark",
        "size",
        "compute",
        "shuffle fetch",
        "queue",
        "driver",
        "mem read",
        "mem write",
    ])
    .title("Fig 2 (attribution) — critical-path time shares, Tier 2 run");
    for ((w, s), v) in groups(results) {
        let r = v[2];
        assert!(r.profile.conserves(), "attribution must conserve");
        let a = &r.profile.attribution;
        let share = |x: memtier_des::SimTime| fmt_f64(x.as_secs_f64() / r.elapsed_s.max(1e-12), 3);
        let read: memtier_des::SimTime = a.mem_read.iter().copied().sum();
        let write: memtier_des::SimTime = a.mem_write.iter().copied().sum();
        t.row(vec![
            w,
            s,
            share(a.compute),
            share(a.shuffle_fetch),
            share(a.sched_queue),
            share(a.driver),
            share(read),
            share(write),
        ]);
    }
    println!("{}", t.render());
}

fn print_summary(results: &[ScenarioResult]) {
    // The paper's headline aggregates.
    let g = groups(results);
    let n = g.len() as f64;
    let mut margins = [0.0; 3];
    let mut nvm_over_dram = 0.0;
    let mut savings = 0.0;
    for (_, v) in &g {
        let t0 = v[0].elapsed_s;
        for k in 1..4 {
            margins[k - 1] += (v[k].elapsed_s - t0) / v[k].elapsed_s;
        }
        nvm_over_dram += (v[2].elapsed_s + v[3].elapsed_s) / (v[0].elapsed_s + v[1].elapsed_s);
        savings += 1.0
            - v[0].energy_per_dimm_j[TierId::LOCAL_DRAM.index()]
                / v[2].energy_per_dimm_j[TierId::NVM_NEAR.index()];
    }
    println!("## Fig 2 summary vs paper");
    println!(
        "Tier0 better than Tier1/2/3 by {} / {} / {} on average (paper: +44.2% / +66.4% / +90.1%)",
        pct(margins[0] / n),
        pct(margins[1] / n),
        pct(margins[2] / n)
    );
    println!(
        "DCPM-bound runs take {:.1}% more time than DRAM-bound (paper: +76.7%)",
        (nvm_over_dram / n - 1.0) * 100.0
    );
    println!(
        "DRAM per-DIMM energy {} below DCPM on average (paper: -63.9%)",
        pct(savings / n)
    );
}
