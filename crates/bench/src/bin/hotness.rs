//! Object-hotness harness: run the whole suite across tiers, verify that
//! the per-object attribution conserves against the machine counters in
//! exact integers, print each run's hottest objects, demonstrate the
//! "promote the top-k hot objects to Tier 0" what-if, and write the
//! machine-readable hotness baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin hotness
//! # -> results/BENCH_hotness.json
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--jobs <n>` sweep workers (default: all cores; any
//! width is byte-identical), and `--check` to re-read the artifact and
//! verify it parses, stays internally consistent, and regenerates
//! byte-identically from a fresh run (the CI hotness-smoke step).

use memtier_bench::{
    bench_hotness_entries, campaign_threads, check_fail as fail, parallel_sweep, suite_apps,
    write_json_artifact, BenchArgs, BenchHotnessEntry, HOTNESS_TOP_K,
};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;
use sparklite::{hotness_promotion_whatif, reprice};

/// How many objects the promotion what-if moves to Tier 0.
const PROMOTE_K: usize = 3;

fn main() {
    let args = BenchArgs::parse();
    let jobs = args.jobs_or(campaign_threads());
    let (size, dir, check) = (args.size, args.dir, args.check);

    let apps = suite_apps();
    let scenarios: Vec<Scenario> = apps
        .iter()
        .flat_map(|app| {
            TierId::all()
                .into_iter()
                .map(move |t| Scenario::default_conf(app, size, t))
        })
        .collect();
    eprintln!(
        "attributing {} scenarios ({} apps x {} tiers, {size})…",
        scenarios.len(),
        apps.len(),
        TierId::all().len()
    );
    let results = parallel_sweep(&scenarios, jobs, |s| {
        run_scenario(s).expect("hotness campaign")
    });
    for r in &results {
        assert!(
            r.hotness.conserves(&r.counters),
            "per-object attribution must partition the counters for {}",
            r.scenario.label()
        );
    }

    print_hot_objects(&results);

    let path = format!("{dir}/BENCH_hotness.json");
    write_json_artifact(&path, &bench_hotness_entries(&results));

    // Promotion what-if on the Tier-2 run of every app: re-price the
    // critical path as if the top-PROMOTE_K hot objects lived on Tier 0.
    println!("## What-if: top-{PROMOTE_K} hot objects promoted to Tier 0");
    for r in results
        .iter()
        .filter(|r| r.scenario.tier == TierId::NVM_NEAR)
    {
        let w = reprice(&r.profile, &hotness_promotion_whatif(&r.hotness, PROMOTE_K));
        println!(
            "{:<24} {:.3}s -> {:.3}s predicted ({:.2}x)",
            r.scenario.label(),
            w.baseline_s,
            w.predicted_s,
            w.speedup
        );
    }

    if check {
        verify(&path, &results);
        println!("  check passed: artifact parses, stays consistent, and regenerates identically");
    }
}

/// Per-run hotness table: the heaviest object and its share of the traffic.
fn print_hot_objects(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "runtime (s)",
        "stall (s)",
        "objects",
        "hottest object",
        "bytes (MB)",
        "byte share",
    ])
    .title("Object hotness (heaviest object per run)");
    for r in results {
        let total_bytes: u64 = r.hotness.objects.iter().map(|o| o.total_bytes).sum();
        let tops = r.hotness.top_by_bytes(1);
        let top = tops[0];
        t.row(vec![
            r.scenario.label(),
            fmt_f64(r.elapsed_s, 3),
            fmt_f64(r.hotness.total_stall().as_secs_f64(), 3),
            r.hotness.objects.len().to_string(),
            top.label.clone(),
            fmt_f64(top.total_bytes as f64 / 1e6, 1),
            fmt_f64(top.total_bytes as f64 / total_bytes.max(1) as f64, 3),
        ]);
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses, each entry is
/// internally consistent, and re-running one scenario reproduces its row
/// byte-for-byte (determinism end to end, through serialization).
fn verify(path: &str, results: &[ScenarioResult]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchHotnessEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid hotness baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    for e in &entries {
        if e.objects.is_empty() || e.objects.len() > HOTNESS_TOP_K {
            fail(format!("{path}: {} has a bad object list", e.scenario));
        }
        let top_stall: f64 = e.objects.iter().map(|o| o.stall_s).sum();
        if top_stall > e.total_stall_s * (1.0 + 1e-9) {
            fail(format!(
                "{path}: {} top-object stall {top_stall:.6}s exceeds the total {:.6}s",
                e.scenario, e.total_stall_s
            ));
        }
        for pair in e.objects.windows(2) {
            if pair[0].total_bytes < pair[1].total_bytes {
                fail(format!(
                    "{path}: {} objects are not ranked by bytes",
                    e.scenario
                ));
            }
        }
    }

    // Re-run the first scenario and require its regenerated row to match the
    // one on disk exactly.
    let scenario = results[0].scenario.clone();
    let rerun = run_scenario(&scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_hotness_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    let a = serde_json::to_string(&fresh[0]).expect("serialize fresh entry");
    let b = serde_json::to_string(on_disk).expect("serialize disk entry");
    if a != b {
        fail(format!(
            "{} does not regenerate byte-identically:\n fresh: {a}\n disk:  {b}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated byte-identically",
        scenario.label()
    );
}
