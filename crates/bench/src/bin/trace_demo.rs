//! Telemetry demo: run one scenario with the full observability subsystem
//! on and dump the enriched Chrome trace plus the JSONL event log.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin trace_demo
//! # -> results/trace_demo.json  (load in ui.perfetto.dev or chrome://tracing)
//! # -> results/events_demo.jsonl
//! ```
//!
//! Flags: `--workload <name>` (default `repartition`), `--size
//! tiny|small|large` (default `tiny`), `--tier 0..3` (default 2), `--trace
//! <path>`, `--events <path>`, and `--check` to re-read both artifacts and
//! verify they parse and conserve counters (the CI trace-smoke step).

use memtier_bench::arg_value as arg;
use memtier_core::{run_scenario_instrumented, Scenario, TelemetryOptions};
use memtier_memsim::TierId;
use memtier_workloads::DataSize;
use sparklite::parse_jsonl;
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = arg(&args, "--workload").unwrap_or_else(|| "repartition".to_string());
    let size = match arg(&args, "--size").as_deref() {
        None | Some("tiny") => DataSize::Tiny,
        Some("small") => DataSize::Small,
        Some("large") => DataSize::Large,
        Some(other) => {
            eprintln!("unknown --size {other:?} (want tiny|small|large)");
            exit(2);
        }
    };
    let tier = match arg(&args, "--tier").map(|t| t.parse::<usize>()) {
        None => TierId::NVM_NEAR,
        Some(Ok(i)) if i < TierId::all().len() => TierId::all()[i],
        Some(_) => {
            eprintln!("--tier must be 0..{}", TierId::all().len() - 1);
            exit(2);
        }
    };
    let trace_path = arg(&args, "--trace").unwrap_or_else(|| "results/trace_demo.json".to_string());
    let events_path =
        arg(&args, "--events").unwrap_or_else(|| "results/events_demo.jsonl".to_string());
    let check = args.iter().any(|a| a == "--check");

    let scenario = Scenario::default_conf(&workload, size, tier);
    eprintln!("running {} with telemetry on…", scenario.label());
    let (result, telemetry) =
        run_scenario_instrumented(&scenario, &TelemetryOptions::default()).expect("scenario run");

    for path in [&trace_path, &events_path] {
        if let Some(dir) = Path::new(path).parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir:?}: {e}"));
        }
    }
    let trace_json = telemetry.trace_json.as_deref().expect("tracing was on");
    std::fs::write(&trace_path, trace_json).unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    std::fs::write(&events_path, sparklite::to_jsonl(&telemetry.events))
        .unwrap_or_else(|e| panic!("write {events_path}: {e}"));

    println!(
        "{}: {:.3}s virtual, {} stages, {} tasks",
        scenario.label(),
        result.elapsed_s,
        result.stages,
        result.tasks
    );
    println!(
        "  {} counter samples, {} events, {} stage rollups",
        telemetry.counter_series.len(),
        telemetry.events.len(),
        result.stage_rollups.len()
    );
    println!("  wrote {trace_path} and {events_path}");

    if check {
        verify(&trace_path, &events_path, &result, &telemetry);
        println!("  check passed: artifacts parse and counters conserve");
    }
}

fn fail(msg: String) -> ! {
    eprintln!("check FAILED: {msg}");
    exit(1);
}

/// Re-read both artifacts from disk and verify the acceptance properties:
/// the trace is valid Chrome-tracing JSON with task spans and counter
/// tracks, the event log round-trips, and the counter series conserves
/// (its last sample equals the run's cumulative totals).
fn verify(
    trace_path: &str,
    events_path: &str,
    result: &memtier_core::ScenarioResult,
    telemetry: &memtier_core::ScenarioTelemetry,
) {
    let trace_text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| fail(format!("read {trace_path}: {e}")));
    let trace: serde_json::Value = serde_json::from_str(&trace_text)
        .unwrap_or_else(|e| fail(format!("{trace_path} is not valid JSON: {e}")));
    let Some(events) = trace["traceEvents"].as_array() else {
        fail(format!("{trace_path} lacks a traceEvents array"));
    };
    if !events.iter().any(|e| e["ph"] == "X") {
        fail("trace has no task spans (ph X)".to_string());
    }
    if !events.iter().any(|e| e["ph"] == "C") {
        fail("trace has no counter tracks (ph C)".to_string());
    }

    let events_text = std::fs::read_to_string(events_path)
        .unwrap_or_else(|e| fail(format!("read {events_path}: {e}")));
    let parsed = parse_jsonl(&events_text).unwrap_or_else(|e| fail(format!("{events_path}: {e}")));
    if parsed != telemetry.events {
        fail("event log did not round-trip".to_string());
    }
    if parsed.is_empty() {
        fail("event log is empty".to_string());
    }

    match telemetry.counter_series.last() {
        Some(last) if last.counters == result.counters => {}
        Some(_) => fail("final counter sample != cumulative totals".to_string()),
        None => fail("counter series is empty".to_string()),
    }
}
