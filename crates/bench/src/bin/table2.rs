//! Table II regeneration: the examined applications and their (scaled)
//! dataset sizes.

use memtier_metrics::AsciiTable;
use memtier_workloads::{all_workloads, DataSize};

fn main() {
    let mut t = AsciiTable::new(vec!["application", "category", "tiny", "small", "large"])
        .title("Table II — examined applications and dataset sizes (scaled; see DESIGN.md)");
    for w in all_workloads() {
        t.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            w.data_description(DataSize::Tiny),
            w.data_description(DataSize::Small),
            w.data_description(DataSize::Large),
        ]);
    }
    println!("{}", t.render());
}
