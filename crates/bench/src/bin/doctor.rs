//! Run-doctor harness: run the whole suite across tiers, assert that every
//! run's windowed series conserve exactly, print each run's diagnosis (the
//! ranked findings plus the doctor's sparkline timeline for one showcase
//! run), and write the machine-readable doctor baseline.
//!
//! ```text
//! cargo run --release -p memtier-bench --bin doctor
//! # -> results/BENCH_doctor.json
//! ```
//!
//! Flags: `--size tiny|small|large` (default `tiny`), `--dir <path>`
//! (default `results`), `--jobs <n>` sweep workers (default: all cores; any
//! width is byte-identical), and `--check` to re-read the artifact and
//! verify it parses, stays internally consistent, and regenerates
//! byte-identically from a fresh run (the CI doctor-smoke step).

use memtier_bench::{
    bench_doctor_entries, campaign_threads, check_fail as fail, parallel_sweep, suite_apps,
    write_json_artifact, BenchArgs, BenchDoctorEntry,
};
use memtier_core::{run_scenario, Scenario, ScenarioResult};
use memtier_memsim::TierId;
use memtier_metrics::table::fmt_f64;
use memtier_metrics::AsciiTable;

/// How many findings each run's row shows in the summary table.
const TOP_FINDINGS: usize = 3;

fn main() {
    let args = BenchArgs::parse();
    let jobs = args.jobs_or(campaign_threads());
    let (size, dir, check) = (args.size, args.dir, args.check);

    let apps = suite_apps();
    let scenarios: Vec<Scenario> = apps
        .iter()
        .flat_map(|app| {
            TierId::all()
                .into_iter()
                .map(move |t| Scenario::default_conf(app, size, t))
        })
        .collect();
    eprintln!(
        "diagnosing {} scenarios ({} apps x {} tiers, {size})…",
        scenarios.len(),
        apps.len(),
        TierId::all().len()
    );
    let results = parallel_sweep(&scenarios, jobs, |s| {
        run_scenario(s).expect("doctor campaign")
    });
    for r in &results {
        assert!(
            r.doctor.conserved,
            "the doctor's windowed series must re-sum to the run totals for {}",
            r.scenario.label()
        );
    }

    print_diagnoses(&results);

    // Full rendered diagnosis for one showcase run: the suite's first app on
    // the near NVM tier, where the saturation detector has something to say.
    if let Some(r) = results
        .iter()
        .find(|r| r.scenario.tier == TierId::NVM_NEAR && !r.doctor.findings.is_empty())
    {
        println!("## Showcase diagnosis: {}", r.scenario.label());
        print!("{}", r.doctor.render(TOP_FINDINGS));
    }

    let path = format!("{dir}/BENCH_doctor.json");
    write_json_artifact(&path, &bench_doctor_entries(&results));

    if check {
        verify(&path, &results);
        println!("  check passed: artifact parses, stays consistent, and regenerates identically");
    }
}

/// Per-run diagnosis table: conservation verdict, finding count, and the
/// top finding.
fn print_diagnoses(results: &[ScenarioResult]) {
    let mut t = AsciiTable::new(vec![
        "scenario",
        "runtime (s)",
        "windows",
        "conserved",
        "findings",
        "top finding",
        "recovery (s)",
    ])
    .title("Run doctor (top finding per run)");
    for r in results {
        let top = r.doctor.findings.first();
        t.row(vec![
            r.scenario.label(),
            fmt_f64(r.elapsed_s, 3),
            r.doctor.series.starts.len().to_string(),
            if r.doctor.conserved { "yes" } else { "NO" }.to_string(),
            r.doctor.findings.len().to_string(),
            top.map(|f| f.kind.label().to_string())
                .unwrap_or_else(|| "-".to_string()),
            top.map(|f| fmt_f64(f.estimated_recovery_s, 4))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", t.render());
}

/// The CI smoke checks: the artifact re-read from disk parses, each entry is
/// internally consistent (conserved, ranked findings), and re-running one
/// scenario reproduces its row byte-for-byte (determinism end to end,
/// through serialization).
fn verify(path: &str, results: &[ScenarioResult]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let entries: Vec<BenchDoctorEntry> = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("{path} is not a valid doctor baseline: {e}")));
    if entries.is_empty() {
        fail(format!("{path} is empty"));
    }
    for e in &entries {
        if !e.conserved {
            fail(format!(
                "{path}: {} failed the conservation contract",
                e.scenario
            ));
        }
        if e.windows == 0 || e.window_width_s <= 0.0 {
            fail(format!("{path}: {} has a degenerate grid", e.scenario));
        }
        for pair in e.findings.windows(2) {
            if pair[0].score < pair[1].score {
                fail(format!(
                    "{path}: {} findings are not ranked by score",
                    e.scenario
                ));
            }
        }
    }

    // Re-run the first scenario and require its regenerated row to match the
    // one on disk exactly.
    let scenario = results[0].scenario.clone();
    let rerun = run_scenario(&scenario).unwrap_or_else(|e| fail(format!("re-run: {e}")));
    let fresh = bench_doctor_entries(std::slice::from_ref(&rerun));
    let on_disk = entries
        .iter()
        .find(|e| e.scenario == scenario.label())
        .unwrap_or_else(|| fail(format!("{} missing from {path}", scenario.label())));
    let a = serde_json::to_string(&fresh[0]).expect("serialize fresh entry");
    let b = serde_json::to_string(on_disk).expect("serialize disk entry");
    if a != b {
        fail(format!(
            "{} does not regenerate byte-identically:\n fresh: {a}\n disk:  {b}",
            scenario.label()
        ));
    }
    println!(
        "  determinism: {} regenerated byte-identically",
        scenario.label()
    );
}
