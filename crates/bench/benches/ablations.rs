//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Each ablation runs a scenario with one model feature disabled and prints
//! the virtual-time effect next to the timed simulation, demonstrating that
//! the feature is load-bearing for the corresponding paper shape:
//!
//! 1. contention model off → the Fig. 4 multi-executor cliff disappears;
//! 2. DCPM write asymmetry off → lda's NVM blow-up shrinks (Takeaway 3);
//! 3. serializing arbitration → uniform slowdown replaces fair sharing;
//! 4. coordination traffic off → multi-executor NVM penalty shrinks
//!    (Takeaway 6).

use criterion::{criterion_group, criterion_main, Criterion};
use memtier_core::{conf_for, run_scenario_with_conf, Scenario};
use memtier_memsim::config::Arbitration;
use memtier_memsim::TierId;
use memtier_workloads::DataSize;
use sparklite::SparkConf;
use std::hint::black_box;

fn contention_cell() -> Scenario {
    Scenario::default_conf("pagerank", DataSize::Small, TierId::NVM_NEAR).with_grid(8, 10)
}

fn elapsed(s: &Scenario, conf: SparkConf) -> f64 {
    run_scenario_with_conf(s, conf).unwrap().elapsed_s
}

/// Ablation 1: concurrency-dependent rate degradation.
fn bench_loaded_latency(c: &mut Criterion) {
    let s = contention_cell();
    let on = conf_for(&s);
    let mut off = conf_for(&s);
    off.memsim.contention_enabled = false;
    let (t_on, t_off) = (elapsed(&s, on.clone()), elapsed(&s, off.clone()));
    eprintln!(
        "ablation_loaded_latency pagerank-small 8x10: contention on {t_on:.4}s vs off \
         {t_off:.4}s ({:.2}x)",
        t_on / t_off
    );
    let mut g = c.benchmark_group("ablation_loaded_latency");
    g.sample_size(10);
    g.bench_function("contention_on", |b| {
        b.iter(|| black_box(elapsed(&s, on.clone())))
    });
    g.bench_function("contention_off", |b| {
        b.iter(|| black_box(elapsed(&s, off.clone())))
    });
    g.finish();
}

/// Ablation 2: DCPM read/write latency asymmetry.
fn bench_write_asym(c: &mut Criterion) {
    let s = Scenario::default_conf("lda", DataSize::Large, TierId::NVM_NEAR);
    let on = conf_for(&s);
    let mut off = conf_for(&s);
    off.memsim.write_asymmetry = false;
    let (t_on, t_off) = (elapsed(&s, on.clone()), elapsed(&s, off.clone()));
    eprintln!(
        "ablation_write_asym lda-large Tier2: asym on {t_on:.4}s vs off {t_off:.4}s ({:.2}x)",
        t_on / t_off
    );
    let mut g = c.benchmark_group("ablation_write_asym");
    g.sample_size(10);
    g.bench_function("asymmetry_on", |b| {
        b.iter(|| black_box(elapsed(&s, on.clone())))
    });
    g.bench_function("asymmetry_off", |b| {
        b.iter(|| black_box(elapsed(&s, off.clone())))
    });
    g.finish();
}

/// Ablation 3: fair-share vs serializing bandwidth arbitration.
fn bench_arbitration(c: &mut Criterion) {
    let s = Scenario::default_conf("sort", DataSize::Large, TierId::NVM_NEAR);
    let fair = conf_for(&s);
    let mut serial = conf_for(&s);
    serial.memsim.arbitration = Arbitration::Serializing;
    let (t_fair, t_serial) = (elapsed(&s, fair.clone()), elapsed(&s, serial.clone()));
    eprintln!(
        "ablation_arbitration sort-large Tier2: fair {t_fair:.4}s vs serializing \
         {t_serial:.4}s ({:.2}x)",
        t_serial / t_fair
    );
    let mut g = c.benchmark_group("ablation_arbitration");
    g.sample_size(10);
    g.bench_function("fair_share", |b| {
        b.iter(|| black_box(elapsed(&s, fair.clone())))
    });
    g.bench_function("serializing", |b| {
        b.iter(|| black_box(elapsed(&s, serial.clone())))
    });
    g.finish();
}

/// Ablation 4: cross-executor coordination traffic.
fn bench_shuffle_coord(c: &mut Criterion) {
    let s = Scenario::default_conf("rf", DataSize::Small, TierId::NVM_FAR).with_grid(8, 5);
    let on = conf_for(&s);
    let mut off = conf_for(&s);
    off.cost.coord_bytes_per_task = 0;
    let (t_on, t_off) = (elapsed(&s, on.clone()), elapsed(&s, off.clone()));
    eprintln!(
        "ablation_shuffle_coord rf-small 8x5 Tier3: coordination on {t_on:.4}s vs off \
         {t_off:.4}s ({:.2}x)",
        t_on / t_off
    );
    let mut g = c.benchmark_group("ablation_shuffle_coord");
    g.sample_size(10);
    g.bench_function("coordination_on", |b| {
        b.iter(|| black_box(elapsed(&s, on.clone())))
    });
    g.bench_function("coordination_off", |b| {
        b.iter(|| black_box(elapsed(&s, off.clone())))
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_loaded_latency,
    bench_write_asym,
    bench_arbitration,
    bench_shuffle_coord
);
criterion_main!(ablations);
