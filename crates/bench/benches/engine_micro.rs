//! Engine microbenchmarks: the primitives the figure campaigns are built
//! from. These track wall-clock performance of the simulator itself (not
//! the virtual-time model): regressions here slow every campaign down.

use criterion::{criterion_group, criterion_main, Criterion};
use memtier_des::{ContentionModel, EventQueue, SharedResource, SimTime};
use memtier_metrics::{pearson, LinearModel, ViolinSummary};
use sparklite::{SparkConf, SparkContext};
use std::hint::black_box;

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("event_queue_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ns(i * 7 % 5000), i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.bench_function("fair_share_100_flows", |b| {
        b.iter(|| {
            let mut r = SharedResource::new(1e9, ContentionModel::Linear { alpha: 0.01 });
            for id in 0..100 {
                r.add_flow(SimTime::ZERO, id, 1e6, 5e7);
            }
            while let Some((t, id)) = r.next_completion() {
                r.advance(t);
                r.remove_flow(t, id);
            }
            black_box(r.total_served())
        })
    });
    // The rate cache's two regimes (DESIGN.md §16): a cold query re-runs
    // the full water-fill; a cached query is a clone of the memoized
    // allocation. The gap between these two is what the cache buys every
    // event-loop iteration that reads rates without mutating the flow set.
    g.bench_function("current_rates_cold_100_flows", |b| {
        let mut r = SharedResource::new(1e9, ContentionModel::Linear { alpha: 0.01 });
        for id in 0..100 {
            r.add_flow(SimTime::ZERO, id, 1e6, 5e7);
        }
        b.iter(|| {
            // A numerically-neutral mutation: invalidates without changing
            // the allocation, so every query water-fills from scratch.
            r.set_throttle(1.0);
            black_box(r.current_rates())
        })
    });
    g.bench_function("current_rates_cached_100_flows", |b| {
        let mut r = SharedResource::new(1e9, ContentionModel::Linear { alpha: 0.01 });
        for id in 0..100 {
            r.add_flow(SimTime::ZERO, id, 1e6, 5e7);
        }
        let _ = r.current_rates(); // prime the cache
        b.iter(|| black_box(r.current_rates()))
    });
    // Coalesced same-instant drain vs the repeated-pop loop it replaces:
    // 10k events bunched onto 64 instants, drained batch by batch.
    g.bench_function("pop_at_10k_64_instants", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule_batch((0..10_000u64).map(|i| (SimTime::from_ns(i % 64), i)));
            let mut batch = Vec::new();
            let mut drained = 0usize;
            while let Some(at) = q.peek_time() {
                drained += q.pop_at(at, &mut batch);
                black_box(&batch);
            }
            black_box(drained)
        })
    });
    g.finish();
}

fn bench_engine_ops(c: &mut Criterion) {
    let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
    let data: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i % 1000, i)).collect();
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("reduce_by_key_100k", |b| {
        b.iter(|| {
            let rdd = sc.parallelize(data.clone(), 8).reduce_by_key(|a, b| a + b);
            black_box(rdd.count().unwrap())
        })
    });
    g.bench_function("sort_by_key_100k", |b| {
        b.iter(|| {
            let rdd = sc.parallelize(data.clone(), 8).sort_by_key(8).unwrap();
            black_box(rdd.count().unwrap())
        })
    });
    g.bench_function("map_filter_chain_100k", |b| {
        b.iter(|| {
            let rdd = sc
                .parallelize(data.clone(), 8)
                .map(|&(k, v)| (k, v * 2))
                .filter(|&(k, _)| k % 2 == 0)
                .map(|&(_, v)| v);
            black_box(rdd.count().unwrap())
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let xs: Vec<f64> = (0..10_000)
        .map(|i| (i as f64).sin() * 50.0 + i as f64)
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 3.0).collect();
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, x * x]).collect();
    let mut g = c.benchmark_group("metrics");
    g.bench_function("pearson_10k", |b| b.iter(|| black_box(pearson(&xs, &ys))));
    g.bench_function("ols_10k_x2", |b| {
        b.iter(|| black_box(LinearModel::fit(&rows, &ys)))
    });
    g.bench_function("violin_10k", |b| {
        b.iter(|| black_box(ViolinSummary::from_samples(&xs)))
    });
    g.finish();
}

criterion_group!(engine_micro, bench_des, bench_engine_ops, bench_metrics);
criterion_main!(engine_micro);
