//! Criterion benches over the figure-regeneration scenarios.
//!
//! Each group times representative scenario simulations for one paper
//! artifact; the full tables/series come from the `fig*`/`table*` binaries
//! (`cargo run -p memtier-bench --bin fig2 --release`). Before timing, each
//! group prints the *virtual*-time measurements criterion cannot see, so a
//! `cargo bench` log carries the reproduced numbers too.

use criterion::{criterion_group, criterion_main, Criterion};
use memtier_core::{run_scenario, Scenario};
use memtier_memsim::probe::{measure_bandwidth, measure_idle_latency};
use memtier_memsim::{MemorySystem, TierId};
use memtier_workloads::DataSize;
use std::hint::black_box;

/// Table I: the latency/bandwidth probes.
fn bench_table1(c: &mut Criterion) {
    let system = MemorySystem::paper_default();
    let mut g = c.benchmark_group("table1_probe");
    g.bench_function("idle_latency_all_tiers", |b| {
        b.iter(|| {
            for tier in TierId::all() {
                black_box(measure_idle_latency(&system, tier));
            }
        })
    });
    g.bench_function("bandwidth_all_tiers", |b| {
        b.iter(|| {
            for tier in TierId::all() {
                black_box(measure_bandwidth(&system, tier));
            }
        })
    });
    g.finish();
}

/// Fig. 2: execution time per tier (representative cells of the 84-run
/// campaign).
fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_time");
    g.sample_size(10);
    for tier in TierId::all() {
        let s = Scenario::default_conf("sort", DataSize::Small, tier);
        let r = run_scenario(&s).unwrap();
        eprintln!("fig2 sort-small {tier}: {:.4}s virtual", r.elapsed_s);
        g.bench_function(format!("sort_small_tier{}", tier.index()), |b| {
            b.iter(|| black_box(run_scenario(&s).unwrap().elapsed_s))
        });
    }
    g.finish();
}

/// Fig. 3: MBA throttling (10 % vs 100 % on the NVM tier).
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_mba");
    g.sample_size(10);
    for pct in [10u8, 100] {
        let s = Scenario::default_conf("bayes", DataSize::Small, TierId::NVM_NEAR).with_mba(pct);
        let r = run_scenario(&s).unwrap();
        eprintln!("fig3 bayes-small MBA {pct}%: {:.4}s virtual", r.elapsed_s);
        g.bench_function(format!("bayes_small_mba{pct}"), |b| {
            b.iter(|| black_box(run_scenario(&s).unwrap().elapsed_s))
        });
    }
    g.finish();
}

/// Fig. 4: executor-grid extremes (1×40 baseline vs 8×10 contention cell).
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_grid");
    g.sample_size(10);
    for (e, cores) in [(1usize, 40usize), (8, 10)] {
        let s = Scenario::default_conf("pagerank", DataSize::Small, TierId::NVM_NEAR)
            .with_grid(e, cores);
        let r = run_scenario(&s).unwrap();
        eprintln!(
            "fig4 pagerank-small {e}x{cores}: {:.4}s virtual",
            r.elapsed_s
        );
        g.bench_function(format!("pagerank_small_{e}x{cores}"), |b| {
            b.iter(|| black_box(run_scenario(&s).unwrap().elapsed_s))
        });
    }
    g.finish();
}

/// Figs. 5/6: the correlation analyses over a prebuilt result set.
fn bench_fig56(c: &mut Criterion) {
    use memtier_core::predict::{correlation_with_specs, event_correlations, leave_one_tier_out};
    let results: Vec<_> = TierId::all()
        .into_iter()
        .map(|t| run_scenario(&Scenario::default_conf("bayes", DataSize::Tiny, t)).unwrap())
        .collect();
    let refs: Vec<_> = results.iter().collect();
    let mut g = c.benchmark_group("fig56_analysis");
    g.bench_function("fig6_spec_correlation", |b| {
        b.iter(|| black_box(correlation_with_specs(&refs)))
    });
    g.bench_function("fig6_leave_one_tier_out", |b| {
        b.iter(|| black_box(leave_one_tier_out(&refs)))
    });
    g.bench_function("fig5_event_correlations", |b| {
        b.iter(|| black_box(event_correlations("bayes", &refs)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig56
);
criterion_main!(figures);
