//! DAG scheduler tests: stage construction, skipping and cache pruning,
//! observed through `Rdd::explain()` and engine metrics.

use sparklite::{SparkConf, SparkContext};

fn ctx() -> SparkContext {
    SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap()
}

#[test]
fn narrow_chain_is_one_stage() {
    let sc = ctx();
    let rdd = sc
        .parallelize((0u64..10).collect(), 4)
        .map(|x| x + 1)
        .filter(|x| x % 2 == 0)
        .flat_map(|x| vec![*x]);
    let plan = rdd.explain();
    assert_eq!(
        plan.lines().count(),
        1,
        "narrow chain must stay fused:\n{plan}"
    );
    assert!(plan.contains("Result(flat_map)"));
    assert!(plan.contains("tasks=4"));
}

#[test]
fn shuffle_splits_into_two_stages() {
    let sc = ctx();
    let rdd = sc
        .parallelize((0u64..10).map(|i| (i % 3, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b)
        .map_values(|v| v * 2);
    let plan = rdd.explain();
    assert_eq!(plan.lines().count(), 2, "{plan}");
    assert!(plan.contains("Stage 0: ShuffleMap(parallelize)"));
    assert!(plan.contains("Stage 1: Result(map)"));
    assert!(plan.contains("parents=[0]"));
}

#[test]
fn chained_shuffles_stack_stages() {
    let sc = ctx();
    let rdd = sc
        .parallelize((0u64..20).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b)
        .map(|&(k, v)| (v % 3, k))
        .reduce_by_key(|a, b| a.min(b));
    let plan = rdd.explain();
    assert_eq!(plan.lines().count(), 3, "{plan}");
    // Stage 1 depends on stage 0, result on stage 1.
    assert!(plan.lines().nth(1).unwrap().contains("parents=[0]"));
    assert!(plan.lines().nth(2).unwrap().contains("parents=[1]"));
}

#[test]
fn cogroup_has_two_parent_stages() {
    let sc = ctx();
    let a = sc.parallelize(vec![(1u32, 1u32)], 2);
    let b = sc.parallelize(vec![(1u32, 2u32)], 2);
    let plan = a.cogroup(&b, 3).explain();
    assert_eq!(plan.lines().count(), 3, "{plan}");
    let result_line = plan.lines().nth(2).unwrap();
    assert!(
        result_line.contains("parents=[0,1]"),
        "cogroup result stage needs both map stages: {result_line}"
    );
    assert!(result_line.contains("tasks=3"));
}

#[test]
fn completed_shuffles_are_marked_skipped() {
    let sc = ctx();
    let counts = sc
        .parallelize((0u64..100).map(|i| (i % 7, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b);
    let before = counts.explain();
    assert!(!before.contains("[skipped]"));
    counts.count().unwrap();
    let after = counts.explain();
    assert!(
        after.lines().next().unwrap().contains("[skipped]"),
        "map stage must be skippable after its shuffle completed:\n{after}"
    );
}

#[test]
fn cached_parent_prunes_upstream_stages() {
    let sc = ctx();
    // grouped is itself a shuffle output; cache it.
    let grouped = sc
        .parallelize((0u64..100).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4)
        .group_by_key()
        .cache();
    grouped.count().unwrap(); // materialize the cache

    // A *new* shuffle on top of the cached RDD: planning must not descend
    // past the cached parent (no stage for the original parallelize data).
    let downstream = grouped
        .map(|&(k, ref v)| (k % 2, v.len() as u64))
        .reduce_by_key(|a, b| a + b);
    let plan = downstream.explain();
    // Two stages: the new shuffle's map stage (reading the cache) and the
    // result stage. The original map stage is either absent or skipped.
    let active: Vec<&str> = plan.lines().filter(|l| !l.contains("[skipped]")).collect();
    assert_eq!(
        active.len(),
        2,
        "cached parent must prune upstream stages:\n{plan}"
    );
}

#[test]
fn skipped_stages_do_not_rerun_tasks() {
    let sc = ctx();
    let counts = sc
        .parallelize((0u64..40).map(|i| (i % 4, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b);
    counts.count().unwrap();
    let t1 = sc.metrics().tasks;
    counts.count().unwrap();
    let t2 = sc.metrics().tasks;
    // Second job runs only the 4 result tasks, not the 4 map tasks.
    assert_eq!(t2 - t1, 4);
}
