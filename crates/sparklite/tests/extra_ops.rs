//! Tests for the extended operator set (`coalesce`, `glom`, `key_by`,
//! `zip_with_index`, `aggregate`, `top`, numeric reductions, broadcast).

use sparklite::{OpCost, SparkConf, SparkContext};

fn ctx() -> SparkContext {
    SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap()
}

#[test]
fn coalesce_preserves_data_and_order() {
    let sc = ctx();
    let data: Vec<u64> = (0..1000).collect();
    let rdd = sc.parallelize(data.clone(), 8).coalesce(3);
    assert_eq!(rdd.num_partitions(), 3);
    assert_eq!(rdd.collect().unwrap(), data);
    // Clamped at both ends.
    assert_eq!(
        sc.parallelize(data.clone(), 8).coalesce(0).num_partitions(),
        1
    );
    assert_eq!(
        sc.parallelize(data.clone(), 4)
            .coalesce(100)
            .num_partitions(),
        4
    );
}

#[test]
fn coalesce_runs_in_one_stage() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..100).collect(), 8).coalesce(2);
    let before = sc.metrics();
    rdd.count().unwrap();
    let after = sc.metrics();
    assert_eq!(after.stages, before.stages + 1, "coalesce must not shuffle");
    // And only 2 result tasks ran.
    assert_eq!(after.tasks, before.tasks + 2);
}

#[test]
fn glom_exposes_partitions() {
    let sc = ctx();
    let parts = sc
        .parallelize((0u64..100).collect(), 4)
        .glom()
        .collect()
        .unwrap();
    assert_eq!(parts.len(), 4);
    assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
    assert_eq!(parts[0], (0..25).collect::<Vec<u64>>());
}

#[test]
fn key_by_keys_records() {
    let sc = ctx();
    let mut out = sc
        .parallelize(vec!["apple", "fig", "banana"], 2)
        .key_by(|s| s.len() as u32)
        .collect()
        .unwrap();
    out.sort();
    assert_eq!(out, vec![(3, "fig"), (5, "apple"), (6, "banana")]);
}

#[test]
fn zip_with_index_is_global_and_ordered() {
    let sc = ctx();
    let data: Vec<String> = (0..503).map(|i| format!("row{i}")).collect();
    let indexed = sc
        .parallelize(data.clone(), 7)
        .zip_with_index()
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(indexed.len(), 503);
    for (i, (record, idx)) in indexed.iter().enumerate() {
        assert_eq!(*idx, i as u64);
        assert_eq!(*record, data[i]);
    }
}

#[test]
fn aggregate_computes_sum_and_count() {
    let sc = ctx();
    let (sum, count) = sc
        .parallelize((1u64..=100).collect(), 5)
        .aggregate(
            (0u64, 0u64),
            |(s, c), &x| (s + x, c + 1),
            |a, b| (a.0 + b.0, a.1 + b.1),
        )
        .unwrap();
    assert_eq!((sum, count), (5050, 100));
}

#[test]
fn top_min_max() {
    let sc = ctx();
    let rdd = sc.parallelize(vec![5u64, 1, 9, 3, 7, 9, 2], 3);
    assert_eq!(rdd.top(3).unwrap(), vec![9, 9, 7]);
    assert_eq!(rdd.top(0).unwrap(), Vec::<u64>::new());
    assert_eq!(rdd.min().unwrap(), 1);
    assert_eq!(rdd.max().unwrap(), 9);
    // top(n) with n larger than the data returns everything, sorted desc.
    assert_eq!(rdd.top(100).unwrap(), vec![9, 9, 7, 5, 3, 2, 1]);
}

#[test]
fn numeric_reductions() {
    let sc = ctx();
    let xs = sc.parallelize(vec![1.5f64, 2.5, 6.0], 2);
    assert!((xs.sum().unwrap() - 10.0).abs() < 1e-12);
    assert!((xs.mean().unwrap() - 10.0 / 3.0).abs() < 1e-12);
    assert!(sc.parallelize(Vec::<f64>::new(), 1).mean().is_err());
    assert_eq!(sc.parallelize(vec![1u64, 2, 3], 2).sum().unwrap(), 6);
}

#[test]
fn broadcast_reaches_tasks_and_charges_traffic() {
    let sc = ctx();
    let model = sc.broadcast((0..1000u64).collect::<Vec<u64>>());
    let lookups = sc.generate(
        4,
        |p| vec![p as u64 * 100, p as u64 * 100 + 7],
        OpCost::cpu(10.0),
    );
    let out = lookups
        .map_partitions_with_env(move |_, keys, env| {
            let table = model.value(env);
            keys.iter().map(|&k| table[k as usize]).collect()
        })
        .collect()
        .unwrap();
    assert_eq!(out, vec![0, 7, 100, 107, 200, 207, 300, 307]);
    let m = sc.metrics();
    assert!(
        m.totals.input_bytes > 0,
        "broadcast fetches must appear in traffic"
    );
}

#[test]
fn memory_and_disk_persists_under_capacity_pressure() {
    // A cache far smaller than the dataset: MemoryOnly drops blocks (and
    // recomputes), MemoryAndDisk spills and rereads — slower per read but
    // never recomputes lineage.
    let mut conf = SparkConf::default().with_parallelism(8);
    conf.executor_cache_bytes = 4 << 10; // 4 KB: holds well under one partition
    let sc = SparkContext::new(conf).unwrap();
    let rdd = sc
        .parallelize((0u64..20_000).collect(), 8)
        .map(|x| x * 3)
        .persist(sparklite::StorageLevel::MemoryAndDisk);
    let first = rdd.count().unwrap();
    let again = rdd.count().unwrap();
    assert_eq!(first, again);
    assert_eq!(first, 20_000);
    let stats = sc.finish().cache;
    assert!(
        stats.spills > 0,
        "blocks must spill under pressure: {stats:?}"
    );
    assert!(
        stats.disk_reads > 0,
        "second pass must read from disk: {stats:?}"
    );
    // Correctness: data identical to an unpersisted run.
    let sc2 = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
    let plain = sc2.parallelize((0u64..20_000).collect(), 8).map(|x| x * 3);
    assert_eq!(rdd.collect().unwrap(), plain.collect().unwrap());
}

#[test]
fn disk_reads_are_slower_than_memory_hits() {
    let run = |capacity: u64| {
        let mut conf = SparkConf::default().with_parallelism(4);
        conf.executor_cache_bytes = capacity;
        let sc = SparkContext::new(conf).unwrap();
        let rdd = sc
            .parallelize((0u64..200_000).collect(), 4)
            .persist(sparklite::StorageLevel::MemoryAndDisk);
        rdd.count().unwrap();
        let warm_start = sc.elapsed();
        rdd.count().unwrap();
        (sc.elapsed() - warm_start).as_secs_f64()
    };
    let from_memory = run(512 << 20); // everything fits
    let from_disk = run(1 << 10); // everything spills
    assert!(
        from_disk > from_memory * 1.5,
        "disk rereads must cost visibly more ({from_disk} vs {from_memory})"
    );
}

#[test]
fn tracing_captures_task_timeline() {
    let sc = ctx();
    sc.enable_tracing();
    sc.parallelize((0u64..1000).map(|i| (i % 5, i)).collect::<Vec<_>>(), 8)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let spans = sc.task_spans().unwrap();
    // 8 map tasks + 8 reduce tasks.
    assert_eq!(spans.len(), 16);
    for s in &spans {
        assert!(s.end > s.start, "span must have positive duration");
        assert_eq!(s.executor, 0);
        assert!(s.slot < 40);
    }
    // Map stage strictly precedes the reduce stage.
    let map_max = spans
        .iter()
        .filter(|s| s.stage == 0)
        .map(|s| s.end)
        .max()
        .unwrap();
    let red_min = spans
        .iter()
        .filter(|s| s.stage == 1)
        .map(|s| s.start)
        .min()
        .unwrap();
    assert!(
        red_min >= map_max,
        "stage barrier must hold in the timeline"
    );
    // Chrome export is valid JSON with one event per span.
    let json = sc.chrome_trace().unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["traceEvents"].as_array().unwrap().len(), 16);
}

#[test]
fn tracing_off_by_default() {
    let sc = ctx();
    sc.parallelize(vec![1u32], 1).count().unwrap();
    assert!(sc.task_spans().is_none());
    assert!(sc.chrome_trace().is_none());
}

#[test]
fn stats_matches_reference() {
    let sc = ctx();
    let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
    let s = sc.parallelize(xs.clone(), 7).stats().unwrap();
    assert_eq!(s.count, 1000);
    assert!((s.sum - 500_500.0).abs() < 1e-6);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 1000.0);
    assert!((s.mean() - 500.5).abs() < 1e-9);
    // Population variance of 1..=n is (n²−1)/12.
    let expect_var = (1000.0f64 * 1000.0 - 1.0) / 12.0;
    assert!((s.variance() - expect_var).abs() / expect_var < 1e-9);
    // Empty stats are NaN/0.
    let empty = sc.parallelize(Vec::<f64>::new(), 2).stats().unwrap();
    assert_eq!(empty.count, 0);
    assert!(empty.mean().is_nan());
}

#[test]
fn histogram_covers_all_values() {
    let sc = ctx();
    let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let (bounds, counts) = sc.parallelize(xs, 4).histogram(4).unwrap();
    assert_eq!(bounds.len(), 5);
    assert_eq!(counts, vec![25, 25, 25, 25]);
    assert_eq!(bounds[0], 0.0);
    assert_eq!(bounds[4], 99.0);
    // Constant data: everything in one bucket, no div-by-zero.
    let (b2, c2) = sc.parallelize(vec![5.0f64; 10], 2).histogram(3).unwrap();
    assert_eq!(c2.iter().sum::<u64>(), 10);
    assert_eq!(b2[0], 5.0);
    // Empty errors.
    assert!(sc.parallelize(Vec::<f64>::new(), 1).histogram(2).is_err());
}

#[test]
fn subtract_and_intersection() {
    let sc = ctx();
    let a = sc.parallelize(vec![1u32, 2, 3, 4, 4, 5], 3);
    let b = sc.parallelize(vec![3u32, 4, 9], 2);
    let mut sub = a.subtract(&b).collect().unwrap();
    sub.sort();
    assert_eq!(sub, vec![1, 2, 5]);
    let mut inter = a.intersection(&b).collect().unwrap();
    inter.sort();
    assert_eq!(inter, vec![3, 4]);
    // Empty other: subtract is distinct(self), intersection empty.
    let empty = sc.parallelize(Vec::<u32>::new(), 1);
    let mut all = a.subtract(&empty).collect().unwrap();
    all.sort();
    assert_eq!(all, vec![1, 2, 3, 4, 5]);
    assert_eq!(a.intersection(&empty).count().unwrap(), 0);
}

#[test]
fn disk_shuffle_mode_is_slower_and_off_by_default() {
    let run = |through_disk: bool| {
        let mut conf = SparkConf::default().with_parallelism(8);
        conf.shuffle_through_disk = through_disk;
        let sc = SparkContext::new(conf).unwrap();
        let out = sc
            .parallelize((0u64..20_000).map(|i| (i % 50, i)).collect::<Vec<_>>(), 8)
            .reduce_by_key(|a, b| a + b)
            .collect()
            .unwrap();
        (out.len(), sc.elapsed().as_secs_f64())
    };
    let (n_mem, t_mem) = run(false);
    let (n_disk, t_disk) = run(true);
    assert_eq!(
        n_mem, n_disk,
        "results must not depend on the shuffle medium"
    );
    assert!(
        t_disk > t_mem * 1.1,
        "disk-materialized shuffle must cost more ({t_disk} vs {t_mem})"
    );
    assert!(!SparkConf::default().shuffle_through_disk);
}

#[test]
fn checkpoint_truncates_lineage() {
    let sc = ctx();
    let deep = sc
        .parallelize((0u64..500).map(|i| (i % 7, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b)
        .map(|&(k, v)| (v % 5, k))
        .reduce_by_key(|a, b| a + b);
    let checkpointed = deep.checkpoint().unwrap();
    // Same data…
    let mut a = deep.collect().unwrap();
    let mut b = checkpointed.collect().unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // …but a single-stage plan (no shuffle ancestry).
    let plan = checkpointed.explain();
    assert_eq!(
        plan.lines().filter(|l| !l.contains("[skipped]")).count(),
        1,
        "checkpoint must cut the lineage:\n{plan}"
    );
}
