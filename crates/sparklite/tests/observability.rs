//! Observability-surface tests: utilization sampling, MBA control through
//! the context, metrics/event consistency.

use memtier_des::SimTime;
use memtier_memsim::TierId;
use sparklite::{SparkConf, SparkContext};

fn nvm_ctx() -> SparkContext {
    SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).unwrap()
}

#[test]
fn utilization_sampling_tracks_activity() {
    let sc = nvm_ctx();
    sc.enable_utilization_sampling(SimTime::from_us(100));
    sc.parallelize((0u64..30_000).map(|i| (i % 50, i)).collect::<Vec<_>>(), 16)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let samples = sc.utilization_samples();
    assert!(samples.len() > 10, "expected a timeline, got {}", samples.len());
    // Samples are equally spaced and monotone.
    for w in samples.windows(2) {
        assert_eq!(w[1].at - w[0].at, SimTime::from_us(100));
    }
    let idx = TierId::NVM_NEAR.index();
    // Some activity on the bound tier, none on the others.
    assert!(samples.iter().any(|s| s.active[idx] > 0));
    assert!(samples.iter().any(|s| s.utilization[idx] > 0.0));
    for other in [TierId::LOCAL_DRAM, TierId::REMOTE_DRAM, TierId::NVM_FAR] {
        assert!(samples.iter().all(|s| s.active[other.index()] == 0));
    }
    // Utilization is a fraction.
    assert!(samples
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.utilization[idx])));
}

#[test]
fn sampling_disabled_returns_empty() {
    let sc = nvm_ctx();
    sc.parallelize(vec![1u32], 1).count().unwrap();
    assert!(sc.utilization_samples().is_empty());
}

#[test]
fn mba_through_context_throttles_streaming() {
    // A deliberately bandwidth-hungry pattern: wide sequential collect of
    // large partitions on the slowest tier.
    let run = |pct: u8| {
        let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_FAR)).unwrap();
        sc.set_mba_level(TierId::NVM_FAR, pct);
        sc.parallelize((0u64..400_000).collect::<Vec<_>>(), 40)
            .collect()
            .unwrap();
        sc.elapsed().as_secs_f64()
    };
    let full = run(100);
    let throttled = run(10);
    assert!(
        throttled >= full,
        "throttling can only slow things down ({throttled} vs {full})"
    );
}

#[test]
fn events_are_internally_consistent() {
    let sc = nvm_ctx();
    sc.parallelize((0u64..5_000).map(|i| (i % 9, i)).collect::<Vec<_>>(), 8)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let report = sc.finish();
    let ev = &report.events;
    // The event vector mirrors the metrics struct.
    assert_eq!(ev.get("tasks").unwrap() as u64, report.metrics.tasks);
    assert_eq!(ev.get("jobs").unwrap() as u64, report.metrics.jobs);
    assert_eq!(
        ev.get("shuffle_write_bytes").unwrap() as u64,
        report.metrics.totals.shuffle_write_bytes
    );
    // Counter-derived events match the telemetry snapshot.
    let reads: u64 = TierId::all()
        .iter()
        .map(|&t| report.telemetry.counters.tier(t).reads)
        .sum();
    assert_eq!(ev.get("mem_reads").unwrap() as u64, reads);
    // Shuffle read equals shuffle write for a completed exchange.
    assert_eq!(
        report.metrics.totals.shuffle_read_bytes,
        report.metrics.totals.shuffle_write_bytes
    );
}

#[test]
fn driver_work_advances_clock_without_tasks() {
    let sc = nvm_ctx();
    let before = sc.elapsed();
    sc.run_driver_work(5e6); // 5 ms
    let after = sc.elapsed();
    assert_eq!(after - before, SimTime::from_ms(5));
    assert_eq!(sc.metrics().tasks, 0);
    // Negative work is clamped in the metrics but must not panic.
    sc.run_driver_work(-1.0);
    assert_eq!(sc.elapsed(), after);
}
