//! Observability-surface tests: utilization and counter sampling, the
//! lifecycle event log, stage rollups, trace export, and MBA control
//! through the context.

use memtier_des::SimTime;
use memtier_memsim::TierId;
use sparklite::{parse_jsonl, to_jsonl, Event, JsonlSink, SparkConf, SparkContext};

fn nvm_ctx() -> SparkContext {
    SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_NEAR)).unwrap()
}

/// A two-stage shuffle workload on the context.
fn run_shuffle_job(sc: &SparkContext) {
    sc.parallelize((0u64..30_000).map(|i| (i % 50, i)).collect::<Vec<_>>(), 16)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
}

#[test]
fn utilization_sampling_tracks_activity() {
    let sc = nvm_ctx();
    sc.enable_utilization_sampling(SimTime::from_us(100));
    sc.parallelize((0u64..30_000).map(|i| (i % 50, i)).collect::<Vec<_>>(), 16)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let samples = sc.utilization_samples();
    assert!(
        samples.len() > 10,
        "expected a timeline, got {}",
        samples.len()
    );
    // Samples are equally spaced and monotone.
    for w in samples.windows(2) {
        assert_eq!(w[1].at - w[0].at, SimTime::from_us(100));
    }
    let idx = TierId::NVM_NEAR.index();
    // Some activity on the bound tier, none on the others.
    assert!(samples.iter().any(|s| s.active[idx] > 0));
    assert!(samples.iter().any(|s| s.utilization[idx] > 0.0));
    for other in [TierId::LOCAL_DRAM, TierId::REMOTE_DRAM, TierId::NVM_FAR] {
        assert!(samples.iter().all(|s| s.active[other.index()] == 0));
    }
    // Utilization is a fraction.
    assert!(samples
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.utilization[idx])));
}

#[test]
fn sampling_disabled_returns_empty() {
    let sc = nvm_ctx();
    sc.parallelize(vec![1u32], 1).count().unwrap();
    assert!(sc.utilization_samples().is_empty());
}

#[test]
fn mba_through_context_throttles_streaming() {
    // A deliberately bandwidth-hungry pattern: wide sequential collect of
    // large partitions on the slowest tier.
    let run = |pct: u8| {
        let sc = SparkContext::new(SparkConf::bound_to_tier(TierId::NVM_FAR)).unwrap();
        sc.set_mba_level(TierId::NVM_FAR, pct);
        sc.parallelize((0u64..400_000).collect::<Vec<_>>(), 40)
            .collect()
            .unwrap();
        sc.elapsed().as_secs_f64()
    };
    let full = run(100);
    let throttled = run(10);
    assert!(
        throttled >= full,
        "throttling can only slow things down ({throttled} vs {full})"
    );
}

#[test]
fn events_are_internally_consistent() {
    let sc = nvm_ctx();
    sc.parallelize((0u64..5_000).map(|i| (i % 9, i)).collect::<Vec<_>>(), 8)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let report = sc.finish();
    let ev = &report.events;
    // The event vector mirrors the metrics struct.
    assert_eq!(ev.get("tasks").unwrap() as u64, report.metrics.tasks);
    assert_eq!(ev.get("jobs").unwrap() as u64, report.metrics.jobs);
    assert_eq!(
        ev.get("shuffle_write_bytes").unwrap() as u64,
        report.metrics.totals.shuffle_write_bytes
    );
    // Counter-derived events match the telemetry snapshot.
    let reads: u64 = TierId::all()
        .iter()
        .map(|&t| report.telemetry.counters.tier(t).reads)
        .sum();
    assert_eq!(ev.get("mem_reads").unwrap() as u64, reads);
    // Shuffle read equals shuffle write for a completed exchange.
    assert_eq!(
        report.metrics.totals.shuffle_read_bytes,
        report.metrics.totals.shuffle_write_bytes
    );
}

#[test]
fn counter_sampling_conserves_and_is_monotone() {
    let sc = nvm_ctx();
    sc.enable_counter_sampling(SimTime::from_us(100));
    run_shuffle_job(&sc);
    let report = sc.finish();
    let series = &report.telemetry.counter_series;
    assert!(
        series.len() > 10,
        "expected a timeline, got {}",
        series.len()
    );
    // Conservation: the series ends exactly on the cumulative totals.
    let last = series.last().unwrap();
    assert_eq!(last.counters, report.telemetry.counters);
    // Monotone in time and in every cumulative signal.
    let idx = TierId::NVM_NEAR.index();
    for w in series.windows(2) {
        assert!(w[0].at < w[1].at);
        for t in TierId::all() {
            let (a, b) = (w[0].counters.tier(t), w[1].counters.tier(t));
            assert!(b.reads >= a.reads && b.writes >= a.writes);
        }
        assert!(w[1].bytes_served[idx] >= w[0].bytes_served[idx]);
        assert!(w[1].dynamic_energy_j[idx] >= w[0].dynamic_energy_j[idx]);
    }
    // The bound tier actually moved; per-interval deltas telescope.
    assert!(last.counters.tier(TierId::NVM_NEAR).total() > 0);
    let delta_sum: u64 = series.iter().map(|s| s.delta.total()).sum();
    assert_eq!(delta_sum, last.counters.total());
}

#[test]
fn counter_sampling_is_deterministic() {
    let run = || {
        let sc = nvm_ctx();
        sc.enable_counter_sampling(SimTime::from_us(250));
        run_shuffle_job(&sc);
        sc.finish().telemetry.counter_series
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same scenario+seed must give an identical series");
}

#[test]
fn event_log_captures_lifecycle() {
    let sc = nvm_ctx();
    let log = sc.enable_event_log();
    run_shuffle_job(&sc);
    let report = sc.finish();
    let events = log.events();
    assert!(!events.is_empty());
    assert_eq!(log.dropped(), 0);
    // Timestamps never go backwards.
    for w in events.windows(2) {
        assert!(w[0].at <= w[1].at);
    }
    // First and last events bracket the job.
    assert!(matches!(
        events.first().unwrap().event,
        Event::JobSubmitted { .. }
    ));
    assert!(matches!(
        events.last().unwrap().event,
        Event::JobCompleted { .. }
    ));
    // Lifecycle counts match the metrics exactly.
    let count = |f: fn(&Event) -> bool| events.iter().filter(|e| f(&e.event)).count() as u64;
    assert_eq!(
        count(|e| matches!(e, Event::TaskStarted { .. })),
        report.metrics.tasks
    );
    assert_eq!(
        count(|e| matches!(e, Event::TaskFinished { .. })),
        report.metrics.tasks
    );
    assert_eq!(
        count(|e| matches!(e, Event::StageSubmitted { .. })),
        report.metrics.stages
    );
    assert_eq!(
        count(|e| matches!(e, Event::StageCompleted { .. })),
        report.metrics.stages
    );
    // The shuffle produced write and fetch events, and their byte totals
    // agree with the aggregated task metrics.
    let shuffle_written: u64 = events
        .iter()
        .filter_map(|e| match e.event {
            Event::ShuffleWrite { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert_eq!(shuffle_written, report.metrics.totals.shuffle_write_bytes);
    assert!(shuffle_written > 0);
}

#[test]
fn event_log_round_trips_through_jsonl() {
    let sc = nvm_ctx();
    let log = sc.enable_event_log();
    sc.add_event_sink(Box::new(JsonlSink::new(Vec::new())));
    sc.set_mba_level(TierId::NVM_NEAR, 70);
    run_shuffle_job(&sc);
    sc.finish();
    let events = log.events();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::MbaThrottle { percent: 70, .. })));
    let back = parse_jsonl(&to_jsonl(&events)).unwrap();
    assert_eq!(back, events);
}

#[test]
fn stage_rollups_sum_to_app_totals() {
    let sc = nvm_ctx();
    run_shuffle_job(&sc);
    let report = sc.finish();
    let rollups = &report.stage_rollups;
    assert_eq!(rollups.len() as u64, report.metrics.stages);
    let tasks: u64 = rollups.iter().map(|r| r.tasks).sum();
    assert_eq!(tasks, report.metrics.tasks);
    let mut agg = sparklite::metrics::TaskMetrics::default();
    for r in rollups {
        assert!(r.completed >= r.submitted);
        agg.merge(&r.metrics);
    }
    assert_eq!(agg, report.metrics.totals);
}

#[test]
fn rollups_and_profile_conserve_with_cached_rdd_skipped_stages() {
    // Cached-RDD lineage pruning must not break either rollup accounting or
    // critical-path conservation: the second action's job skips the shuffle
    // map stage (the cache already holds the shuffle output), so its result
    // stage is runnable at job submission and the path walk terminates on
    // an `activated_by: None` record.
    let sc = nvm_ctx();
    let counts = sc
        .parallelize((0u64..20_000).map(|i| (i % 40, i)).collect::<Vec<_>>(), 8)
        .reduce_by_key(|a, b| a + b)
        .cache();
    counts.count().unwrap(); // materialize cache (job 0: two stages)
    counts.count().unwrap(); // job 1: map stage skipped
    let report = sc.finish();

    // Rollups still cover exactly the executed stages and all tasks.
    assert_eq!(report.stage_rollups.len() as u64, report.metrics.stages);
    let rollup_tasks: u64 = report.stage_rollups.iter().map(|r| r.tasks).sum();
    assert_eq!(rollup_tasks, report.metrics.tasks);
    // Job 1 executed fewer stages than job 0.
    let stages_in = |job: u64| report.stage_rollups.iter().filter(|r| r.job == job).count();
    assert!(
        stages_in(1) < stages_in(0),
        "job 1 must skip the cached shuffle stage ({} vs {})",
        stages_in(1),
        stages_in(0)
    );

    // The profile still conserves across both jobs, and its log has no
    // record for the skipped stage.
    assert!(report.profile.conserves());
    let log = sc.profile_log();
    assert_eq!(log.stages.len() as u64, report.metrics.stages);
    assert_eq!(log.jobs.len(), 2);
    let job1: Vec<_> = log.stages.iter().filter(|s| s.job == 1).collect();
    assert_eq!(job1.len(), 1, "job 1 must run only the result stage");
    assert!(
        job1[0].activated_by.is_none(),
        "a skipped-parent stage is runnable at job submission"
    );
}

#[test]
fn run_profile_conserves_and_walks_real_tasks() {
    let sc = nvm_ctx();
    run_shuffle_job(&sc);
    let report = sc.finish();
    let profile = &report.profile;
    assert!(profile.conserves());
    assert_eq!(profile.elapsed, report.elapsed);
    // Every critical task is a real recorded task with the stated span.
    let log = sc.profile_log();
    let critical = profile.critical_tasks();
    assert!(!critical.is_empty());
    for (job, task_id) in critical {
        assert!(
            log.tasks
                .iter()
                .any(|t| t.job == job && t.task_id == task_id),
            "critical task ({job},{task_id}) not in the log"
        );
    }
    // Memory stall lands only on the bound tier.
    let idx = TierId::NVM_NEAR.index();
    for (i, r) in profile.attribution.mem_read.iter().enumerate() {
        if i != idx {
            assert!(r.is_zero() && profile.attribution.mem_write[i].is_zero());
        }
    }
    assert!(profile.attribution.mem_read[idx] + profile.attribution.mem_write[idx] > SimTime::ZERO);
}

#[test]
fn task_finished_events_carry_conserving_breakdowns() {
    let sc = nvm_ctx();
    let log = sc.enable_event_log();
    run_shuffle_job(&sc);
    sc.finish();
    let mut finished = 0;
    for e in log.events() {
        if let Event::TaskFinished { breakdown, .. } = e.event {
            finished += 1;
            assert!(breakdown.total() > SimTime::ZERO);
            // Traffic is bound to Tier 2; no stall elsewhere.
            for i in 0..4 {
                if i != TierId::NVM_NEAR.index() {
                    assert!(breakdown.mem_read[i].is_zero());
                    assert!(breakdown.mem_write[i].is_zero());
                }
            }
        }
    }
    assert!(finished > 0);
}

#[test]
fn trace_includes_counter_tracks_and_stage_flows() {
    let sc = nvm_ctx();
    sc.enable_tracing();
    sc.enable_counter_sampling(SimTime::from_us(100));
    sc.enable_event_log();
    run_shuffle_job(&sc);
    sc.finish();
    // Rendered after finish() so the final conservation sample is present.
    let json = sc.chrome_trace().unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = v["traceEvents"].as_array().unwrap();
    assert!(events.iter().any(|e| e["ph"] == "X" && e["cat"] == "task"));
    assert!(events.iter().any(|e| e["ph"] == "X" && e["cat"] == "stage"));
    assert!(events.iter().any(|e| e["ph"] == "s"));
    let idx = TierId::NVM_NEAR.index();
    let track = format!("tier{idx} media traffic");
    assert!(events
        .iter()
        .any(|e| e["ph"] == "C" && e["name"] == track.as_str()));
    // Only the bound tier saw traffic, so no other tier has a track.
    assert!(!events
        .iter()
        .any(|e| e["ph"] == "C" && e["name"] == "tier0 media traffic"));
}

#[test]
fn driver_work_advances_clock_without_tasks() {
    let sc = nvm_ctx();
    let before = sc.elapsed();
    sc.run_driver_work(5e6); // 5 ms
    let after = sc.elapsed();
    assert_eq!(after - before, SimTime::from_ms(5));
    assert_eq!(sc.metrics().tasks, 0);
    // Negative work is clamped in the metrics but must not panic.
    sc.run_driver_work(-1.0);
    assert_eq!(sc.elapsed(), after);
}
