//! End-to-end engine tests: data-plane correctness and time-plane sanity.

use memtier_memsim::TierId;
use sparklite::{OpCost, SparkConf, SparkContext, StorageLevel};

fn ctx() -> SparkContext {
    SparkContext::new(SparkConf::default()).unwrap()
}

fn ctx_on(tier: TierId) -> SparkContext {
    SparkContext::new(SparkConf::bound_to_tier(tier)).unwrap()
}

#[test]
fn parallelize_collect_roundtrip() {
    let sc = ctx();
    let data: Vec<u64> = (0..1000).collect();
    let rdd = sc.parallelize(data.clone(), 8);
    assert_eq!(rdd.num_partitions(), 8);
    assert_eq!(rdd.collect().unwrap(), data);
    assert_eq!(rdd.count().unwrap(), 1000);
}

#[test]
fn parallelize_uneven_split_loses_nothing() {
    let sc = ctx();
    let data: Vec<u64> = (0..1003).collect();
    let rdd = sc.parallelize(data.clone(), 7);
    assert_eq!(rdd.collect().unwrap(), data);
}

#[test]
fn map_filter_flat_map() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..100).collect(), 4);
    let out = rdd
        .map(|x| x * 2)
        .filter(|x| x % 4 == 0)
        .flat_map(|x| vec![*x, *x + 1])
        .collect()
        .unwrap();
    let expected: Vec<u64> = (0u64..100)
        .map(|x| x * 2)
        .filter(|x| x % 4 == 0)
        .flat_map(|x| vec![x, x + 1])
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn reduce_and_fold() {
    let sc = ctx();
    let rdd = sc.parallelize((1u64..=100).collect(), 5);
    assert_eq!(rdd.reduce(|a, b| a + b).unwrap(), 5050);
    assert_eq!(rdd.fold(0, |a, b| a + b).unwrap(), 5050);
    let empty = sc.parallelize(Vec::<u64>::new(), 3);
    assert!(empty.reduce(|a, b| a + b).is_err());
    assert_eq!(empty.count().unwrap(), 0);
}

#[test]
fn reduce_by_key_aggregates() {
    let sc = ctx();
    let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, 1)).collect();
    let mut counts = sc
        .parallelize(pairs, 8)
        .reduce_by_key(|a, b| a + b)
        .collect()
        .unwrap();
    counts.sort();
    assert_eq!(counts.len(), 10);
    assert!(counts.iter().all(|&(_, c)| c == 100));
}

#[test]
fn group_by_key_collects_all_values() {
    let sc = ctx();
    let pairs: Vec<(u32, u32)> = vec![(1, 10), (2, 20), (1, 11), (2, 21), (1, 12)];
    let grouped = sc.parallelize(pairs, 3).group_by_key().collect().unwrap();
    let mut by_key: std::collections::HashMap<u32, Vec<u32>> = grouped.into_iter().collect();
    let mut ones = by_key.remove(&1).unwrap();
    ones.sort();
    assert_eq!(ones, vec![10, 11, 12]);
    let mut twos = by_key.remove(&2).unwrap();
    twos.sort();
    assert_eq!(twos, vec![20, 21]);
    assert!(by_key.is_empty());
}

#[test]
fn join_matches_keys() {
    let sc = ctx();
    let left = sc.parallelize(vec![(1u32, "a"), (2, "b"), (3, "c")], 2);
    let right = sc.parallelize(vec![(1u32, 10u64), (3, 30), (3, 31), (4, 40)], 2);
    let mut joined = left.join(&right, 4).collect().unwrap();
    joined.sort();
    assert_eq!(joined, vec![(1, ("a", 10)), (3, ("c", 30)), (3, ("c", 31))]);
}

#[test]
fn cogroup_keeps_unmatched_keys() {
    let sc = ctx();
    let left = sc.parallelize(vec![(1u32, 1u32)], 1);
    let right = sc.parallelize(vec![(2u32, 2u32)], 1);
    let mut out = left.cogroup(&right, 2).collect().unwrap();
    out.sort_by_key(|(k, _)| *k);
    assert_eq!(out.len(), 2);
    assert_eq!(out[0], (1, (vec![1], vec![])));
    assert_eq!(out[1], (2, (vec![], vec![2])));
}

#[test]
fn sort_by_key_is_totally_ordered() {
    let sc = ctx();
    // Deterministic pseudo-random keys.
    let pairs: Vec<(u64, u64)> = (0..5000u64)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) % 10_000, i))
        .collect();
    let sorted = sc
        .parallelize(pairs.clone(), 8)
        .sort_by_key(6)
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(sorted.len(), pairs.len());
    for w in sorted.windows(2) {
        assert!(w[0].0 <= w[1].0, "output must be globally sorted");
    }
    // Same multiset of keys.
    let mut expect: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    expect.sort();
    let got: Vec<u64> = sorted.iter().map(|&(k, _)| k).collect();
    assert_eq!(got, expect);
}

#[test]
fn distinct_removes_duplicates() {
    let sc = ctx();
    let rdd = sc.parallelize(vec![1u32, 2, 2, 3, 3, 3, 4], 3);
    let mut out = rdd.distinct().collect().unwrap();
    out.sort();
    assert_eq!(out, vec![1, 2, 3, 4]);
}

#[test]
fn union_concatenates() {
    let sc = ctx();
    let a = sc.parallelize(vec![1u32, 2], 2);
    let b = sc.parallelize(vec![3u32, 4, 5], 2);
    let u = a.union(&b);
    assert_eq!(u.num_partitions(), 4);
    assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn sample_is_deterministic_and_proportional() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..10_000).collect(), 8);
    let s1 = rdd.sample(0.1, 42).collect().unwrap();
    let s2 = rdd.sample(0.1, 42).collect().unwrap();
    assert_eq!(s1, s2, "same seed must give the same sample");
    let s3 = rdd.sample(0.1, 43).collect().unwrap();
    assert_ne!(s1, s3, "different seed should differ");
    assert!((800..1200).contains(&s1.len()), "got {}", s1.len());
}

#[test]
fn take_and_first() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..100).collect(), 4);
    assert_eq!(rdd.take(3).unwrap(), vec![0, 1, 2]);
    assert_eq!(rdd.first().unwrap(), 0);
    assert!(sc.parallelize(Vec::<u64>::new(), 1).first().is_err());
}

#[test]
fn count_by_key() {
    let sc = ctx();
    let pairs: Vec<(String, u32)> = vec![
        ("a".into(), 1),
        ("b".into(), 1),
        ("a".into(), 1),
        ("a".into(), 1),
    ];
    let counts = sc.parallelize(pairs, 2).count_by_key().unwrap();
    assert_eq!(counts["a"], 3);
    assert_eq!(counts["b"], 1);
}

#[test]
fn text_file_line_boundary_semantics() {
    let sc = ctx();
    let client = sc.dfs();
    // Lines of varying length; 64-byte blocks cut lines mid-way.
    let lines: Vec<String> = (0..200)
        .map(|i| format!("line-{i}-{}", "x".repeat(i % 23)))
        .collect();
    let content = lines.join("\n") + "\n";
    client
        .write_file("/input/text", content.as_bytes(), 64, 1)
        .unwrap();
    let rdd = sc.text_file("/input/text").unwrap();
    assert!(rdd.num_partitions() > 1);
    let read = rdd.collect().unwrap();
    assert_eq!(
        read, lines,
        "no line may be lost or duplicated at block cuts"
    );
}

#[test]
fn save_as_text_file_roundtrip() {
    let sc = ctx();
    let lines: Vec<String> = (0..100).map(|i| format!("row {i}")).collect();
    let rdd = sc.parallelize(lines.clone(), 4);
    rdd.save_as_text_file("/out/result").unwrap();
    let client = sc.dfs();
    let files = client.list("/out/result/");
    assert_eq!(files.len(), 4);
    let mut all = Vec::new();
    for f in files {
        let bytes = client.read_file(&f.path).unwrap();
        all.extend(
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(str::to_string),
        );
    }
    assert_eq!(all, lines);
}

#[test]
fn generator_source_is_lazy_and_deterministic() {
    let sc = ctx();
    let rdd = sc.generate(
        4,
        |part| (0..10u64).map(|i| part as u64 * 100 + i).collect(),
        OpCost::cpu(20.0),
    );
    let out = rdd.collect().unwrap();
    assert_eq!(out.len(), 40);
    assert_eq!(out[0], 0);
    assert_eq!(out[39], 309);
}

#[test]
fn caching_skips_recompute_and_hits_cache() {
    let sc = ctx();
    let rdd = sc
        .parallelize((0u64..10_000).collect(), 8)
        .map(|x| x * 2)
        .cache();
    rdd.count().unwrap();
    let t1 = sc.elapsed();
    rdd.count().unwrap();
    let t2 = sc.elapsed();
    let report_hits = sc.finish().cache.hits;
    assert!(report_hits >= 8, "second pass must hit the cache");
    // The cached pass must be cheaper than the computing pass.
    let first = t1.as_secs_f64();
    let second = t2.as_secs_f64() - first;
    assert!(
        second < first,
        "cached count ({second}) should be faster than cold count ({first})"
    );
}

#[test]
fn unpersist_frees_blocks() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..1000).collect(), 4).cache();
    rdd.count().unwrap();
    assert!(sc.finish().cache.used > 0);
    rdd.unpersist();
    assert_eq!(rdd.storage_level(), StorageLevel::None);
    assert_eq!(sc.finish().cache.used, 0);
}

#[test]
fn shuffle_stages_are_skipped_on_reuse() {
    let sc = ctx();
    let counts = sc
        .parallelize((0u64..1000).map(|i| (i % 7, 1u64)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b);
    counts.count().unwrap();
    let m1 = sc.metrics();
    counts.count().unwrap();
    let m2 = sc.metrics();
    // Second job re-uses the shuffle: only the result stage runs.
    assert_eq!(m2.jobs, m1.jobs + 1);
    assert_eq!(m2.stages, m1.stages + 1, "map stage must be skipped");
}

#[test]
fn fetch_failures_survive_cached_shuffle_reuse() {
    // A fetch failure may only blame a map output that actually ran. Once
    // job 1 completes the shuffle, job 2 plans the map stage as skipped —
    // its tasks never run, so resubmitting one could never complete and
    // would park the failing reduce task forever. Rolls against a cached
    // shuffle must therefore inject nothing, and both jobs must agree.
    use memtier_des::SimTime;
    use sparklite::FaultPlan;
    let plan = FaultPlan::seeded(13)
        .with_fetch_failures(0.9)
        .with_retries(100, SimTime::from_us(10));
    let sc = SparkContext::new(SparkConf::default().with_faults(plan)).unwrap();
    let counts = sc
        .parallelize((0u64..1000).map(|i| (i % 7, 1u64)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b);
    let first = counts.count().unwrap();
    assert!(
        sc.recovery_stats().fetch_failures > 0,
        "a 90% fetch-failure plan must fire in job 1: {:?}",
        sc.recovery_stats()
    );
    let second = counts.count().unwrap();
    assert_eq!(first, second, "the cached-shuffle job must still complete");
}

#[test]
fn elapsed_is_monotone_and_deterministic() {
    let run = || {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..20_000).collect(), 16);
        rdd.map(|x| (x % 100, *x))
            .reduce_by_key(|a, b| a + b)
            .count()
            .unwrap();
        sc.elapsed()
    };
    let t1 = run();
    let t2 = run();
    assert!(t1.as_secs_f64() > 0.0);
    assert_eq!(t1, t2, "identical runs must take identical virtual time");
}

#[test]
fn nvm_tier_is_slower_than_dram() {
    let elapsed_on = |tier| {
        let sc = ctx_on(tier);
        let rdd = sc.parallelize((0u64..50_000).collect(), 16);
        rdd.map(|x| (x % 1000, *x))
            .reduce_by_key(|a, b| a + b)
            .count()
            .unwrap();
        sc.elapsed().as_secs_f64()
    };
    let t0 = elapsed_on(TierId::LOCAL_DRAM);
    let t1 = elapsed_on(TierId::REMOTE_DRAM);
    let t2 = elapsed_on(TierId::NVM_NEAR);
    let t3 = elapsed_on(TierId::NVM_FAR);
    assert!(t0 < t1, "local DRAM must beat remote DRAM ({t0} vs {t1})");
    assert!(t1 < t2, "remote DRAM must beat NVM ({t1} vs {t2})");
    assert!(t2 < t3, "near NVM must beat far NVM ({t2} vs {t3})");
}

#[test]
fn access_counters_land_on_bound_tier() {
    let sc = ctx_on(TierId::NVM_NEAR);
    sc.parallelize((0u64..10_000).collect(), 8)
        .map(|x| x + 1)
        .count()
        .unwrap();
    let snap = sc.counters();
    assert!(snap.tier(TierId::NVM_NEAR).total() > 0);
    assert_eq!(snap.tier(TierId::LOCAL_DRAM).total(), 0);
}

#[test]
fn energy_report_covers_active_tier() {
    let sc = ctx_on(TierId::NVM_NEAR);
    sc.parallelize((0u64..10_000).collect(), 8).count().unwrap();
    let report = sc.finish();
    let e = report.telemetry.energy.tier(TierId::NVM_NEAR);
    assert!(e.dynamic_j > 0.0);
    assert!(e.static_j > 0.0);
}

#[test]
fn more_partitions_than_cores_still_completes() {
    let sc = SparkContext::new(SparkConf::default().with_executors(1, 4)).unwrap();
    let rdd = sc.parallelize((0u64..10_000).collect(), 64);
    assert_eq!(rdd.count().unwrap(), 10_000);
}

#[test]
fn multi_executor_grid_runs_correctly() {
    let sc = SparkContext::new(SparkConf::default().with_executors(8, 5)).unwrap();
    let out = sc
        .parallelize((0u64..5000).map(|i| (i % 13, 1u64)).collect::<Vec<_>>(), 40)
        .reduce_by_key(|a, b| a + b)
        .collect()
        .unwrap();
    assert_eq!(out.len(), 13);
    assert_eq!(out.iter().map(|&(_, c)| c).sum::<u64>(), 5000);
}

#[test]
fn context_mismatch_is_detected() {
    let sc1 = ctx();
    let sc2 = ctx();
    let rdd1 = sc1.parallelize(vec![1u32], 1);
    // Construct an action on rdd1 but drive it from sc2's context via a
    // cloned handle: the public API prevents this by construction, so
    // emulate by checking the error type through the map + count path on a
    // foreign RDD. The handles embedded in RDDs keep this safe; this test
    // pins the invariant that two contexts are independent.
    assert_eq!(rdd1.count().unwrap(), 1);
    assert_eq!(sc2.metrics().jobs, 0);
    assert_eq!(sc1.metrics().jobs, 1);
}

#[test]
fn mba_throttling_leaves_latency_bound_jobs_unchanged() {
    let run = |mba: u8| {
        let sc = ctx_on(TierId::NVM_NEAR);
        sc.set_mba_all(mba);
        sc.parallelize((0u64..30_000).collect(), 16)
            .map(|x| (x % 100, *x))
            .reduce_by_key(|a, b| a + b)
            .count()
            .unwrap();
        sc.elapsed().as_secs_f64()
    };
    let full = run(100);
    let throttled = run(10);
    let rel = (throttled - full).abs() / full;
    assert!(
        rel < 0.05,
        "Fig. 3 shape: latency-bound job must not feel MBA (rel diff {rel})"
    );
}
