//! Property tests: the engine's distributed operators agree with their
//! sequential reference implementations on arbitrary inputs.

use proptest::prelude::*;
use sparklite::shuffle::{HashPartitioner, Partitioner, RangePartitioner};
use sparklite::{SparkConf, SparkContext};
use std::collections::{HashMap, HashSet};

fn ctx(partitions: usize) -> SparkContext {
    SparkContext::new(SparkConf::default().with_parallelism(partitions)).unwrap()
}

proptest! {
    // The engine cases run a full simulation each; keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// reduce_by_key over arbitrary data equals a sequential hash fold.
    #[test]
    fn reduce_by_key_matches_reference(
        data in prop::collection::vec((0u32..40, 0u64..1000), 0..300),
        partitions in 1usize..7,
    ) {
        let sc = ctx(partitions);
        let mut got = sc
            .parallelize(data.clone(), partitions)
            .reduce_by_key(|a, b| a + b)
            .collect()
            .unwrap();
        got.sort();
        let mut expect: HashMap<u32, u64> = HashMap::new();
        for (k, v) in data {
            *expect.entry(k).or_insert(0) += v;
        }
        let mut expect: Vec<(u32, u64)> = expect.into_iter().collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// sort_by_key yields a globally sorted permutation of the input.
    #[test]
    fn sort_by_key_is_sorted_permutation(
        keys in prop::collection::vec(0u64..5_000, 1..400),
        partitions in 1usize..6,
    ) {
        let sc = ctx(partitions);
        let pairs: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let sorted = sc
            .parallelize(pairs, partitions)
            .sort_by_key(partitions)
            .unwrap()
            .collect()
            .unwrap();
        prop_assert_eq!(sorted.len(), keys.len());
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        let mut got: Vec<u64> = sorted.iter().map(|&(k, _)| k).collect();
        let mut expect = keys.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// distinct equals the sequential HashSet.
    #[test]
    fn distinct_matches_reference(data in prop::collection::vec(0u32..50, 0..200)) {
        let sc = ctx(4);
        let mut got = sc.parallelize(data.clone(), 4).distinct().collect().unwrap();
        got.sort();
        let mut expect: Vec<u32> = data.into_iter().collect::<HashSet<_>>().into_iter().collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// join equals the sequential nested-loop join.
    #[test]
    fn join_matches_reference(
        left in prop::collection::vec((0u32..10, 0u32..100), 0..60),
        right in prop::collection::vec((0u32..10, 0u32..100), 0..60),
    ) {
        let sc = ctx(3);
        let l = sc.parallelize(left.clone(), 3);
        let r = sc.parallelize(right.clone(), 3);
        let mut got = l.join(&r, 4).collect().unwrap();
        got.sort();
        let mut expect = Vec::new();
        for &(k, v) in &left {
            for &(k2, w) in &right {
                if k == k2 {
                    expect.push((k, (v, w)));
                }
            }
        }
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Virtual time is identical across repeated identical runs and
    /// strictly increases when more work is added.
    #[test]
    fn virtual_time_determinism_and_monotonicity(n in 100u64..3_000) {
        let run = |count: u64| {
            let sc = ctx(4);
            sc.parallelize((0..count).collect::<Vec<u64>>(), 4)
                .map(|x| (x % 17, *x))
                .reduce_by_key(|a, b| a + b)
                .count()
                .unwrap();
            sc.elapsed()
        };
        prop_assert_eq!(run(n), run(n));
        prop_assert!(run(n * 2) > run(n));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hash partitioning is total, in-range, and deterministic.
    #[test]
    fn hash_partitioner_in_range(key in any::<u64>(), partitions in 1usize..64) {
        let p = HashPartitioner::new(partitions);
        let a = Partitioner::<u64>::partition(&p, &key);
        prop_assert!(a < partitions);
        prop_assert_eq!(a, Partitioner::<u64>::partition(&p, &key));
    }

    /// Range partitioning respects ordering: partition ids are monotone in
    /// the key.
    #[test]
    fn range_partitioner_monotone(
        mut sample in prop::collection::vec(0u64..10_000, 0..500),
        partitions in 1usize..16,
        a in 0u64..10_000,
        b in 0u64..10_000,
    ) {
        sample.sort_unstable();
        let p = RangePartitioner::from_sample(sample, partitions);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(p.partition(&lo) <= p.partition(&hi));
        prop_assert!(Partitioner::<u64>::partition(&p, &a) < Partitioner::<u64>::num_partitions(&p));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any executor grid computes the same answer, and virtual time is
    /// reproducible per grid.
    #[test]
    fn executor_grids_agree_on_results(
        executors in 1usize..5,
        cores in 1usize..12,
        n in 100u64..2000,
    ) {
        let run = || {
            let sc = SparkContext::new(
                SparkConf::default().with_executors(executors, cores),
            )
            .unwrap();
            let mut out = sc
                .parallelize((0..n).map(|i| (i % 13, i)).collect::<Vec<_>>(), 8)
                .reduce_by_key(|a, b| a + b)
                .collect()
                .unwrap();
            out.sort();
            (out, sc.elapsed())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ta, tb);
        // Reference answer is grid-independent.
        let sc = SparkContext::new(SparkConf::default()).unwrap();
        let mut reference = sc
            .parallelize((0..n).map(|i| (i % 13, i)).collect::<Vec<_>>(), 8)
            .reduce_by_key(|x, y| x + y)
            .collect()
            .unwrap();
        reference.sort();
        prop_assert_eq!(a, reference);
    }
}
