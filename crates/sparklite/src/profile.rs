//! Critical-path profiling and virtual-time attribution.
//!
//! The telemetry layer (events, counters, rollups) answers *what happened*;
//! this module answers *where the time went and what would change it*. The
//! scheduler decomposes every task's virtual-time span into named
//! components ([`TaskBreakdown`]: compute, shuffle-fetch processing,
//! per-tier memory stall split read/write) and records the DAG edges that
//! gated stage activation ([`ProfileLog`]). [`build_profile`] walks those
//! edges backwards from each job's last-finishing task to extract the
//! **critical path** — the single chain of queue delays, task spans and
//! driver gaps whose lengths telescope to exactly the end-to-end virtual
//! runtime — and rolls its components into a [`RunProfile`].
//!
//! The central invariant is **conservation**: the components of
//! [`RunProfile::attribution`] sum to [`RunProfile::elapsed`] in integer
//! picoseconds, with no "other" bucket. Every per-task breakdown conserves
//! its span by construction (rounding remainders are absorbed into the
//! largest memory component), queue and driver segments are measured as
//! exact gaps between recorded instants, and the path segments abut: a
//! stage submitted by a parent task's completion starts exactly at that
//! task's end.
//!
//! On top of the attribution sits an analytical **what-if engine**
//! ([`reprice`]): scale each per-tier read/write stall component by the
//! ratio of perturbed to baseline effective access latency and re-sum the
//! path. This is the paper's sensitivity methodology in closed form — e.g.
//! halving the DCPM write latency (2× write drain rate) removes half of the
//! `tier2_write` component from the predicted runtime, while an MBA
//! throttle leaves every latency unchanged and therefore predicts no
//! first-order slowdown for latency-bound workloads (Takeaway 4).

use memtier_des::SimTime;
use memtier_memsim::{HotnessReport, MemSimConfig, TierId, NUM_TIERS};
use serde::{Deserialize, Serialize};

/// One task's virtual-time span decomposed into named components. All
/// fields are exact integer picoseconds and sum to the task's span
/// (`end − started`) — asserted wherever breakdowns are produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskBreakdown {
    /// Modeled CPU time net of shuffle-fetch processing (includes dispatch
    /// overhead and JVM-contention inflation).
    pub compute: SimTime,
    /// CPU charged to fetching and deserializing shuffle input (scan,
    /// per-bucket overheads, disk terms in MapReduce mode), inflated by the
    /// same contention factor as the rest of the CPU phase.
    pub shuffle_fetch: SimTime,
    /// Memory stall attributed to read accesses, per tier. Includes the
    /// task's share of bandwidth-contention stretch.
    pub mem_read: [SimTime; NUM_TIERS],
    /// Memory stall attributed to write accesses, per tier.
    pub mem_write: [SimTime; NUM_TIERS],
    /// Network time: cross-node transfer stall (shuffle fetch bytes on the
    /// wire, broadcast, DFS traffic), including the task's share of link
    /// contention stretch. Zero — and skipped in serialized form, keeping
    /// loopback artifacts byte-identical — without a topology.
    #[serde(default, skip_serializing_if = "SimTime::is_zero")]
    pub net: SimTime,
}

impl TaskBreakdown {
    /// Total memory-stall time across tiers and directions.
    pub fn mem_total(&self) -> SimTime {
        self.mem_read.iter().copied().sum::<SimTime>() + self.mem_write.iter().copied().sum()
    }

    /// Sum of every component — equals the task's span by construction.
    pub fn total(&self) -> SimTime {
        self.compute + self.shuffle_fetch + self.mem_total() + self.net
    }
}

/// One executed task as the profiler saw it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task id (unique within its job).
    pub task_id: u64,
    /// Owning job.
    pub job: u64,
    /// Owning stage.
    pub stage: u32,
    /// Partition computed.
    pub partition: usize,
    /// Dispatch instant.
    pub started: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// The span's component decomposition.
    pub breakdown: TaskBreakdown,
}

/// One cache-block eviction as the profiler saw it. Recorded
/// unconditionally at the dispatch that displaced the block (like task and
/// stage records), so the doctor's eviction-churn series exists inside the
/// byte-identity domain — unlike the event bus's `BlockEvicted` mirror,
/// which is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionRecord {
    /// Eviction instant.
    pub at: SimTime,
    /// RDD id of the evicted block.
    pub rdd: u32,
    /// Partition index of the evicted block.
    pub partition: usize,
    /// Block size in bytes.
    pub bytes: u64,
    /// True when the block was spilled to simulated disk rather than
    /// dropped outright.
    pub spilled: bool,
}

/// One executed stage's activation edge. Skipped stages never activate and
/// have no record — exactly why rollup/path conservation still holds when
/// cached RDDs prune lineage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Owning job.
    pub job: u64,
    /// Stage id within the job's plan.
    pub stage: u32,
    /// Instant the stage became runnable.
    pub submitted: SimTime,
    /// The task whose completion activated this stage (`None`: runnable at
    /// job submission). Its end instant equals `submitted` exactly — the
    /// edge the critical-path walk follows.
    pub activated_by: Option<u64>,
}

/// One job's submit/complete window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job sequence number within the context.
    pub job: u64,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant (the last task's end).
    pub completed: SimTime,
}

/// Everything the scheduler records for the profiler, across all jobs of a
/// context. Collected unconditionally, like stage rollups: the cost is a
/// few copies per task, and always-on collection keeps instrumented and
/// plain runs bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileLog {
    /// Every executed task, in completion order.
    pub tasks: Vec<TaskRecord>,
    /// Every executed stage's activation record, in activation order.
    pub stages: Vec<StageRecord>,
    /// Every job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Every cache-block eviction, in occurrence order (`#[serde(default)]`
    /// so logs serialized before this field existed still load).
    #[serde(default)]
    pub evictions: Vec<EvictionRecord>,
}

/// What occupies one segment of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SegmentKind {
    /// A task span on the path.
    Task,
    /// Scheduler queue delay: the gap between a path task's stage becoming
    /// runnable and the task's dispatch.
    Queue,
    /// Driver-side time outside any job (setup, inter-job work, teardown).
    Driver,
}

/// One contiguous segment of the critical path. Segments abut: each starts
/// where the previous one ended, and together they tile `[0, elapsed]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    /// What occupies the segment.
    pub kind: SegmentKind,
    /// Segment start instant.
    pub start: SimTime,
    /// Segment end instant.
    pub end: SimTime,
    /// Owning job (`None` for driver segments).
    pub job: Option<u64>,
    /// The task on the path (its span for `Task`, the task whose dispatch
    /// ends the gap for `Queue`; `None` for driver segments).
    pub task_id: Option<u64>,
}

impl PathSegment {
    /// Segment length.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// The critical-path component rollup. Components are disjoint and sum to
/// the run's elapsed virtual time (see [`Attribution::total`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// Compute time of path tasks (CPU net of shuffle fetch).
    pub compute: SimTime,
    /// Shuffle-fetch processing time of path tasks.
    pub shuffle_fetch: SimTime,
    /// Scheduler queue delay ahead of path tasks.
    pub sched_queue: SimTime,
    /// Driver-side time outside any job.
    pub driver: SimTime,
    /// Per-tier read-stall time of path tasks.
    pub mem_read: [SimTime; NUM_TIERS],
    /// Per-tier write-stall time of path tasks.
    pub mem_write: [SimTime; NUM_TIERS],
    /// Network transfer stall of path tasks (zero, and skipped when
    /// serialized, without a topology — loopback artifacts are unchanged).
    #[serde(default, skip_serializing_if = "SimTime::is_zero")]
    pub net: SimTime,
}

impl Attribution {
    /// Sum of every component. Equals the run's elapsed time when the
    /// profile conserves.
    pub fn total(&self) -> SimTime {
        self.compute
            + self.shuffle_fetch
            + self.sched_queue
            + self.driver
            + self.mem_read.iter().copied().sum::<SimTime>()
            + self.mem_write.iter().copied().sum::<SimTime>()
            + self.net
    }

    /// Total memory-stall time across tiers and directions.
    pub fn mem_total(&self) -> SimTime {
        self.mem_read.iter().copied().sum::<SimTime>() + self.mem_write.iter().copied().sum()
    }

    /// The components as `(name, seconds)` pairs in a fixed order — the
    /// attribution vector of the `BENCH_profile.json` perf baseline and the
    /// feature set for component↔runtime correlations.
    pub fn named_seconds(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("compute".to_string(), self.compute.as_secs_f64()),
            (
                "shuffle_fetch".to_string(),
                self.shuffle_fetch.as_secs_f64(),
            ),
            ("sched_queue".to_string(), self.sched_queue.as_secs_f64()),
            ("driver".to_string(), self.driver.as_secs_f64()),
        ];
        for i in 0..NUM_TIERS {
            out.push((format!("tier{i}_read"), self.mem_read[i].as_secs_f64()));
            out.push((format!("tier{i}_write"), self.mem_write[i].as_secs_f64()));
        }
        // Appended only when present so loopback baselines (and their
        // artifact diffs) keep the pre-network component vector.
        if !self.net.is_zero() {
            out.push(("net".to_string(), self.net.as_secs_f64()));
        }
        out
    }

    /// The components as `(name, time)` pairs in the same fixed order as
    /// [`named_seconds`](Self::named_seconds), but in exact integer
    /// picoseconds — the explain subsystem diffs these without ever
    /// touching floating point.
    pub fn named_ps(&self) -> Vec<(String, SimTime)> {
        let mut out = vec![
            ("compute".to_string(), self.compute),
            ("shuffle_fetch".to_string(), self.shuffle_fetch),
            ("sched_queue".to_string(), self.sched_queue),
            ("driver".to_string(), self.driver),
        ];
        for i in 0..NUM_TIERS {
            out.push((format!("tier{i}_read"), self.mem_read[i]));
            out.push((format!("tier{i}_write"), self.mem_write[i]));
        }
        if !self.net.is_zero() {
            out.push(("net".to_string(), self.net));
        }
        out
    }

    pub(crate) fn add_breakdown(&mut self, b: &TaskBreakdown) {
        self.compute += b.compute;
        self.shuffle_fetch += b.shuffle_fetch;
        for i in 0..NUM_TIERS {
            self.mem_read[i] += b.mem_read[i];
            self.mem_write[i] += b.mem_write[i];
        }
        self.net += b.net;
    }
}

/// The profiler's product: the critical path of a run and its conserved
/// time attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunProfile {
    /// End-to-end virtual runtime the attribution accounts for.
    pub elapsed: SimTime,
    /// Component rollup over the critical path.
    pub attribution: Attribution,
    /// The path itself, chronological and abutting.
    pub segments: Vec<PathSegment>,
}

impl RunProfile {
    /// `(job, task_id)` of every task on the critical path, chronological.
    pub fn critical_tasks(&self) -> Vec<(u64, u64)> {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Task)
            .filter_map(|s| Some((s.job?, s.task_id?)))
            .collect()
    }

    /// True iff the attribution conserves: components sum to `elapsed`
    /// exactly (integer picoseconds).
    pub fn conserves(&self) -> bool {
        self.attribution.total() == self.elapsed
    }
}

/// Extract the critical path from a [`ProfileLog`] and roll it up into a
/// [`RunProfile`] accounting for `elapsed` (the context's final virtual
/// time — driver tail time after the last job is attributed to `driver`).
///
/// The walk runs backwards per job: start at the task with the latest end
/// (ties broken by highest task id, deterministically), emit its span and
/// its queue gap, then follow the stage's `activated_by` edge to the parent
/// task whose completion made the stage runnable — which ended exactly when
/// the stage was submitted — until reaching a stage that was runnable at
/// job submission. Gaps between jobs (and before the first / after the
/// last) are driver segments.
pub fn build_profile(log: &ProfileLog, elapsed: SimTime) -> RunProfile {
    let mut attribution = Attribution::default();
    let mut segments: Vec<PathSegment> = Vec::new();
    let mut cursor = SimTime::ZERO;

    let mut jobs: Vec<&JobRecord> = log.jobs.iter().collect();
    jobs.sort_by_key(|j| (j.submitted, j.job));
    for jr in jobs {
        if jr.submitted > cursor {
            attribution.driver += jr.submitted - cursor;
            segments.push(PathSegment {
                kind: SegmentKind::Driver,
                start: cursor,
                end: jr.submitted,
                job: None,
                task_id: None,
            });
        }
        // Backward walk over activation edges.
        let mut chain: Vec<&TaskRecord> = Vec::new();
        let mut cur = log
            .tasks
            .iter()
            .filter(|t| t.job == jr.job)
            .max_by_key(|t| (t.end, t.task_id));
        while let Some(t) = cur {
            chain.push(t);
            let stage = log
                .stages
                .iter()
                .find(|s| s.job == t.job && s.stage == t.stage)
                .expect("executed task without a stage activation record");
            cur = stage
                .activated_by
                .and_then(|id| log.tasks.iter().find(|p| p.job == t.job && p.task_id == id));
        }
        chain.reverse();
        for t in chain {
            let stage = log
                .stages
                .iter()
                .find(|s| s.job == t.job && s.stage == t.stage)
                .expect("stage record checked above");
            if t.started > stage.submitted {
                attribution.sched_queue += t.started - stage.submitted;
                segments.push(PathSegment {
                    kind: SegmentKind::Queue,
                    start: stage.submitted,
                    end: t.started,
                    job: Some(t.job),
                    task_id: Some(t.task_id),
                });
            }
            attribution.add_breakdown(&t.breakdown);
            segments.push(PathSegment {
                kind: SegmentKind::Task,
                start: t.started,
                end: t.end,
                job: Some(t.job),
                task_id: Some(t.task_id),
            });
        }
        cursor = jr.completed;
    }
    if elapsed > cursor {
        attribution.driver += elapsed - cursor;
        segments.push(PathSegment {
            kind: SegmentKind::Driver,
            start: cursor,
            end: elapsed,
            job: None,
            task_id: None,
        });
    }
    RunProfile {
        elapsed,
        attribution,
        segments,
    }
}

/// Per-tier latency scale factors for analytical repricing: the ratio of
/// perturbed to baseline effective access cost, per direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Perturbed/baseline effective read latency per tier.
    pub read_scale: [f64; NUM_TIERS],
    /// Perturbed/baseline effective write latency per tier.
    pub write_scale: [f64; NUM_TIERS],
    /// Perturbed/baseline network transfer time (1 = unchanged; 0 = "every
    /// transfer becomes node-local", the doctor's cross-rack recovery
    /// estimate). Skipped in serialized form at the identity so pre-network
    /// payloads round-trip unchanged.
    #[serde(default = "scale_one", skip_serializing_if = "is_scale_one")]
    pub net_scale: f64,
}

fn scale_one() -> f64 {
    1.0
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_scale_one(s: &f64) -> bool {
    *s == 1.0
}

impl WhatIf {
    /// The identity perturbation (predicts the baseline unchanged). Also
    /// what any pure-bandwidth knob (an MBA throttle level) maps to: MBA
    /// leaves access latencies untouched, so the engine predicts no
    /// first-order change for latency-bound workloads — the analytic form
    /// of the paper's Takeaway 4.
    pub fn identity() -> WhatIf {
        WhatIf {
            read_scale: [1.0; NUM_TIERS],
            write_scale: [1.0; NUM_TIERS],
            net_scale: 1.0,
        }
    }

    /// Scale factors between two memory-system configurations (ablation
    /// switches applied). Tiers whose baseline cost is zero keep scale 1.
    pub fn from_configs(base: &MemSimConfig, perturbed: &MemSimConfig) -> WhatIf {
        let mut w = WhatIf::identity();
        for t in TierId::all() {
            let b = base.effective_tier_params(t);
            let p = perturbed.effective_tier_params(t);
            if b.effective_read_ns() > 0.0 {
                w.read_scale[t.index()] = p.effective_read_ns() / b.effective_read_ns();
            }
            if b.effective_write_ns() > 0.0 {
                w.write_scale[t.index()] = p.effective_write_ns() / b.effective_write_ns();
            }
        }
        w
    }
}

/// Build the [`WhatIf`] corresponding to promoting a hotness report's `k`
/// stall-hottest objects into Tier 0 (local DRAM) — the analytic form of
/// "what would pinning the hot working set in local DRAM buy", feeding the
/// object-level attribution back into the critical-path repricing engine.
///
/// Each victim tier's read/write stall scale drops by the promoted
/// objects' share of that tier's nominal stall; Tier 0's scales grow by
/// the stall the promoted traffic adds there, repriced at Tier-0 latency
/// (each object's `stall_if_local`, scaled to the share of its stall that
/// actually moves). Components with zero baseline stall keep scale 1 —
/// there is nothing for [`reprice`] to scale, so in particular the added
/// Tier-0 stall is unrepresentable when the baseline had none, making the
/// prediction slightly optimistic for pure-NVM runs.
pub fn hotness_promotion_whatif(report: &HotnessReport, k: usize) -> WhatIf {
    let local = TierId::LOCAL_DRAM.index();
    let mut orig_read = [0.0f64; NUM_TIERS];
    let mut orig_write = [0.0f64; NUM_TIERS];
    for o in &report.objects {
        for i in 0..NUM_TIERS {
            orig_read[i] += o.tiers[i].stall_read.as_secs_f64();
            orig_write[i] += o.tiers[i].stall_write.as_secs_f64();
        }
    }
    let mut removed_read = [0.0f64; NUM_TIERS];
    let mut removed_write = [0.0f64; NUM_TIERS];
    // Tier-0 stall the promoted objects bring with them.
    let mut gained = 0.0f64;
    for o in report.top_by_stall(k) {
        let mut moved = 0.0f64;
        for i in 0..NUM_TIERS {
            if i == local {
                continue; // already-local traffic stays put
            }
            removed_read[i] += o.tiers[i].stall_read.as_secs_f64();
            removed_write[i] += o.tiers[i].stall_write.as_secs_f64();
            moved += o.tiers[i].stall().as_secs_f64();
        }
        let total = o.stall.as_secs_f64();
        if total > 0.0 {
            gained += o.stall_if_local.as_secs_f64() * (moved / total);
        }
    }
    let mut w = WhatIf::identity();
    for i in 0..NUM_TIERS {
        if orig_read[i] > 0.0 {
            w.read_scale[i] = (orig_read[i] - removed_read[i]).max(0.0) / orig_read[i];
        }
        if orig_write[i] > 0.0 {
            w.write_scale[i] = (orig_write[i] - removed_write[i]).max(0.0) / orig_write[i];
        }
    }
    // Tier 0 absorbs the repriced stall, spread proportionally over its own
    // read/write split so both scales grow by the same factor.
    let base0 = orig_read[local] + orig_write[local];
    if base0 > 0.0 {
        let grow = (base0 + gained) / base0;
        w.read_scale[local] *= grow;
        w.write_scale[local] *= grow;
    }
    w
}

/// An analytical what-if prediction over a run's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// The profiled (baseline) runtime, seconds.
    pub baseline_s: f64,
    /// Predicted runtime under the perturbation, seconds.
    pub predicted_s: f64,
    /// `baseline / predicted` — above 1 is a speedup.
    pub speedup: f64,
}

/// Re-price a profiled critical path under perturbed tier parameters:
/// every per-tier read/write stall component scales by its latency ratio,
/// all other components (compute, shuffle fetch, queue, driver) are
/// unaffected. First-order: assumes the path shape and the bandwidth
/// contention stretch survive the perturbation — accurate while the tier
/// stays in the same contention regime, validated against actual re-runs
/// in `memtier-core`'s profile tests.
pub fn reprice(profile: &RunProfile, whatif: &WhatIf) -> WhatIfReport {
    let a = &profile.attribution;
    let mut delta_s = 0.0;
    for i in 0..NUM_TIERS {
        delta_s += a.mem_read[i].as_secs_f64() * (1.0 - whatif.read_scale[i]);
        delta_s += a.mem_write[i].as_secs_f64() * (1.0 - whatif.write_scale[i]);
    }
    delta_s += a.net.as_secs_f64() * (1.0 - whatif.net_scale);
    let baseline_s = profile.elapsed.as_secs_f64();
    let predicted_s = (baseline_s - delta_s).max(0.0);
    WhatIfReport {
        baseline_s,
        predicted_s,
        speedup: baseline_s / predicted_s.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(compute_us: u64, t2_read_us: u64, t2_write_us: u64) -> TaskBreakdown {
        let mut b = TaskBreakdown {
            compute: SimTime::from_us(compute_us),
            ..TaskBreakdown::default()
        };
        b.mem_read[2] = SimTime::from_us(t2_read_us);
        b.mem_write[2] = SimTime::from_us(t2_write_us);
        b
    }

    /// Two stages: task 0 (stage 0) gates stage 1; task 1 runs stage 1 and
    /// finishes last after a queue gap; driver time pads both ends.
    fn two_stage_log() -> ProfileLog {
        ProfileLog {
            tasks: vec![
                TaskRecord {
                    task_id: 0,
                    job: 0,
                    stage: 0,
                    partition: 0,
                    started: SimTime::from_us(10),
                    end: SimTime::from_us(40),
                    breakdown: bd(10, 15, 5),
                },
                TaskRecord {
                    task_id: 1,
                    job: 0,
                    stage: 1,
                    partition: 0,
                    started: SimTime::from_us(45),
                    end: SimTime::from_us(100),
                    breakdown: bd(30, 20, 5),
                },
            ],
            stages: vec![
                StageRecord {
                    job: 0,
                    stage: 0,
                    submitted: SimTime::from_us(10),
                    activated_by: None,
                },
                StageRecord {
                    job: 0,
                    stage: 1,
                    submitted: SimTime::from_us(40),
                    activated_by: Some(0),
                },
            ],
            jobs: vec![JobRecord {
                job: 0,
                submitted: SimTime::from_us(10),
                completed: SimTime::from_us(100),
            }],
            evictions: Vec::new(),
        }
    }

    #[test]
    fn breakdown_totals() {
        let b = bd(10, 15, 5);
        assert_eq!(b.mem_total(), SimTime::from_us(20));
        assert_eq!(b.total(), SimTime::from_us(30));
    }

    #[test]
    fn path_walk_conserves_and_orders() {
        let profile = build_profile(&two_stage_log(), SimTime::from_us(120));
        assert!(profile.conserves(), "attribution must sum to elapsed");
        assert_eq!(profile.attribution.total(), SimTime::from_us(120));
        // Head driver gap (10) + tail gap (20) = 30 us of driver time.
        assert_eq!(profile.attribution.driver, SimTime::from_us(30));
        // Task 1 queued 5 us behind its stage activation.
        assert_eq!(profile.attribution.sched_queue, SimTime::from_us(5));
        assert_eq!(profile.attribution.compute, SimTime::from_us(40));
        assert_eq!(profile.attribution.mem_read[2], SimTime::from_us(35));
        assert_eq!(profile.attribution.mem_write[2], SimTime::from_us(10));
        assert_eq!(profile.critical_tasks(), vec![(0, 0), (0, 1)]);
        // Segments tile [0, elapsed] with no gaps or overlaps.
        let mut cursor = SimTime::ZERO;
        for s in &profile.segments {
            assert_eq!(s.start, cursor, "segments must abut");
            assert!(s.end > s.start);
            cursor = s.end;
        }
        assert_eq!(cursor, SimTime::from_us(120));
    }

    #[test]
    fn named_seconds_covers_every_component() {
        let profile = build_profile(&two_stage_log(), SimTime::from_us(120));
        let named = profile.attribution.named_seconds();
        assert_eq!(named.len(), 4 + 2 * NUM_TIERS);
        let total: f64 = named.iter().map(|(_, v)| v).sum();
        assert!((total - 120e-6).abs() < 1e-12);
    }

    #[test]
    fn reprice_scales_only_memory_components() {
        let profile = build_profile(&two_stage_log(), SimTime::from_us(120));
        // Halve tier-2 write latency: 10 us of tier2_write becomes 5.
        let mut w = WhatIf::identity();
        w.write_scale[2] = 0.5;
        let r = reprice(&profile, &w);
        assert!((r.baseline_s - 120e-6).abs() < 1e-12);
        assert!((r.predicted_s - 115e-6).abs() < 1e-12);
        assert!(r.speedup > 1.0);
        // The identity what-if predicts no change (the MBA statement).
        let same = reprice(&profile, &WhatIf::identity());
        assert_eq!(same.baseline_s, same.predicted_s);
    }

    #[test]
    fn promotion_whatif_moves_stall_toward_tier0() {
        use memtier_memsim::{AccessBatch, AttributionLedger, ObjectId, TierParams};
        let params = TierId::all().map(TierParams::paper_default);
        let mut ledger = AttributionLedger::new();
        // Hot object on NVM_NEAR; cold scratch already on LOCAL_DRAM.
        ledger.record(
            SimTime::ZERO,
            TierId::NVM_NEAR,
            ObjectId::CacheBlock { rdd: 1 },
            &AccessBatch::random_reads(10_000),
            &params[TierId::NVM_NEAR.index()],
        );
        ledger.record(
            SimTime::ZERO,
            TierId::LOCAL_DRAM,
            ObjectId::Scratch,
            &AccessBatch::random_reads(1_000),
            &params[TierId::LOCAL_DRAM.index()],
        );
        let report = ledger.report(&params);
        let w = hotness_promotion_whatif(&report, 1);
        // The hot object's NVM stall disappears entirely (it was the only
        // object on that tier)...
        assert!(w.read_scale[TierId::NVM_NEAR.index()].abs() < 1e-12);
        // ...and tier 0 absorbs its repriced cost.
        assert!(w.read_scale[TierId::LOCAL_DRAM.index()] > 1.0);
        // Untouched tiers keep the identity scale.
        assert!((w.read_scale[TierId::REMOTE_DRAM.index()] - 1.0).abs() < 1e-12);
        // Promoting nothing is the identity perturbation.
        assert_eq!(hotness_promotion_whatif(&report, 0), WhatIf::identity());
    }

    #[test]
    fn whatif_from_configs() {
        let base = MemSimConfig::paper_default();
        let mut fast = base.clone();
        fast.tiers[TierId::NVM_NEAR.index()].idle_write_latency_ns /= 2.0;
        let w = WhatIf::from_configs(&base, &fast);
        assert!((w.write_scale[TierId::NVM_NEAR.index()] - 0.5).abs() < 1e-12);
        assert_eq!(w.read_scale, [1.0; NUM_TIERS]);
        for i in [0usize, 1, 3] {
            assert!((w.write_scale[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_log_is_all_driver() {
        let profile = build_profile(&ProfileLog::default(), SimTime::from_ms(3));
        assert!(profile.conserves());
        assert_eq!(profile.attribution.driver, SimTime::from_ms(3));
        assert_eq!(profile.segments.len(), 1);
        assert!(profile.critical_tasks().is_empty());
    }

    #[test]
    fn profile_json_round_trips() {
        let profile = build_profile(&two_stage_log(), SimTime::from_us(120));
        let json = serde_json::to_string(&profile).unwrap();
        let back: RunProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn net_component_is_optional_and_skipped_at_zero() {
        // Zero net serializes exactly like the pre-network breakdown...
        let b = bd(10, 15, 5);
        let json = serde_json::to_string(&b).unwrap();
        assert!(!json.contains("net"), "zero net must be skipped: {json}");
        // ...and pre-network payloads deserialize with net = 0 / scale 1.
        let mut v = serde_json::to_value(&b).unwrap();
        v.as_object_mut().unwrap().remove("net");
        let back: TaskBreakdown = serde_json::from_value(v).unwrap();
        assert!(back.net.is_zero());
        let mut w = serde_json::to_value(WhatIf::identity()).unwrap();
        w.as_object_mut().unwrap().remove("net_scale");
        let back: WhatIf = serde_json::from_value(w).unwrap();
        assert_eq!(back, WhatIf::identity());
    }

    #[test]
    fn reprice_scales_net_component() {
        let mut log = two_stage_log();
        // Give the path's last task 10 us of network stall (grown span so
        // the breakdown still conserves).
        log.tasks[1].breakdown.net = SimTime::from_us(10);
        log.tasks[1].end += SimTime::from_us(10);
        log.jobs[0].completed += SimTime::from_us(10);
        let profile = build_profile(&log, SimTime::from_us(130));
        assert!(profile.conserves());
        assert_eq!(profile.attribution.net, SimTime::from_us(10));
        let named = profile.attribution.named_seconds();
        assert_eq!(named.last().unwrap().0, "net");
        // "Make it node-local" removes the whole net component.
        let mut w = WhatIf::identity();
        w.net_scale = 0.0;
        let r = reprice(&profile, &w);
        assert!((r.predicted_s - 120e-6).abs() < 1e-12);
    }
}
