//! Engine error types.

use std::fmt;

/// Errors surfaced by the engine's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum SparkError {
    /// Invalid configuration (zero executors, zero cores, ...).
    InvalidConfig(String),
    /// A DFS operation failed.
    Dfs(String),
    /// An action was invoked on an RDD from a different context.
    ContextMismatch,
    /// Empty collection where a value was required (e.g. `reduce` on an
    /// empty RDD).
    EmptyCollection,
    /// Internal invariant violation (a bug in the engine).
    Internal(String),
    /// A task exhausted its retry budget under an injected fault plan.
    TaskRetriesExhausted {
        /// Job the task belonged to.
        job: u64,
        /// Stage the task belonged to.
        stage: u32,
        /// Partition that kept failing.
        partition: usize,
        /// Attempts made (first run + retries).
        attempts: u32,
    },
    /// Recovery became impossible: every executor crashed with work still
    /// outstanding, so no lineage recompute can make progress.
    AllExecutorsLost {
        /// Job that could not finish.
        job: u64,
        /// Stages still incomplete when the cluster died.
        stages_pending: u64,
    },
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SparkError::Dfs(m) => write!(f, "dfs error: {m}"),
            SparkError::ContextMismatch => write!(f, "RDD belongs to a different SparkContext"),
            SparkError::EmptyCollection => write!(f, "empty collection"),
            SparkError::Internal(m) => write!(f, "internal error: {m}"),
            SparkError::TaskRetriesExhausted {
                job,
                stage,
                partition,
                attempts,
            } => write!(
                f,
                "job {job} stage {stage} partition {partition} failed after {attempts} attempts"
            ),
            SparkError::AllExecutorsLost {
                job,
                stages_pending,
            } => write!(
                f,
                "job {job}: all executors lost with {stages_pending} stages incomplete"
            ),
        }
    }
}

impl std::error::Error for SparkError {}

impl From<memtier_dfs::DfsError> for SparkError {
    fn from(e: memtier_dfs::DfsError) -> Self {
        SparkError::Dfs(e.to_string())
    }
}

/// Engine result type.
pub type Result<T> = std::result::Result<T, SparkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: SparkError = memtier_dfs::DfsError::FileNotFound("/x".into()).into();
        assert!(matches!(e, SparkError::Dfs(_)));
        assert!(e.to_string().contains("/x"));
        assert!(SparkError::EmptyCollection.to_string().contains("empty"));
    }

    #[test]
    fn recovery_errors_carry_their_coordinates() {
        let e = SparkError::TaskRetriesExhausted {
            job: 2,
            stage: 1,
            partition: 7,
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("job 2") && s.contains("stage 1"));
        assert!(s.contains("partition 7") && s.contains("4 attempts"));
        let e = SparkError::AllExecutorsLost {
            job: 0,
            stages_pending: 3,
        };
        assert!(e.to_string().contains("all executors lost"));
    }
}
