//! Engine error types.

use std::fmt;

/// Errors surfaced by the engine's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum SparkError {
    /// Invalid configuration (zero executors, zero cores, ...).
    InvalidConfig(String),
    /// A DFS operation failed.
    Dfs(String),
    /// An action was invoked on an RDD from a different context.
    ContextMismatch,
    /// Empty collection where a value was required (e.g. `reduce` on an
    /// empty RDD).
    EmptyCollection,
    /// Internal invariant violation (a bug in the engine).
    Internal(String),
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            SparkError::Dfs(m) => write!(f, "dfs error: {m}"),
            SparkError::ContextMismatch => write!(f, "RDD belongs to a different SparkContext"),
            SparkError::EmptyCollection => write!(f, "empty collection"),
            SparkError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SparkError {}

impl From<memtier_dfs::DfsError> for SparkError {
    fn from(e: memtier_dfs::DfsError) -> Self {
        SparkError::Dfs(e.to_string())
    }
}

/// Engine result type.
pub type Result<T> = std::result::Result<T, SparkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: SparkError = memtier_dfs::DfsError::FileNotFound("/x".into()).into();
        assert!(matches!(e, SparkError::Dfs(_)));
        assert!(e.to_string().contains("/x"));
        assert!(SparkError::EmptyCollection.to_string().contains("empty"));
    }
}
