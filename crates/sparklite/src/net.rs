//! Scheduler-side bookkeeping for the simulated network plane.
//!
//! The data plane *records* network charges ([`NetCharge`]) while a task's
//! operators run; the scheduler *resolves* them — executor/datanode/driver
//! endpoints to topology nodes — and turns cross-node charges into flows on
//! the [`NetworkPlane`]. Everything here is gated on a configured topology:
//! under [`NetworkMode::Loopback`] the state is inert, no charge is ever
//! resolved, and runs are byte-identical to the pre-plane engine.
//!
//! Conservation contract: a completed transfer credits its whole byte count
//! to every link of its path, exactly once, at its completion instant —
//! both in the plane's per-link integer counters and in this module's
//! [`TransferRecord`] log. [`NetState::conserves`] re-sums the records
//! against the counters; cancelled transfers appear in neither.

use memtier_des::SimTime;
use memtier_netsim::{Locality, LocalityMode, NetTopology, NetworkMode, NetworkPlane};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a recorded charge was for (the traffic class in events/reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetChargeKind {
    /// Reduce-side shuffle fetch from a map output's executor.
    ShuffleFetch,
    /// Broadcast distribution from the driver.
    Broadcast,
    /// DFS block read from a datanode.
    DfsRead,
    /// DFS block write (one charge per replica) to a datanode.
    DfsWrite,
    /// DFS re-replication copy between datanodes.
    Rereplicate,
}

impl NetChargeKind {
    /// Stable label for events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            NetChargeKind::ShuffleFetch => "shuffle-fetch",
            NetChargeKind::Broadcast => "broadcast",
            NetChargeKind::DfsRead => "dfs-read",
            NetChargeKind::DfsWrite => "dfs-write",
            NetChargeKind::Rereplicate => "rereplicate",
        }
    }
}

/// The far endpoint of a charge (the near endpoint is the charging task's
/// executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetPeer {
    /// Another executor (shuffle fetch source).
    Executor(usize),
    /// A DFS datanode.
    Datanode(u32),
    /// The driver.
    Driver,
}

/// One network charge recorded by the data plane, resolved by the
/// scheduler at task launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCharge {
    /// Traffic class.
    pub kind: NetChargeKind,
    /// The far endpoint.
    pub peer: NetPeer,
    /// `true` when bytes flow peer → task (reads/fetches); `false` for
    /// task → peer (writes).
    pub inbound: bool,
    /// Payload size.
    pub bytes: u64,
}

/// Topology context handed to a task's [`TaskEnv`](crate::rdd::TaskEnv) so
/// charge sites can rank replicas by closeness. Present only when a
/// topology is configured.
#[derive(Debug, Clone)]
pub struct NetCtx {
    /// The node hosting the executing task.
    pub node: u32,
    /// The cluster wiring.
    pub topo: NetTopology,
}

/// A completed transfer: the scheduler-side record the conservation
/// invariant re-sums against the plane's per-link counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Completion instant.
    pub at: SimTime,
    /// Owning task, when the transfer belonged to one (re-replication
    /// runs driverless).
    pub task: Option<u64>,
    /// Traffic class.
    pub kind: NetChargeKind,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Whole-transfer bytes.
    pub bytes: u64,
    /// Locality class (never `NodeLocal`: loopback skips the plane).
    pub locality: Locality,
    /// Dense link indices of the path.
    pub links: Vec<usize>,
    /// Whether this was lineage-recovery refetch traffic (task attempt > 0).
    pub refetch: bool,
}

/// An in-flight transfer's metadata (mirrors the plane's flow state).
#[derive(Debug, Clone)]
struct Pending {
    task: Option<u64>,
    kind: NetChargeKind,
    locality: Locality,
    refetch: bool,
}

/// Per-link serialized totals for the run report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkReport {
    /// Stable link label (`node0:up`, `rack1:down`, …).
    pub label: String,
    /// Whole-transfer bytes credited to this link.
    pub bytes: u64,
    /// Virtual seconds the link had at least one active flow.
    pub busy_s: f64,
}

/// Aggregated network activity of a run. Default (all-zero) under loopback
/// wiring — and skipped from serialized results, keeping pre-plane
/// artifacts byte-identical.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetReport {
    /// Completed cross-node transfers.
    pub transfers: u64,
    /// Bytes of completed transfers.
    pub total_bytes: u64,
    /// Charged bytes that resolved to co-located endpoints (free loopback).
    pub node_local_bytes: u64,
    /// Completed bytes between nodes of the same rack.
    pub rack_local_bytes: u64,
    /// Completed bytes that crossed racks.
    pub cross_rack_bytes: u64,
    /// Bytes of completed shuffle fetches.
    pub shuffle_bytes: u64,
    /// Bytes of completed broadcast deliveries.
    pub broadcast_bytes: u64,
    /// Bytes of completed DFS reads.
    pub dfs_read_bytes: u64,
    /// Bytes of completed DFS writes (replica fan-out included).
    pub dfs_write_bytes: u64,
    /// Bytes of completed re-replication copies.
    pub rereplicate_bytes: u64,
    /// Completed bytes that were lineage-recovery refetch traffic.
    pub refetch_bytes: u64,
    /// Transfers cancelled before completion (task kills, aborts).
    pub cancelled_transfers: u64,
    /// Bytes of cancelled transfers (credited nowhere).
    pub cancelled_bytes: u64,
    /// Per-link totals, dense link-index order.
    pub links: Vec<LinkReport>,
}

impl NetReport {
    /// True when the run saw no network activity at all — the loopback
    /// baseline, in which the report is skipped from serialized results.
    pub fn is_empty(&self) -> bool {
        *self == NetReport::default()
    }
}

/// The scheduler's network state: the plane plus charge resolution,
/// transfer ownership, locality bookkeeping, and the conservation ledger.
pub struct NetState {
    plane: Option<NetworkPlane>,
    locality: Option<LocalityMode>,
    next_transfer: u64,
    /// transfer id → owning task (absent for driverless transfers).
    pending: BTreeMap<u64, Pending>,
    /// Completed transfers, in completion order.
    pub records: Vec<TransferRecord>,
    /// Cached-block residency `(rdd, partition) → executor`, fed by the
    /// scheduler's cache-insertion stream; drives node-local preferences.
    pub block_owner: BTreeMap<(u32, usize), usize>,
    /// Charged bytes that resolved to co-located endpoints.
    node_local_bytes: u64,
}

impl NetState {
    /// Build from the configured wiring. `Loopback` yields an inert state.
    pub fn new(mode: &NetworkMode) -> NetState {
        let (plane, locality) = match mode {
            NetworkMode::Loopback => (None, None),
            NetworkMode::Topology { topology, locality } => {
                (Some(NetworkPlane::new(topology.clone())), Some(*locality))
            }
        };
        NetState {
            plane,
            locality,
            next_transfer: 0,
            pending: BTreeMap::new(),
            records: Vec::new(),
            block_owner: BTreeMap::new(),
            node_local_bytes: 0,
        }
    }

    /// True when a topology is configured (the plane exists).
    pub fn active(&self) -> bool {
        self.plane.is_some()
    }

    /// The topology, when configured.
    pub fn topology(&self) -> Option<&NetTopology> {
        self.plane.as_ref().map(|p| p.topology())
    }

    /// The configured locality policy.
    pub fn locality_mode(&self) -> Option<LocalityMode> {
        self.locality
    }

    /// The delay-scheduling wait, when that policy is configured.
    pub fn delay_wait(&self) -> Option<SimTime> {
        match self.locality {
            Some(LocalityMode::DelayScheduling { wait }) => Some(wait),
            _ => None,
        }
    }

    /// Topology context for a task on `exec`, when a topology is
    /// configured.
    pub fn task_ctx(&self, exec: usize) -> Option<NetCtx> {
        self.topology().map(|t| NetCtx {
            node: t.node_of_executor(exec),
            topo: t.clone(),
        })
    }

    /// Resolve a charge to `(src_node, dst_node)` for a task on `exec`.
    pub fn resolve(&self, exec: usize, charge: &NetCharge) -> (u32, u32) {
        let t = self.topology().expect("resolving a charge without a plane");
        let here = t.node_of_executor(exec);
        let peer = match charge.peer {
            NetPeer::Executor(e) => t.node_of_executor(e),
            NetPeer::Datanode(d) => t.node_of_datanode(d),
            NetPeer::Driver => t.driver_node(),
        };
        if charge.inbound {
            (peer, here)
        } else {
            (here, peer)
        }
    }

    /// Count bytes whose endpoints co-locate (the loopback fast path).
    pub fn note_node_local(&mut self, bytes: u64) {
        self.node_local_bytes += bytes;
    }

    /// Start a cross-node transfer at `now`, pacing its link flows at
    /// `rate` bytes/s. Returns the transfer id, its dense link path, and
    /// its locality class (for `FlowStarted` events).
    ///
    /// # Panics
    /// Panics if no plane is configured or the endpoints co-locate.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        now: SimTime,
        task: Option<u64>,
        kind: NetChargeKind,
        src: u32,
        dst: u32,
        bytes: u64,
        rate: f64,
        refetch: bool,
    ) -> (u64, Vec<usize>, Locality) {
        let plane = self.plane.as_mut().expect("transfer without a plane");
        let id = self.next_transfer;
        self.next_transfer += 1;
        plane.begin_transfer(now, id, src, dst, bytes, rate);
        let topo = plane.topology();
        let locality = topo.locality(src, dst);
        let links: Vec<usize> = topo
            .path(src, dst)
            .into_iter()
            .map(|l| topo.link_index(l))
            .collect();
        self.pending.insert(
            id,
            Pending {
                task,
                kind,
                locality,
                refetch,
            },
        );
        (id, links, locality)
    }

    /// Advance the plane's clock (no-op without a plane).
    pub fn advance(&mut self, now: SimTime) {
        if let Some(p) = self.plane.as_mut() {
            p.advance(now);
        }
    }

    /// The earliest link-drain instant, or `None` when idle / no plane.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.plane.as_ref().and_then(|p| p.next_event_time())
    }

    /// Process one link-drain event at `at`. `Some` when a transfer
    /// completed: its record has been appended to [`records`](Self::records)
    /// and is returned (borrowed) together with the owning task.
    pub fn step(&mut self, at: SimTime) -> Option<&TransferRecord> {
        let plane = self.plane.as_mut().expect("stepping without a plane");
        let done = plane.step(at)?;
        let meta = self
            .pending
            .remove(&done.id)
            .expect("completed transfer without metadata");
        self.records.push(TransferRecord {
            at: done.at,
            task: meta.task,
            kind: meta.kind,
            src: done.src,
            dst: done.dst,
            bytes: done.bytes,
            locality: meta.locality,
            links: done.links,
            refetch: meta.refetch,
        });
        self.records.last()
    }

    /// Cancel an in-flight transfer if it is still pending (the guard that
    /// makes kill/completion races at one instant safe, mirroring the
    /// memory plane's flow-owner map). Returns whether it was cancelled.
    pub fn cancel(&mut self, now: SimTime, id: u64) -> bool {
        if self.pending.remove(&id).is_none() {
            return false;
        }
        self.plane
            .as_mut()
            .expect("cancelling without a plane")
            .cancel_transfer(now, id);
        true
    }

    /// Transfers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Exact-integer conservation: the per-link re-sum of completed
    /// records equals the plane's per-link counters. Vacuously true
    /// without a plane.
    pub fn conserves(&self) -> bool {
        let Some(plane) = self.plane.as_ref() else {
            return true;
        };
        let mut resum = vec![0u64; plane.link_bytes().len()];
        for r in &self.records {
            for &l in &r.links {
                resum[l] += r.bytes;
            }
        }
        resum == plane.link_bytes()
    }

    /// Aggregate the run's network activity. All-zero (and therefore
    /// serialization-skipped) when no transfer ever entered the plane.
    pub fn report(&self) -> NetReport {
        let Some(plane) = self.plane.as_ref() else {
            return NetReport::default();
        };
        let (cancelled_transfers, cancelled_bytes) = plane.cancelled();
        if self.records.is_empty() && cancelled_transfers == 0 {
            // A topology that never saw a cross-node transfer (e.g. the
            // single-node wiring) reports exactly like loopback.
            return NetReport::default();
        }
        let mut rep = NetReport {
            transfers: self.records.len() as u64,
            node_local_bytes: self.node_local_bytes,
            cancelled_transfers,
            cancelled_bytes,
            ..NetReport::default()
        };
        for r in &self.records {
            rep.total_bytes += r.bytes;
            match r.locality {
                Locality::NodeLocal => unreachable!("loopback never enters the plane"),
                Locality::RackLocal => rep.rack_local_bytes += r.bytes,
                Locality::Remote => rep.cross_rack_bytes += r.bytes,
            }
            match r.kind {
                NetChargeKind::ShuffleFetch => rep.shuffle_bytes += r.bytes,
                NetChargeKind::Broadcast => rep.broadcast_bytes += r.bytes,
                NetChargeKind::DfsRead => rep.dfs_read_bytes += r.bytes,
                NetChargeKind::DfsWrite => rep.dfs_write_bytes += r.bytes,
                NetChargeKind::Rereplicate => rep.rereplicate_bytes += r.bytes,
            }
            if r.refetch {
                rep.refetch_bytes += r.bytes;
            }
        }
        let busy = plane.link_busy_secs();
        let topo = plane.topology();
        rep.links = plane
            .link_bytes()
            .iter()
            .enumerate()
            .map(|(i, &bytes)| LinkReport {
                label: topo.link_at(i).label(),
                bytes,
                busy_s: busy[i],
            })
            .collect();
        rep
    }

    /// The plane's per-link byte counters (tests/diagnostics).
    pub fn link_bytes(&self) -> Option<&[u64]> {
        self.plane.as_ref().map(|p| p.link_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> NetState {
        let mut topo = NetTopology::new(4, 2);
        topo.node_bw = 1000.0;
        topo.latency_us = 0.0;
        NetState::new(&NetworkMode::Topology {
            topology: topo,
            locality: LocalityMode::Blind,
        })
    }

    fn drain(s: &mut NetState) {
        while let Some(t) = s.next_event_time() {
            s.step(t);
        }
    }

    #[test]
    fn loopback_state_is_inert_and_reports_empty() {
        let s = NetState::new(&NetworkMode::Loopback);
        assert!(!s.active());
        assert!(s.topology().is_none());
        assert!(s.next_event_time().is_none());
        assert!(s.conserves());
        assert!(s.report().is_empty());
    }

    #[test]
    fn records_conserve_against_link_counters() {
        let mut s = state();
        let (_, links, loc) = s.begin(
            SimTime::ZERO,
            Some(7),
            NetChargeKind::ShuffleFetch,
            0,
            2,
            500,
            1000.0,
            false,
        );
        assert_eq!(links.len(), 4);
        assert_eq!(loc, Locality::Remote);
        s.begin(
            SimTime::ZERO,
            None,
            NetChargeKind::Rereplicate,
            0,
            1,
            300,
            1000.0,
            false,
        );
        drain(&mut s);
        assert!(s.conserves());
        let rep = s.report();
        assert_eq!(rep.transfers, 2);
        assert_eq!(rep.total_bytes, 800);
        assert_eq!(rep.cross_rack_bytes, 500);
        assert_eq!(rep.rack_local_bytes, 300);
        assert_eq!(rep.shuffle_bytes, 500);
        assert_eq!(rep.rereplicate_bytes, 300);
        assert_eq!(rep.links.len(), 12);
        assert!(rep.links.iter().map(|l| l.bytes).sum::<u64>() > 0);
    }

    #[test]
    fn cancellation_is_guarded_and_uncounted() {
        let mut s = state();
        let (id, _, _) = s.begin(
            SimTime::ZERO,
            Some(1),
            NetChargeKind::Broadcast,
            0,
            1,
            100,
            10.0,
            true,
        );
        assert!(s.cancel(SimTime::ZERO, id));
        assert!(
            !s.cancel(SimTime::ZERO, id),
            "double cancel must be a no-op"
        );
        assert!(s.conserves());
        let rep = s.report();
        assert_eq!(rep.transfers, 0);
        assert_eq!(rep.cancelled_transfers, 1);
        assert_eq!(rep.cancelled_bytes, 100);
        assert_eq!(rep.refetch_bytes, 0);
    }

    #[test]
    fn quiet_topology_reports_like_loopback() {
        let mut s = state();
        s.note_node_local(4096);
        assert!(s.report().is_empty(), "no transfers → loopback-identical");
    }

    #[test]
    fn charge_resolution_orients_by_direction() {
        let s = state();
        // Executor 1 sits on node 1; datanode 2 on node 2.
        let inbound = NetCharge {
            kind: NetChargeKind::DfsRead,
            peer: NetPeer::Datanode(2),
            inbound: true,
            bytes: 10,
        };
        assert_eq!(s.resolve(1, &inbound), (2, 1));
        let outbound = NetCharge {
            kind: NetChargeKind::DfsWrite,
            peer: NetPeer::Datanode(2),
            inbound: false,
            bytes: 10,
        };
        assert_eq!(s.resolve(1, &outbound), (1, 2));
        let bcast = NetCharge {
            kind: NetChargeKind::Broadcast,
            peer: NetPeer::Driver,
            inbound: true,
            bytes: 10,
        };
        assert_eq!(s.resolve(5, &bcast), (0, 1));
    }
}
