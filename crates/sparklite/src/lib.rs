//! # sparklite — an RDD-based in-memory analytics engine on simulated tiers
//!
//! `sparklite` reproduces the slice of Apache Spark the paper exercises:
//!
//! * **RDDs** — lazy, lineage-tracked, partitioned collections with the
//!   classic transformation surface (`map`, `filter`, `flat_map`,
//!   `reduce_by_key`, `group_by_key`, `join`, `sort_by_key`, `union`,
//!   `sample`, `distinct`, …) and actions (`collect`, `count`, `reduce`,
//!   `take`, `save_as_text_file`).
//! * **A DAG scheduler** that splits lineage into stages at shuffle
//!   boundaries and runs them as task sets, pipelining narrow chains within
//!   a task exactly like Spark does (intermediate `map` steps cost CPU and
//!   working-set accesses, not materialization traffic).
//! * **A shuffle subsystem** with hash and range partitioners, optional
//!   map-side combining, and a map-output tracker.
//! * **A block manager** with storage-level caching and LRU eviction, so
//!   iterative workloads (`pagerank`, `als`, `lda`) hit memory instead of
//!   recomputing lineage.
//! * **A standalone cluster** of executors pinned to sockets and memory
//!   tiers the way the paper pins Spark executors with `numactl`.
//!
//! ## The two planes
//!
//! Every job runs on two planes at once:
//!
//! 1. the **data plane** actually computes partition contents in Rust —
//!    results are real and checked by tests;
//! 2. the **time plane** prices each task (modeled CPU + an
//!    [`AccessBatch`](memtier_memsim::AccessBatch) of memory traffic) and
//!    schedules it through a discrete-event simulation of executor cores and
//!    the [`MemorySystem`](memtier_memsim::MemorySystem), producing a
//!    deterministic virtual execution time, energy and access counts.
//!
//! Wall-clock time never enters a measurement; a run is a pure function of
//! (workload, configuration, seed).
//!
//! ## Observability
//!
//! The engine carries a Spark-listener-equivalent [`events`] bus: typed
//! job/stage/task lifecycle events with pluggable sinks (in-memory ring,
//! JSONL log, live progress), per-stage metric rollups, and a Chrome-trace
//! export ([`trace`]) that interleaves task spans with memory counter
//! tracks. All of it reads virtual time and is off (and free) by default.
//! On top of the telemetry sits a critical-path profiler ([`profile`]):
//! every task span is decomposed into named virtual-time components
//! (compute, shuffle fetch, per-tier read/write stall), the job DAG's
//! critical path is extracted, and the resulting attribution conserves —
//! components sum exactly to the end-to-end virtual runtime — which makes
//! analytical what-if repricing under perturbed tier parameters possible.
//! Orthogonally, every access batch is tagged with the Spark-level object
//! it belongs to ([`memtier_memsim::ObjectId`]: cached RDD block, shuffle
//! segment, input scan, broadcast, scratch), and the run's
//! [`memtier_memsim::HotnessReport`] ranks objects by the traffic and
//! stall they drove per tier — conserving against the machine counters in
//! exact integers. Finally, the run doctor ([`doctor`]) folds the always-on
//! sources — the memory system's windowed rollup, the profiler log, the
//! fault ledger — into conserved per-window series and runs a detector
//! catalogue over them, attaching ranked, evidence-backed findings to every
//! run report.

#![warn(missing_docs)]
// Closure-heavy engine code trips this lint pervasively; the aliases the
// lint wants would hurt readability more than the long types do.
#![allow(clippy::type_complexity)]

pub mod accumulator;
pub mod broadcast;
pub mod config;
pub mod context;
pub mod cost;
pub mod doctor;
pub mod error;
pub mod events;
pub mod explain;
pub mod faultsim;
pub mod memsize;
pub mod metrics;
pub mod net;
pub mod profile;
pub mod rdd;
pub mod runtime;
pub mod scheduler;
pub mod shuffle;
pub mod storage;
pub mod trace;

pub use accumulator::Accumulator;
pub use broadcast::Broadcast;
pub use config::{ExecutorPlacement, PlacementMode, SparkConf};
pub use context::SparkContext;
pub use cost::{CostModel, OpCost};
pub use doctor::{
    diagnose, DoctorInputs, DoctorReport, DoctorSeries, EvidenceWindow, Finding, FindingKind,
    Severity,
};
pub use error::SparkError;
pub use events::{
    parse_jsonl, to_jsonl, Event, EventBus, EventSink, JsonlSink, MemoryRing, MemoryRingHandle,
    ProgressSink, TimedEvent,
};
pub use explain::{
    build_digest, explain, Contributor, DeltaRow, ExplainReport, MigrationDelta, ObjectDelta,
    ObjectDigest, RecoveryDelta, RunDigest, StageDelta, StageSlice,
};
pub use faultsim::{CrashEvent, FaultPlan, FaultState, RecoveryStats, SpeculationConf};
pub use memsize::MemSize;
pub use memtier_des::{EngineProf, EngineStats};
pub use memtier_netsim::{Locality, LocalityMode, NetTopology, NetworkMode};
pub use metrics::{AppMetrics, StageRollup, SystemEvents};
pub use net::{
    LinkReport, NetCharge, NetChargeKind, NetCtx, NetPeer, NetReport, NetState, TransferRecord,
};
pub use profile::{
    build_profile, hotness_promotion_whatif, reprice, Attribution, EvictionRecord, PathSegment,
    ProfileLog, RunProfile, SegmentKind, TaskBreakdown, WhatIf, WhatIfReport,
};
pub use rdd::{Data, Key, Rdd};
pub use shuffle::{HashPartitioner, RangePartitioner};
pub use storage::StorageLevel;
pub use trace::{
    chrome_trace_json, chrome_trace_json_full, chrome_trace_json_objects, SpanKind, TaskSpan,
};
