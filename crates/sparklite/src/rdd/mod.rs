//! RDDs: lazy, lineage-tracked, partitioned collections.
//!
//! The module mirrors Spark's RDD layer. A [`Rdd<T>`] is a cheap typed handle
//! onto an [`RddBase`] lineage node; transformations build new nodes without
//! computing anything, actions hand the terminal node to the DAG scheduler.
//!
//! Computation happens per partition inside a [`TaskEnv`]: narrow parents
//! are pipelined (computed recursively within the same task, memoized for
//! the task's lifetime), shuffle parents are read from the
//! [`ShuffleManager`](crate::shuffle::ShuffleManager), and every operator
//! charges the metrics accumulator with the CPU and memory traffic the time
//! plane will price.

pub mod action;
pub mod cogroup;
pub mod extra;
pub mod map;
pub mod pair;
pub mod shuffled;
pub mod sort;
pub mod source;
pub mod union;

pub use shuffled::{Aggregator, ShuffledRdd};

use crate::context::SparkContext;
use crate::cost::OpCost;
use crate::memsize::{slice_mem_size, MemSize};
use crate::metrics::TaskMetrics;
use crate::net::{NetCharge, NetChargeKind, NetCtx, NetPeer};
use crate::runtime::Runtime;
use crate::shuffle::{AnyPart, ShuffleId};
use crate::storage::StorageLevel;
use memtier_dfs::{BlockInfo, DfsError, FileStatus};
use memtier_memsim::{AccessBatch, ObjectId};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

/// Marker for record types the engine can hold: cloneable, thread-safe and
/// size-estimable. Blanket-implemented; user types only need [`MemSize`].
pub trait Data: Clone + Send + Sync + MemSize + 'static {}
impl<T: Clone + Send + Sync + MemSize + 'static> Data for T {}

/// Marker for key types (hashable + comparable data). Blanket-implemented.
pub trait Key: Data + Eq + Hash {}
impl<T: Data + Eq + Hash> Key for T {}

/// Identifier of a lineage node, unique within one context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u32);

/// The result of materializing one partition.
pub struct Computed {
    /// `Arc<Vec<T>>`, type-erased.
    pub data: AnyPart,
    /// Record count.
    pub records: u64,
    /// Estimated in-memory bytes.
    pub bytes: u64,
}

impl Computed {
    /// Wrap a typed partition.
    pub fn from_vec<T: Data>(items: Vec<T>) -> Computed {
        let records = items.len() as u64;
        let bytes = slice_mem_size(&items) as u64;
        Computed {
            data: Arc::new(items),
            records,
            bytes,
        }
    }
}

/// Common bookkeeping every lineage node embeds.
#[derive(Debug)]
pub struct RddVitals {
    /// Node id.
    pub id: RddId,
    /// Display name (operator name).
    pub name: String,
    /// Partition count.
    pub partitions: usize,
    /// Current persistence level (mutable: `persist` flips it after
    /// construction, exactly like Spark).
    pub storage: RwLock<StorageLevel>,
}

impl RddVitals {
    /// New vitals with storage level `None`.
    pub fn new(id: RddId, name: impl Into<String>, partitions: usize) -> RddVitals {
        RddVitals {
            id,
            name: name.into(),
            partitions,
            storage: RwLock::new(StorageLevel::None),
        }
    }
}

/// A dependency edge in the lineage graph.
#[derive(Clone)]
pub enum Dep {
    /// Narrow: each child partition reads exactly one parent partition;
    /// pipelined within the same stage.
    Narrow(Arc<dyn RddBase>),
    /// Wide: requires a shuffle; forms a stage boundary.
    Shuffle(Arc<ShuffleDep>),
}

/// A shuffle dependency: the map-side writer plus its registration.
pub struct ShuffleDep {
    /// Shuffle registration in the manager.
    pub shuffle_id: ShuffleId,
    /// The map-side parent RDD.
    pub parent: Arc<dyn RddBase>,
    /// Reduce partition count.
    pub num_reduces: usize,
    /// Type-aware map-task logic (bucketing + map-side combine).
    pub writer: Arc<dyn ShuffleWriter>,
}

/// Map-task logic of one shuffle: compute parent partition `map_part`,
/// bucket it by the partitioner, and store buckets in the shuffle manager,
/// charging the env for the traffic.
pub trait ShuffleWriter: Send + Sync {
    /// Execute the map side for one partition.
    fn write_partition(&self, map_part: usize, env: &mut TaskEnv<'_>);
}

/// A lineage node. Object-safe so the scheduler can walk heterogeneous
/// graphs; the typed API lives on [`Rdd<T>`].
pub trait RddBase: Send + Sync {
    /// Node id.
    fn id(&self) -> RddId;
    /// Operator name.
    fn name(&self) -> String;
    /// Partition count.
    fn num_partitions(&self) -> usize;
    /// Dependency edges.
    fn deps(&self) -> Vec<Dep>;
    /// Current persistence level.
    fn storage_level(&self) -> StorageLevel;
    /// Set the persistence level (used by `persist`/`unpersist`).
    fn set_storage_level(&self, level: StorageLevel);
    /// Materialize one partition within a task.
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed;
    /// Datanodes holding this partition's input (DFS replica residency).
    /// Empty for everything but storage-backed sources; the locality-aware
    /// scheduler maps these to nodes when ranking placements.
    fn preferred_replicas(&self, _part: usize) -> Vec<u32> {
        Vec::new()
    }
}

/// Per-task execution environment: runtime services, a metrics accumulator,
/// and the pipeline memo (computed partitions of this task's lineage chain).
pub struct TaskEnv<'a> {
    /// Shared services (shuffle manager, block cache, cost model, DFS).
    pub rt: &'a Runtime,
    /// Metrics accumulated by this task.
    pub metrics: TaskMetrics,
    /// Per-object decomposition of `metrics.traffic`: which Spark-level
    /// entity each access batch belongs to. The map's values sum to
    /// `metrics.traffic` exactly (every charge path goes through
    /// [`add_traffic`](Self::add_traffic)), which is what lets the
    /// scheduler's attribution conserve against the machine counters.
    pub object_traffic: BTreeMap<ObjectId, AccessBatch>,
    /// Network charges recorded by operators (shuffle fetches, DFS I/O,
    /// broadcast pulls). Only populated when a topology is configured
    /// (`net_ctx` is set); the scheduler resolves them into flows on the
    /// network plane after the data plane finishes.
    pub net_charges: Vec<NetCharge>,
    /// Topology context of the hosting executor. `None` under loopback
    /// wiring, in which case no charge is recorded and every code path is
    /// byte-identical to the pre-plane engine.
    pub net_ctx: Option<NetCtx>,
    memo: HashMap<(RddId, usize), AnyPart>,
}

impl<'a> TaskEnv<'a> {
    /// A fresh environment for one task.
    pub fn new(rt: &'a Runtime) -> TaskEnv<'a> {
        TaskEnv {
            rt,
            metrics: TaskMetrics::default(),
            object_traffic: BTreeMap::new(),
            net_charges: Vec::new(),
            net_ctx: None,
            memo: HashMap::new(),
        }
    }

    /// Materialize a narrow parent partition, pipelining within this task.
    ///
    /// Resolution order: task memo → block cache (for persisted RDDs,
    /// charging a cache read) → recursive compute (charging whatever the
    /// parent's operators charge, then a cache write if persisted).
    ///
    /// # Panics
    /// Panics if the parent's partition type is not `Vec<T>` — a lineage
    /// construction bug, not a runtime condition.
    pub fn narrow_input<T: Data>(&mut self, parent: &Arc<dyn RddBase>, part: usize) -> Arc<Vec<T>> {
        let key = (parent.id(), part);
        if let Some(hit) = self.memo.get(&key) {
            return downcast::<T>(hit.clone(), parent);
        }
        let level = parent.storage_level();
        if level.is_cached() {
            if let Some((data, bytes, location)) = self.rt.cache.get((parent.id().0, part)) {
                self.metrics.cache_hits += 1;
                self.charge_input_scan(ObjectId::CacheBlock { rdd: parent.id().0 }, bytes);
                if location == crate::storage::BlockLocation::Disk {
                    // Spilled block: pay the disk read on top of the scan.
                    self.charge_cpu_ns(
                        bytes as f64 * self.rt.cost.disk_read_ns_per_byte
                            + self.rt.cost.disk_seek_ns,
                    );
                }
                self.memo.insert(key, data.clone());
                return downcast::<T>(data, parent);
            }
            self.metrics.cache_misses += 1;
        }
        let computed = parent.compute_partition(part, self);
        if level.is_cached()
            && self.rt.cache.put(
                (parent.id().0, part),
                computed.data.clone(),
                computed.bytes,
                level,
            )
        {
            self.charge_materialize(ObjectId::CacheBlock { rdd: parent.id().0 }, computed.bytes);
        }
        self.memo.insert(key, computed.data.clone());
        downcast::<T>(computed.data, parent)
    }

    /// Charge pure CPU time.
    pub fn charge_cpu_ns(&mut self, ns: f64) {
        self.metrics.cpu_ns += ns.max(0.0);
    }

    /// Charge memory traffic to an object: accumulates both the task's
    /// aggregate traffic and the per-object decomposition. Every traffic
    /// charge funnels through here so the two always agree.
    pub fn add_traffic(&mut self, object: ObjectId, batch: AccessBatch) {
        self.metrics.traffic += batch;
        *self.object_traffic.entry(object).or_default() += batch;
    }

    /// Charge a sequential stage-input scan of `object`: read traffic plus
    /// deserialization CPU.
    pub fn charge_input_scan(&mut self, object: ObjectId, bytes: u64) {
        self.metrics.input_bytes += bytes;
        self.add_traffic(object, AccessBatch::sequential_read(bytes));
        self.metrics.cpu_ns += bytes as f64 * self.rt.cost.scan_ns_per_byte;
    }

    /// Charge a sequential stage-output materialization of `object`: write
    /// traffic plus serialization CPU.
    pub fn charge_materialize(&mut self, object: ObjectId, bytes: u64) {
        self.metrics.output_bytes += bytes;
        self.add_traffic(object, AccessBatch::sequential_write(bytes));
        self.metrics.cpu_ns += bytes as f64 * self.rt.cost.write_ns_per_byte;
    }

    /// Charge random working-set accesses (hash probes, index walks).
    /// Attributed to operator scratch.
    pub fn charge_random(&mut self, reads: u64, writes: u64) {
        self.add_traffic(
            ObjectId::Scratch,
            AccessBatch::random_reads(reads) + AccessBatch::random_writes(writes),
        );
    }

    /// Charge an operator pass over `records` records with the given hint.
    pub fn charge_op(&mut self, records: u64, op: &OpCost) {
        self.metrics.cpu_ns += records as f64 * op.cpu_ns_per_record;
        let reads = (records as f64 * op.rnd_reads_per_record).round() as u64;
        let writes = (records as f64 * op.rnd_writes_per_record).round() as u64;
        self.charge_random(reads, writes);
    }

    /// Charge writing `bytes` of shuffle output: write traffic plus
    /// serialization CPU.
    pub fn charge_shuffle_write(&mut self, shuffle: ShuffleId, bytes: u64) {
        self.metrics.shuffle_write_bytes += bytes;
        self.metrics.output_bytes += bytes;
        self.add_traffic(
            ObjectId::ShuffleWrite { shuffle: shuffle.0 },
            AccessBatch::sequential_write(bytes),
        );
        self.metrics.cpu_ns += bytes as f64 * self.rt.cost.write_ns_per_byte;
        if self.rt.shuffle_through_disk {
            // MapReduce mode: the map output is materialized on disk.
            self.metrics.cpu_ns +=
                bytes as f64 * self.rt.cost.disk_write_ns_per_byte + self.rt.cost.disk_seek_ns;
        }
    }

    /// Charge fetching `bytes` of shuffle input spread over `buckets`
    /// buckets: read traffic, deserialization CPU, plus the per-bucket fetch
    /// overhead (connection setup CPU and index-walk random reads).
    pub fn charge_shuffle_read(&mut self, shuffle: ShuffleId, bytes: u64, buckets: u64) {
        self.metrics.shuffle_read_bytes += bytes;
        self.metrics.input_bytes += bytes;
        self.metrics.shuffle_buckets_read += buckets;
        let object = ObjectId::ShuffleFetch { shuffle: shuffle.0 };
        self.add_traffic(object, AccessBatch::sequential_read(bytes));
        let mut fetch_ns = bytes as f64 * self.rt.cost.scan_ns_per_byte
            + buckets as f64 * self.rt.cost.bucket_overhead_ns;
        if self.rt.shuffle_through_disk {
            // MapReduce mode: reducers re-read materialized map output from
            // disk, one seek per bucket.
            fetch_ns += bytes as f64 * self.rt.cost.disk_read_ns_per_byte
                + buckets as f64 * self.rt.cost.disk_seek_ns;
        }
        self.metrics.cpu_ns += fetch_ns;
        // Mirror into the profiler's shuffle-fetch bucket so the breakdown
        // can split fetch processing out of the compute component.
        self.metrics.shuffle_fetch_ns += fetch_ns;
        // Bucket index walks belong to the fetch segment, not to scratch.
        self.add_traffic(
            object,
            AccessBatch::random_reads(buckets * self.rt.cost.bucket_random_reads),
        );
    }

    /// Charge a hash-aggregation pass over `records` records against a
    /// table of `table_bytes`. Cache-resident tables (small combiner maps)
    /// cost CPU plus a trickle of cold misses; tables beyond
    /// `cache_resident_bytes` pay full per-probe memory traffic — the
    /// mechanism that makes large aggregation state tier-sensitive.
    pub fn charge_hash_ops(&mut self, records: u64, table_bytes: u64) {
        let cpu = records as f64 * self.rt.cost.per_record_ns * 0.6;
        self.charge_cpu_ns(cpu);
        let (reads, writes) = if table_bytes <= self.rt.cost.cache_resident_bytes {
            let f = self.rt.cost.hash_cold_fraction;
            (
                (records as f64 * f).round() as u64,
                (records as f64 * f * 0.5).round() as u64,
            )
        } else {
            (
                (records as f64 * self.rt.cost.hash_reads_per_record).round() as u64,
                (records as f64 * self.rt.cost.hash_writes_per_record).round() as u64,
            )
        };
        self.charge_random(reads, writes);
    }

    /// Record records flowing through the terminal operator.
    pub fn charge_records(&mut self, records_in: u64, records_out: u64) {
        self.metrics.records_in += records_in;
        self.metrics.records_out += records_out;
    }

    /// Record a network charge for the scheduler to turn into a flow on the
    /// network plane. A no-op under loopback wiring (no topology context)
    /// and for empty payloads, so pre-plane runs never see it.
    pub fn record_net(&mut self, kind: NetChargeKind, peer: NetPeer, inbound: bool, bytes: u64) {
        if self.net_ctx.is_none() || bytes == 0 {
            return;
        }
        self.net_charges.push(NetCharge {
            kind,
            peer,
            inbound,
            bytes,
        });
    }

    /// Record the per-source network charges of a reduce-side fetch: one
    /// inbound charge per map executor that produced bytes for `reduce`.
    /// Complements [`charge_shuffle_read`](Self::charge_shuffle_read) (which
    /// prices the memory/CPU side) and is a no-op under loopback wiring.
    pub fn charge_shuffle_sources(&mut self, shuffle: ShuffleId, reduce: usize) {
        if self.net_ctx.is_none() {
            return;
        }
        for (exec, bytes) in self.rt.shuffle.reduce_sources(shuffle, reduce) {
            self.record_net(
                NetChargeKind::ShuffleFetch,
                NetPeer::Executor(exec),
                true,
                bytes,
            );
        }
    }

    /// Read a DFS block through the network plane's locality lens: with a
    /// topology configured, live replicas are tried closest-first
    /// (node-local > rack-local > remote, declaration order within a
    /// class) and the serving datanode is charged as an inbound transfer.
    /// Without one this is exactly `read_block(block, None)`.
    pub fn dfs_read(&mut self, block: &BlockInfo) -> Result<Arc<Vec<u8>>, DfsError> {
        let client = self.rt.dfs();
        let Some(ctx) = self.net_ctx.clone() else {
            return client.read_block(block, None);
        };
        let (data, served) = client.read_block_ranked(block, |d| {
            match ctx.topo.locality(ctx.topo.node_of_datanode(d.0), ctx.node) {
                memtier_netsim::Locality::NodeLocal => 0,
                memtier_netsim::Locality::RackLocal => 1,
                memtier_netsim::Locality::Remote => 2,
            }
        })?;
        self.record_net(
            NetChargeKind::DfsRead,
            NetPeer::Datanode(served.0),
            true,
            data.len() as u64,
        );
        Ok(data)
    }

    /// Write a DFS file, charging one outbound transfer per block replica
    /// when a topology is configured (replica fan-out is network traffic).
    pub fn dfs_write(
        &mut self,
        path: &str,
        data: &[u8],
        block_size: usize,
        replication: usize,
    ) -> Result<FileStatus, DfsError> {
        let status = self
            .rt
            .dfs()
            .write_file(path, data, block_size, replication)?;
        if self.net_ctx.is_some() {
            for block in &status.blocks {
                for &replica in &block.replicas {
                    self.record_net(
                        NetChargeKind::DfsWrite,
                        NetPeer::Datanode(replica.0),
                        false,
                        block.len as u64,
                    );
                }
            }
        }
        Ok(status)
    }
}

fn downcast<T: Data>(part: AnyPart, parent: &Arc<dyn RddBase>) -> Arc<Vec<T>> {
    part.downcast::<Vec<T>>().unwrap_or_else(|_| {
        panic!(
            "lineage type error: partition of {} is not Vec<{}>",
            parent.name(),
            std::any::type_name::<T>()
        )
    })
}

/// A typed handle onto a lineage node. Cloning is cheap (two `Arc` bumps).
///
/// # Examples
///
/// ```
/// use sparklite::{SparkConf, SparkContext};
///
/// let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
/// let mut counts = sc
///     .parallelize(vec!["a", "b", "a"], 2)
///     .map(|w| (w.to_string(), 1u64))
///     .reduce_by_key(|x, y| x + y)
///     .collect()
///     .unwrap();
/// counts.sort();
/// assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 1)]);
/// ```
pub struct Rdd<T: Data> {
    pub(crate) node: Arc<dyn RddBase>,
    pub(crate) ctx: SparkContext,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            node: Arc::clone(&self.node),
            ctx: self.ctx.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Data> Rdd<T> {
    /// Wrap a lineage node (crate-internal; users go through transformations
    /// and `SparkContext` sources).
    pub(crate) fn from_node(node: Arc<dyn RddBase>, ctx: SparkContext) -> Rdd<T> {
        Rdd {
            node,
            ctx,
            _marker: PhantomData,
        }
    }

    /// This RDD's id.
    pub fn id(&self) -> RddId {
        self.node.id()
    }

    /// Operator name.
    pub fn name(&self) -> String {
        self.node.name()
    }

    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.node.num_partitions()
    }

    /// The owning context.
    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    /// Persist at the given level; returns the same RDD for chaining.
    pub fn persist(&self, level: StorageLevel) -> Rdd<T> {
        self.node.set_storage_level(level);
        self.clone()
    }

    /// Shorthand for `persist(StorageLevel::MemoryOnly)`.
    pub fn cache(&self) -> Rdd<T> {
        self.persist(StorageLevel::MemoryOnly)
    }

    /// Drop persistence and free cached blocks. Emits a structured
    /// [`RddUnpersisted`](crate::events::Event::RddUnpersisted) event with
    /// the bytes freed when an event sink is attached.
    pub fn unpersist(&self) {
        self.node.set_storage_level(StorageLevel::None);
        let freed = self.ctx.runtime().cache.unpersist(self.id().0);
        self.ctx.emit_unpersist(self.id().0, freed);
    }

    /// Current storage level.
    pub fn storage_level(&self) -> StorageLevel {
        self.node.storage_level()
    }

    /// The underlying lineage node (for the scheduler).
    pub(crate) fn node(&self) -> &Arc<dyn RddBase> {
        &self.node
    }
}
