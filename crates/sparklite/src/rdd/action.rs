//! Actions: the operations that trigger job execution.

use crate::error::{Result, SparkError};
use crate::memsize::{slice_mem_size, MemSize};
use crate::rdd::{Data, Key, Rdd, TaskEnv};
use std::collections::HashMap;
use std::sync::Arc;

impl<T: Data> Rdd<T> {
    /// Materialize every partition on the driver.
    pub fn collect(&self) -> Result<Vec<T>> {
        let node = Arc::clone(&self.node);
        let parts: Vec<Vec<T>> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                // Serializing results back to the driver is a stage output.
                env.charge_materialize(
                    memtier_memsim::ObjectId::Scratch,
                    slice_mem_size(&data) as u64,
                );
                (*data).clone()
            }),
        )?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Count records.
    pub fn count(&self) -> Result<u64> {
        let node = Arc::clone(&self.node);
        let parts: Vec<u64> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                env.narrow_input::<T>(&node, part).len() as u64
            }),
        )?;
        Ok(parts.into_iter().sum())
    }

    /// Reduce all records with `f`.
    ///
    /// Errors with [`SparkError::EmptyCollection`] on an empty RDD.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Result<T> {
        let node = Arc::clone(&self.node);
        let f = Arc::new(f);
        let task_f = Arc::clone(&f);
        let parts: Vec<Option<T>> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                env.charge_cpu_ns(data.len() as f64 * env.rt.cost.per_record_ns * 0.5);
                data.iter().cloned().reduce(|a, b| task_f(a, b))
            }),
        )?;
        parts
            .into_iter()
            .flatten()
            .reduce(|a, b| f(a, b))
            .ok_or(SparkError::EmptyCollection)
    }

    /// Fold with a zero value (applied per partition, then across).
    pub fn fold(&self, zero: T, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> Result<T> {
        let node = Arc::clone(&self.node);
        let f = Arc::new(f);
        let task_f = Arc::clone(&f);
        let z = zero.clone();
        let parts: Vec<T> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                env.charge_cpu_ns(data.len() as f64 * env.rt.cost.per_record_ns * 0.5);
                data.iter().cloned().fold(z.clone(), |a, b| task_f(a, b))
            }),
        )?;
        Ok(parts.into_iter().fold(zero, |a, b| f(a, b)))
    }

    /// The first `n` records (in partition order).
    ///
    /// Simplification vs Spark: all partitions are computed rather than
    /// incrementally scanning — acceptable because the engine's partitions
    /// are materialized per job anyway.
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// The first record.
    pub fn first(&self) -> Result<T> {
        self.take(1)?
            .into_iter()
            .next()
            .ok_or(SparkError::EmptyCollection)
    }

    /// Describe the stage plan an action on this RDD would execute —
    /// Spark's `toDebugString` for the DAG scheduler. One line per stage:
    /// id, kind, terminal operator, task count, parent stages, and whether
    /// the stage would be skipped (its shuffle output already exists).
    pub fn explain(&self) -> String {
        use crate::scheduler::dag::{build_plan, StageKind};
        let plan = build_plan(&self.node, self.ctx.runtime());
        let mut out = String::new();
        for stage in &plan.stages {
            let kind = match stage.kind {
                StageKind::ShuffleMap(_) => "ShuffleMap",
                StageKind::Result => "Result",
            };
            let parents: Vec<String> = stage.parents.iter().map(|p| p.0.to_string()).collect();
            out.push_str(&format!(
                "Stage {}: {kind}({}) tasks={} parents=[{}]{}\n",
                stage.id.0,
                stage.terminal.name(),
                stage.num_tasks,
                parents.join(","),
                if stage.skippable { " [skipped]" } else { "" }
            ));
        }
        out
    }
}

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// Count records per key (reduce-side aggregation, then driver merge).
    pub fn count_by_key(&self) -> Result<HashMap<K, u64>> {
        let counts = self
            .map(|(k, _)| (k.clone(), 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect()?;
        Ok(counts.into_iter().collect())
    }
}

impl Rdd<String> {
    /// Write one text part-file per partition under `path` in the DFS.
    pub fn save_as_text_file(&self, path: &str) -> Result<()> {
        let node = Arc::clone(&self.node);
        let path = path.to_string();
        let results: Vec<std::result::Result<(), String>> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<String>(&node, part);
                let mut bytes = Vec::with_capacity(data.iter().map(|l| l.len() + 1).sum());
                for line in data.iter() {
                    bytes.extend_from_slice(line.as_bytes());
                    bytes.push(b'\n');
                }
                env.charge_materialize(memtier_memsim::ObjectId::Scratch, bytes.len() as u64);
                let block_size = env.rt.dfs_block_size;
                let replication = env.rt.dfs_replication;
                env.dfs_write(
                    &format!("{path}/part-{part:05}"),
                    &bytes,
                    block_size,
                    replication,
                )
                .map(|_| ())
                .map_err(|e| e.to_string())
            }),
        )?;
        for r in results {
            r.map_err(SparkError::Dfs)?;
        }
        Ok(())
    }
}

// `MemSize` for the Result used inside save_as_text_file's task closure is
// not needed (results are not RDD records), but the generic bound on
// `run_job` only requires `Send + 'static`, which `Result<(), String>`
// satisfies.
#[allow(dead_code)]
fn _assert_memsize_unrelated<T: MemSize>() {}
