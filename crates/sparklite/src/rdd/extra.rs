//! Additional RDD operators: `coalesce`, `glom`, `key_by`,
//! `zip_with_index`, `aggregate`, `top`, and numeric reductions.

use crate::cost::OpCost;
use crate::error::Result;
use crate::rdd::map::impl_vitals;
use crate::rdd::{Computed, Data, Dep, Rdd, RddBase, RddVitals, TaskEnv};
use crate::storage::StorageLevel;
use std::marker::PhantomData;
use std::sync::Arc;

/// `coalesce`: merge adjacent parent partitions into fewer child
/// partitions *without* a shuffle (each child reads a contiguous run of
/// parents inside the same stage, exactly like Spark's narrow coalesce).
pub struct CoalescedRdd<T: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    /// Child partition `i` reads parent partitions `ranges[i]`.
    ranges: Vec<std::ops::Range<usize>>,
    _m: PhantomData<fn() -> T>,
}

impl<T: Data> CoalescedRdd<T> {
    pub(crate) fn new(vitals: RddVitals, parent: Arc<dyn RddBase>, target: usize) -> Self {
        let parents = parent.num_partitions();
        let target = target.clamp(1, parents.max(1));
        assert_eq!(vitals.partitions, target);
        // Even contiguous ranges (same assignment Spark's
        // DefaultPartitionCoalescer produces for locality-free parents).
        let ranges = (0..target)
            .map(|i| {
                let lo = i * parents / target;
                let hi = (i + 1) * parents / target;
                lo..hi
            })
            .collect();
        CoalescedRdd {
            vitals,
            parent,
            ranges,
            _m: PhantomData,
        }
    }
}

impl<T: Data> RddBase for CoalescedRdd<T> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let mut out: Vec<T> = Vec::new();
        for p in self.ranges[part].clone() {
            let input = env.narrow_input::<T>(&self.parent, p);
            out.extend(input.iter().cloned());
        }
        let n = out.len() as u64;
        env.charge_records(n, n);
        Computed::from_vec(out)
    }
}

impl<T: Data> Rdd<T> {
    /// Reduce the partition count without a shuffle. `target` is clamped to
    /// `[1, current]`.
    pub fn coalesce(&self, target: usize) -> Rdd<T> {
        let target = target.clamp(1, self.num_partitions().max(1));
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "coalesce", target);
        Rdd::from_node(
            Arc::new(CoalescedRdd::<T>::new(
                vitals,
                Arc::clone(&self.node),
                target,
            )),
            self.ctx.clone(),
        )
    }

    /// Materialize each partition as a single record (`glom`).
    pub fn glom(&self) -> Rdd<Vec<T>> {
        self.map_partitions(|_, items| vec![items.to_vec()], OpCost::cpu(5.0))
    }

    /// Key every record by `f(record)`.
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Rdd<(K, T)> {
        self.map(move |t| (f(t), t.clone()))
    }

    /// Pair each record with its global index (in partition order).
    ///
    /// Like Spark's `zipWithIndex`, this eagerly runs a counting job to
    /// learn partition sizes; the cost of that job is part of the measured
    /// application time.
    pub fn zip_with_index(&self) -> Result<Rdd<(T, u64)>> {
        let node = Arc::clone(&self.node);
        let sizes: Vec<u64> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                env.narrow_input::<T>(&node, part).len() as u64
            }),
        )?;
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for s in sizes {
            offsets.push(acc);
            acc += s;
        }
        Ok(self.map_partitions(
            move |part, items| {
                items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.clone(), offsets[part] + i as u64))
                    .collect()
            },
            OpCost::cpu(8.0),
        ))
    }

    /// Generalized aggregation (`aggregate`): fold each partition with
    /// `seq_op` from `zero`, combine partials with `comb_op` on the driver.
    pub fn aggregate<U: Data>(
        &self,
        zero: U,
        seq_op: impl Fn(U, &T) -> U + Send + Sync + 'static,
        comb_op: impl Fn(U, U) -> U + Send + Sync + 'static,
    ) -> Result<U> {
        let node = Arc::clone(&self.node);
        let z = zero.clone();
        let partials: Vec<U> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                env.charge_cpu_ns(data.len() as f64 * env.rt.cost.per_record_ns * 0.5);
                data.iter().fold(z.clone(), &seq_op)
            }),
        )?;
        Ok(partials.into_iter().fold(zero, comb_op))
    }
}

impl<T: Data + Ord> Rdd<T> {
    /// The `n` largest records (descending), computed with per-partition
    /// top-`n` heaps and a driver merge.
    pub fn top(&self, n: usize) -> Result<Vec<T>> {
        let node = Arc::clone(&self.node);
        let partials: Vec<Vec<T>> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                let cost = env.rt.cost.sort_cost_ns(data.len() as u64);
                env.charge_cpu_ns(cost);
                let mut v: Vec<T> = data.iter().cloned().collect();
                v.sort_unstable_by(|a, b| b.cmp(a));
                v.truncate(n);
                v
            }),
        )?;
        let mut all: Vec<T> = partials.into_iter().flatten().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all.truncate(n);
        Ok(all)
    }

    /// The minimum record; errors on an empty RDD.
    pub fn min(&self) -> Result<T> {
        self.reduce(|a, b| if a <= b { a } else { b })
    }

    /// The maximum record; errors on an empty RDD.
    pub fn max(&self) -> Result<T> {
        self.reduce(|a, b| if a >= b { a } else { b })
    }
}

impl Rdd<f64> {
    /// Sum of all records (0.0 for empty).
    pub fn sum(&self) -> Result<f64> {
        self.fold(0.0, |a, b| a + b)
    }

    /// Arithmetic mean; errors on an empty RDD.
    pub fn mean(&self) -> Result<f64> {
        let (sum, count) = self.aggregate(
            (0.0f64, 0u64),
            |(s, c), &x| (s + x, c + 1),
            |(s1, c1), (s2, c2)| (s1 + s2, c1 + c2),
        )?;
        if count == 0 {
            Err(crate::error::SparkError::EmptyCollection)
        } else {
            Ok(sum / count as f64)
        }
    }
}

impl Rdd<u64> {
    /// Sum of all records (0 for empty).
    pub fn sum(&self) -> Result<u64> {
        self.fold(0, |a, b| a + b)
    }
}

/// Summary statistics of a numeric RDD (Spark's `StatCounter`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatCounter {
    /// Record count.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum (NaN when empty).
    pub min: f64,
    /// Maximum (NaN when empty).
    pub max: f64,
    /// Sum of squared deviations accumulator (for variance).
    m2: f64,
    mean: f64,
}

impl StatCounter {
    fn empty() -> StatCounter {
        StatCounter {
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
            m2: 0.0,
            mean: 0.0,
        }
    }

    fn add(mut self, x: f64) -> StatCounter {
        // Welford's online update: numerically stable within a partition.
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = if self.min.is_nan() {
            x
        } else {
            self.min.min(x)
        };
        self.max = if self.max.is_nan() {
            x
        } else {
            self.max.max(x)
        };
        self
    }

    fn merge(self, other: StatCounter) -> StatCounter {
        if self.count == 0 {
            return other;
        }
        if other.count == 0 {
            return self;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / count as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / count as f64;
        StatCounter {
            count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            m2,
            mean,
        }
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (NaN when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl crate::memsize::MemSize for StatCounter {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<StatCounter>()
    }
}

impl Rdd<f64> {
    /// One-pass summary statistics (count/sum/min/max/mean/variance) —
    /// Spark's `DoubleRDDFunctions.stats()`.
    pub fn stats(&self) -> Result<StatCounter> {
        self.aggregate(
            StatCounter::empty(),
            |acc, &x| acc.add(x),
            StatCounter::merge,
        )
    }

    /// Histogram over `buckets` even-width bins spanning `[min, max]`.
    /// Returns `(bucket boundaries, counts)`; errors on an empty RDD.
    /// Values exactly at the upper bound land in the last bucket, like
    /// Spark's `histogram(n)`.
    pub fn histogram(&self, buckets: usize) -> Result<(Vec<f64>, Vec<u64>)> {
        assert!(buckets > 0, "need at least one bucket");
        let s = self.stats()?;
        if s.count == 0 {
            return Err(crate::error::SparkError::EmptyCollection);
        }
        let (lo, hi) = (s.min, s.max);
        let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
        let bounds: Vec<f64> = (0..=buckets).map(|i| lo + width * i as f64).collect();
        let counts = self.aggregate(
            vec![0u64; buckets],
            move |mut acc, &x| {
                let idx = (((x - lo) / width) as usize).min(buckets - 1);
                acc[idx] += 1;
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )?;
        Ok((bounds, counts))
    }
}

impl<T: Data> Rdd<T> {
    /// Checkpoint: materialize this RDD through the DFS and return a new
    /// RDD whose lineage starts at the checkpoint — Spark's mechanism for
    /// truncating long iterative lineages. The write and the (lazy)
    /// re-reads are charged at DFS/disk rates.
    pub fn checkpoint(&self) -> Result<Rdd<T>> {
        let node = Arc::clone(&self.node);
        // Materialize every partition, charging a DFS write.
        let parts: Vec<Vec<T>> = self.ctx.run_job(
            self,
            Arc::new(move |part, env: &mut TaskEnv<'_>| {
                let data = env.narrow_input::<T>(&node, part);
                let bytes = crate::memsize::slice_mem_size(&data) as u64;
                env.charge_materialize(memtier_memsim::ObjectId::Scratch, bytes);
                // Replicated DFS write: disk cost per replica.
                env.charge_cpu_ns(
                    bytes as f64 * env.rt.cost.disk_write_ns_per_byte * 2.0
                        + env.rt.cost.disk_seek_ns,
                );
                (*data).clone()
            }),
        )?;
        // The checkpointed RDD is a generator over the materialized
        // partitions: no upstream lineage, re-reads priced as disk scans.
        let parts = Arc::new(parts);
        let disk_read = self.ctx.runtime().cost.disk_read_ns_per_byte;
        let seek = self.ctx.runtime().cost.disk_seek_ns;
        let n = parts.len();
        let checkpointed = self.ctx.generate(
            n.max(1),
            move |p| parts.get(p).cloned().unwrap_or_default(),
            OpCost::cpu(0.0),
        );
        // Reading a checkpoint back costs a disk scan; model it as a
        // per-partition env charge by wrapping in an env-aware pass.
        Ok(checkpointed.map_partitions_with_env(move |_, items, env| {
            let bytes = crate::memsize::slice_mem_size(items) as u64;
            env.charge_cpu_ns(bytes as f64 * disk_read + seek);
            items.to_vec()
        }))
    }
}
