//! Post-shuffle RDDs: the reduce side of wide dependencies.
//!
//! A [`ShuffledRdd`] is deliberately type-erased: the typed bucketing
//! (map side) and merging (reduce side) logic is captured in closures built
//! by the constructors below, where the `K: Key` bounds are available. This
//! keeps [`RddBase`] object-safe for the scheduler while the whole shuffle
//! stays statically typed end to end.

use crate::cost::OpCost;
use crate::memsize::slice_mem_size;
use crate::rdd::map::impl_vitals;
use crate::rdd::{
    Computed, Data, Dep, Key, Rdd, RddBase, RddVitals, ShuffleDep, ShuffleWriter, TaskEnv,
};
use crate::shuffle::{Bucket, DetHasher, Partitioner, ShuffleId};
use crate::storage::StorageLevel;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Spark's combiner triple: how reduce-side values fold into combiners.
pub struct Aggregator<K, V, C> {
    /// Turn the first value of a key into a combiner.
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    /// Fold another value into an existing combiner.
    pub merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    /// Merge two combiners (across map outputs).
    pub merge_combiners: Arc<dyn Fn(C, C) -> C + Send + Sync>,
    /// Combine on the map side before writing buckets (`reduce_by_key`
    /// does; `group_by_key` doesn't).
    pub map_side_combine: bool,
    /// Marker so the type parameters are all used.
    pub _marker: std::marker::PhantomData<fn(K)>,
}

impl<K, V, C> Clone for Aggregator<K, V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: Arc::clone(&self.create),
            merge_value: Arc::clone(&self.merge_value),
            merge_combiners: Arc::clone(&self.merge_combiners),
            map_side_combine: self.map_side_combine,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<K, V, C> Aggregator<K, V, C> {
    /// Build an aggregator from the three combiner functions.
    pub fn new(
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
        map_side_combine: bool,
    ) -> Self {
        Aggregator {
            create: Arc::new(create),
            merge_value: Arc::new(merge_value),
            merge_combiners: Arc::new(merge_combiners),
            map_side_combine,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A closure-backed shuffle writer (see module docs).
pub(crate) struct FnShuffleWriter {
    f: Box<dyn Fn(usize, &mut TaskEnv<'_>) + Send + Sync>,
}

impl FnShuffleWriter {
    /// Wrap a map-side closure.
    pub(crate) fn new(f: Box<dyn Fn(usize, &mut TaskEnv<'_>) + Send + Sync>) -> Self {
        FnShuffleWriter { f }
    }
}

impl ShuffleWriter for FnShuffleWriter {
    fn write_partition(&self, map_part: usize, env: &mut TaskEnv<'_>) {
        (self.f)(map_part, env)
    }
}

/// The reduce side of a shuffle: fetches buckets for its partition and
/// merges them with the strategy its constructor captured.
pub struct ShuffledRdd {
    vitals: RddVitals,
    dep: Arc<ShuffleDep>,
    reduce: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> Computed + Send + Sync>,
}

impl RddBase for ShuffledRdd {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Shuffle(Arc::clone(&self.dep))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        (self.reduce)(part, env)
    }
}

/// Write one typed bucket to the shuffle manager, charging the env.
fn put_typed_bucket<K: Key, C: Data>(
    env: &mut TaskEnv<'_>,
    shuffle_id: ShuffleId,
    map_part: usize,
    reduce_part: usize,
    items: Vec<(K, C)>,
) {
    if items.is_empty() {
        return;
    }
    let bytes = slice_mem_size(&items) as u64;
    let records = items.len() as u64;
    env.charge_shuffle_write(shuffle_id, bytes);
    env.rt.shuffle.put_bucket(
        shuffle_id,
        map_part,
        reduce_part,
        Bucket {
            data: Arc::new(items),
            records,
            bytes,
        },
    );
}

/// Construct an aggregating shuffle (`reduce_by_key`, `combine_by_key`,
/// `group_by_key`).
pub(crate) fn shuffled_aggregate<K: Key, V: Data, C: Data>(
    parent: &Rdd<(K, V)>,
    partitioner: Arc<dyn Partitioner<K>>,
    agg: Aggregator<K, V, C>,
    name: &str,
) -> Rdd<(K, C)> {
    let ctx = parent.ctx.clone();
    let num_reduces = partitioner.num_partitions();
    let num_maps = parent.num_partitions();
    let shuffle_id = ctx.runtime().shuffle.register(num_maps, num_reduces);

    // --- map side -----------------------------------------------------
    let parent_node = Arc::clone(&parent.node);
    let w_partitioner = Arc::clone(&partitioner);
    let w_agg = agg.clone();
    let writer = FnShuffleWriter {
        f: Box::new(move |map_part, env| {
            let input = env.narrow_input::<(K, V)>(&parent_node, map_part);
            let n = input.len() as u64;
            env.charge_records(n, 0);
            if w_agg.map_side_combine {
                let mut buckets: Vec<HashMap<K, C, DetHasher>> =
                    (0..num_reduces).map(|_| HashMap::default()).collect();
                for (k, v) in input.iter() {
                    let b = w_partitioner.partition(k);
                    let merged = match buckets[b].remove(k) {
                        Some(c) => (w_agg.merge_value)(c, v.clone()),
                        None => (w_agg.create)(v.clone()),
                    };
                    buckets[b].insert(k.clone(), merged);
                }
                let table_bytes: u64 = buckets
                    .iter()
                    .map(|m| {
                        m.iter()
                            .map(|(k, c)| k.mem_size() + c.mem_size())
                            .sum::<usize>() as u64
                    })
                    .sum();
                env.charge_hash_ops(n, table_bytes);
                for (b, bucket) in buckets.into_iter().enumerate() {
                    put_typed_bucket(env, shuffle_id, map_part, b, bucket.into_iter().collect());
                }
            } else {
                let mut buckets: Vec<Vec<(K, V)>> = (0..num_reduces).map(|_| Vec::new()).collect();
                for (k, v) in input.iter() {
                    buckets[w_partitioner.partition(k)].push((k.clone(), v.clone()));
                }
                env.charge_op(n, &OpCost::cpu(12.0));
                for (b, bucket) in buckets.into_iter().enumerate() {
                    put_typed_bucket(env, shuffle_id, map_part, b, bucket);
                }
            }
        }),
    };

    // --- reduce side ----------------------------------------------------
    let r_agg = agg;
    let reduce = move |part: usize, env: &mut TaskEnv<'_>| -> Computed {
        let buckets = env.rt.shuffle.fetch_reduce(shuffle_id, part);
        let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
        env.charge_shuffle_read(shuffle_id, total_bytes, buckets.len() as u64);
        env.charge_shuffle_sources(shuffle_id, part);
        let mut map: HashMap<K, C, DetHasher> = HashMap::default();
        let mut n_in = 0u64;
        for bucket in buckets {
            if r_agg.map_side_combine {
                let items = bucket
                    .data
                    .downcast::<Vec<(K, C)>>()
                    .expect("map-combined bucket type");
                n_in += items.len() as u64;
                for (k, c) in items.iter() {
                    let merged = match map.remove(k) {
                        Some(acc) => (r_agg.merge_combiners)(acc, c.clone()),
                        None => c.clone(),
                    };
                    map.insert(k.clone(), merged);
                }
            } else {
                let items = bucket
                    .data
                    .downcast::<Vec<(K, V)>>()
                    .expect("raw bucket type");
                n_in += items.len() as u64;
                for (k, v) in items.iter() {
                    let merged = match map.remove(k) {
                        Some(acc) => (r_agg.merge_value)(acc, v.clone()),
                        None => (r_agg.create)(v.clone()),
                    };
                    map.insert(k.clone(), merged);
                }
            }
        }
        let out: Vec<(K, C)> = map.into_iter().collect();
        env.charge_hash_ops(n_in, slice_mem_size(&out) as u64);
        env.charge_records(n_in, out.len() as u64);
        Computed::from_vec(out)
    };

    let dep = Arc::new(ShuffleDep {
        shuffle_id,
        parent: Arc::clone(&parent.node),
        num_reduces,
        writer: Arc::new(writer),
    });
    let vitals = RddVitals::new(ctx.next_rdd_id(), name, num_reduces);
    Rdd::from_node(
        Arc::new(ShuffledRdd {
            vitals,
            dep,
            reduce: Arc::new(reduce),
        }),
        ctx,
    )
}

/// Construct a pass-through shuffle (`partition_by`, `sort_by_key`,
/// `repartition`): records are re-bucketed and optionally sorted within the
/// reduce partition, but not aggregated.
pub(crate) fn shuffled_plain<K: Key, V: Data>(
    parent: &Rdd<(K, V)>,
    partitioner: Arc<dyn Partitioner<K>>,
    sort_cmp: Option<Arc<dyn Fn(&K, &K) -> Ordering + Send + Sync>>,
    name: &str,
) -> Rdd<(K, V)> {
    let ctx = parent.ctx.clone();
    let num_reduces = partitioner.num_partitions();
    let num_maps = parent.num_partitions();
    let shuffle_id = ctx.runtime().shuffle.register(num_maps, num_reduces);

    let parent_node = Arc::clone(&parent.node);
    let w_partitioner = Arc::clone(&partitioner);
    let writer = FnShuffleWriter {
        f: Box::new(move |map_part, env| {
            let input = env.narrow_input::<(K, V)>(&parent_node, map_part);
            let n = input.len() as u64;
            env.charge_records(n, 0);
            let mut buckets: Vec<Vec<(K, V)>> = (0..num_reduces).map(|_| Vec::new()).collect();
            for (k, v) in input.iter() {
                buckets[w_partitioner.partition(k)].push((k.clone(), v.clone()));
            }
            env.charge_op(n, &OpCost::cpu(12.0));
            for (b, bucket) in buckets.into_iter().enumerate() {
                put_typed_bucket(env, shuffle_id, map_part, b, bucket);
            }
        }),
    };

    let reduce = move |part: usize, env: &mut TaskEnv<'_>| -> Computed {
        let buckets = env.rt.shuffle.fetch_reduce(shuffle_id, part);
        let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
        env.charge_shuffle_read(shuffle_id, total_bytes, buckets.len() as u64);
        env.charge_shuffle_sources(shuffle_id, part);
        let mut out: Vec<(K, V)> = Vec::new();
        for bucket in buckets {
            let items = bucket
                .data
                .downcast::<Vec<(K, V)>>()
                .expect("plain bucket type");
            out.extend(items.iter().cloned());
        }
        if let Some(cmp) = &sort_cmp {
            let sort_ns = {
                let c = &env.rt.cost;
                c.sort_cost_ns(out.len() as u64)
            };
            out.sort_by(|a, b| cmp(&a.0, &b.0));
            env.charge_cpu_ns(sort_ns);
        }
        let n = out.len() as u64;
        env.charge_records(n, n);
        Computed::from_vec(out)
    };

    let dep = Arc::new(ShuffleDep {
        shuffle_id,
        parent: Arc::clone(&parent.node),
        num_reduces,
        writer: Arc::new(writer),
    });
    let vitals = RddVitals::new(ctx.next_rdd_id(), name, num_reduces);
    Rdd::from_node(
        Arc::new(ShuffledRdd {
            vitals,
            dep,
            reduce: Arc::new(reduce),
        }),
        ctx,
    )
}
