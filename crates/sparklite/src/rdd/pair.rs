//! Key-value transformations (`PairRDDFunctions`).

use crate::cost::OpCost;
use crate::rdd::shuffled::{shuffled_aggregate, shuffled_plain, Aggregator};
use crate::rdd::{Data, Key, Rdd};
use crate::shuffle::HashPartitioner;
use std::sync::Arc;

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// Merge values per key with `f`, combining on the map side
    /// (`reduceByKey`). Output has the parent's partition count.
    pub fn reduce_by_key(&self, f: impl Fn(V, V) -> V + Send + Sync + 'static) -> Rdd<(K, V)> {
        self.reduce_by_key_with_partitions(f, self.num_partitions())
    }

    /// `reduce_by_key` with an explicit reduce-partition count.
    pub fn reduce_by_key_with_partitions(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
        partitions: usize,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        let agg = Aggregator::new(|v: V| v, move |c, v| f(c, v), move |a, b| f2(a, b), true);
        shuffled_aggregate(
            self,
            Arc::new(HashPartitioner::new(partitions)),
            agg,
            "reduce_by_key",
        )
    }

    /// Generalized combiner shuffle (`combineByKey`).
    pub fn combine_by_key<C: Data>(
        &self,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
        partitions: usize,
    ) -> Rdd<(K, C)> {
        let agg = Aggregator::new(create, merge_value, merge_combiners, true);
        shuffled_aggregate(
            self,
            Arc::new(HashPartitioner::new(partitions)),
            agg,
            "combine_by_key",
        )
    }

    /// Group all values per key (`groupByKey` — no map-side combining, like
    /// Spark, which is why it shuffles so much more than `reduce_by_key`).
    pub fn group_by_key(&self) -> Rdd<(K, Vec<V>)> {
        self.group_by_key_with_partitions(self.num_partitions())
    }

    /// `group_by_key` with an explicit partition count.
    pub fn group_by_key_with_partitions(&self, partitions: usize) -> Rdd<(K, Vec<V>)> {
        let agg = Aggregator::new(
            |v: V| vec![v],
            |mut c: Vec<V>, v| {
                c.push(v);
                c
            },
            |mut a: Vec<V>, mut b| {
                a.append(&mut b);
                a
            },
            false,
        );
        shuffled_aggregate(
            self,
            Arc::new(HashPartitioner::new(partitions)),
            agg,
            "group_by_key",
        )
    }

    /// Re-bucket by key hash without aggregation (`partitionBy`).
    pub fn partition_by(&self, partitions: usize) -> Rdd<(K, V)> {
        shuffled_plain(
            self,
            Arc::new(HashPartitioner::new(partitions)),
            None,
            "partition_by",
        )
    }

    /// Transform values, keeping keys and partitioning.
    pub fn map_values<W: Data>(&self, f: impl Fn(&V) -> W + Send + Sync + 'static) -> Rdd<(K, W)> {
        self.map(move |(k, v)| (k.clone(), f(v)))
    }

    /// Transform values with a cost hint.
    pub fn map_values_with_cost<W: Data>(
        &self,
        f: impl Fn(&V) -> W + Send + Sync + 'static,
        cost: OpCost,
    ) -> Rdd<(K, W)> {
        self.map_with_cost(move |(k, v)| (k.clone(), f(v)), cost)
    }

    /// The keys.
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k.clone())
    }

    /// The values.
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v.clone())
    }

    /// Inner join (via `cogroup`).
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>, partitions: usize) -> Rdd<(K, (V, W))> {
        self.cogroup(other, partitions).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in vs {
                for w in ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }
}

impl<T: Key> Rdd<T> {
    /// Remove duplicates (shuffle-based, like Spark's `distinct`).
    pub fn distinct(&self) -> Rdd<T> {
        self.map(|t| (t.clone(), ())).reduce_by_key(|a, _| a).keys()
    }
}

impl<T: Key> Rdd<T> {
    /// Records of `self` that do not appear in `other` (`subtract`),
    /// de-duplicated like Spark's set semantics for key-only subtraction.
    pub fn subtract(&self, other: &Rdd<T>) -> Rdd<T> {
        let partitions = self.num_partitions().max(1);
        self.map(|t| (t.clone(), ()))
            .cogroup(&other.map(|t| (t.clone(), ())), partitions)
            .flat_map(|(k, (mine, theirs))| {
                if !mine.is_empty() && theirs.is_empty() {
                    vec![k.clone()]
                } else {
                    vec![]
                }
            })
    }

    /// Distinct records present in both RDDs (`intersection`).
    pub fn intersection(&self, other: &Rdd<T>) -> Rdd<T> {
        let partitions = self.num_partitions().max(1);
        self.map(|t| (t.clone(), ()))
            .cogroup(&other.map(|t| (t.clone(), ())), partitions)
            .flat_map(|(k, (mine, theirs))| {
                if !mine.is_empty() && !theirs.is_empty() {
                    vec![k.clone()]
                } else {
                    vec![]
                }
            })
    }
}
