//! Narrow element-wise transformations: `map`, `filter`, `flat_map`,
//! `map_partitions`, `sample`.
//!
//! Narrow operators are pipelined inside a task, so they charge CPU time and
//! optional working-set accesses (via [`OpCost`]) but *no* materialization
//! traffic — matching how Spark fuses narrow chains into a single task.

use crate::cost::OpCost;
use crate::rdd::{Computed, Data, Dep, Rdd, RddBase, RddVitals, TaskEnv};
use crate::storage::StorageLevel;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::sync::Arc;

macro_rules! impl_vitals {
    () => {
        fn id(&self) -> crate::rdd::RddId {
            self.vitals.id
        }
        fn name(&self) -> String {
            self.vitals.name.clone()
        }
        fn num_partitions(&self) -> usize {
            self.vitals.partitions
        }
        fn storage_level(&self) -> StorageLevel {
            *self.vitals.storage.read()
        }
        fn set_storage_level(&self, level: StorageLevel) {
            *self.vitals.storage.write() = level;
        }
    };
}
pub(crate) use impl_vitals;

/// `map`: apply `f` to every record.
pub struct MapRdd<T: Data, U: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    f: Arc<dyn Fn(&T) -> U + Send + Sync>,
    cost: OpCost,
    _m: PhantomData<fn(T) -> U>,
}

impl<T: Data, U: Data> MapRdd<T, U> {
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        f: Arc<dyn Fn(&T) -> U + Send + Sync>,
        cost: OpCost,
    ) -> Self {
        MapRdd {
            vitals,
            parent,
            f,
            cost,
            _m: PhantomData,
        }
    }
}

impl<T: Data, U: Data> RddBase for MapRdd<T, U> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let out: Vec<U> = input.iter().map(|x| (self.f)(x)).collect();
        let n = input.len() as u64;
        env.charge_op(n, &self.cost);
        env.charge_records(n, n);
        Computed::from_vec(out)
    }
}

/// `filter`: keep records satisfying `p`.
pub struct FilterRdd<T: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    p: Arc<dyn Fn(&T) -> bool + Send + Sync>,
    cost: OpCost,
}

impl<T: Data> FilterRdd<T> {
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        p: Arc<dyn Fn(&T) -> bool + Send + Sync>,
        cost: OpCost,
    ) -> Self {
        FilterRdd {
            vitals,
            parent,
            p,
            cost,
        }
    }
}

impl<T: Data> RddBase for FilterRdd<T> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let out: Vec<T> = input.iter().filter(|x| (self.p)(x)).cloned().collect();
        env.charge_op(input.len() as u64, &self.cost);
        env.charge_records(input.len() as u64, out.len() as u64);
        Computed::from_vec(out)
    }
}

/// `flat_map`: apply `f` and flatten.
pub struct FlatMapRdd<T: Data, U: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    f: Arc<dyn Fn(&T) -> Vec<U> + Send + Sync>,
    cost: OpCost,
    _m: PhantomData<fn(T) -> U>,
}

impl<T: Data, U: Data> FlatMapRdd<T, U> {
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        f: Arc<dyn Fn(&T) -> Vec<U> + Send + Sync>,
        cost: OpCost,
    ) -> Self {
        FlatMapRdd {
            vitals,
            parent,
            f,
            cost,
            _m: PhantomData,
        }
    }
}

impl<T: Data, U: Data> RddBase for FlatMapRdd<T, U> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let out: Vec<U> = input.iter().flat_map(|x| (self.f)(x)).collect();
        // The closure's CPU hint is per input record, but emission cost and
        // working-set traffic scale with the records *produced* — a
        // flat_map fanning one record out to a thousand touches memory a
        // thousand times.
        env.charge_cpu_ns(input.len() as f64 * self.cost.cpu_ns_per_record);
        env.charge_cpu_ns(out.len() as f64 * env.rt.cost.per_record_ns * 0.25);
        let n_out = out.len() as u64;
        env.charge_random(
            (n_out as f64 * self.cost.rnd_reads_per_record).round() as u64,
            (n_out as f64 * self.cost.rnd_writes_per_record).round() as u64,
        );
        env.charge_records(input.len() as u64, n_out);
        Computed::from_vec(out)
    }
}

/// `map_partitions`: whole-partition transformation.
pub struct MapPartitionsRdd<T: Data, U: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    f: Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>,
    cost: OpCost,
    _m: PhantomData<fn(T) -> U>,
}

impl<T: Data, U: Data> MapPartitionsRdd<T, U> {
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        f: Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>,
        cost: OpCost,
    ) -> Self {
        MapPartitionsRdd {
            vitals,
            parent,
            f,
            cost,
            _m: PhantomData,
        }
    }
}

impl<T: Data, U: Data> RddBase for MapPartitionsRdd<T, U> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let out = (self.f)(part, &input);
        env.charge_op(input.len() as u64, &self.cost);
        env.charge_records(input.len() as u64, out.len() as u64);
        Computed::from_vec(out)
    }
}

/// `map_partitions_with_env`: whole-partition transformation with access
/// to the task environment, so workload code can charge custom traffic
/// (e.g. broadcast-variable fetches) exactly where it happens.
pub struct MapPartitionsEnvRdd<T: Data, U: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, &[T], &mut TaskEnv<'_>) -> Vec<U> + Send + Sync>,
    _m: PhantomData<fn(T) -> U>,
}

impl<T: Data, U: Data> MapPartitionsEnvRdd<T, U> {
    #[allow(clippy::type_complexity)]
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        f: Arc<dyn Fn(usize, &[T], &mut TaskEnv<'_>) -> Vec<U> + Send + Sync>,
    ) -> Self {
        MapPartitionsEnvRdd {
            vitals,
            parent,
            f,
            _m: PhantomData,
        }
    }
}

impl<T: Data, U: Data> RddBase for MapPartitionsEnvRdd<T, U> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let out = (self.f)(part, &input, env);
        env.charge_records(input.len() as u64, out.len() as u64);
        Computed::from_vec(out)
    }
}

/// `sample`: Bernoulli sampling, deterministic per (seed, partition).
pub struct SampleRdd<T: Data> {
    vitals: RddVitals,
    parent: Arc<dyn RddBase>,
    fraction: f64,
    seed: u64,
    _m: PhantomData<fn() -> T>,
}

impl<T: Data> SampleRdd<T> {
    pub(crate) fn new(
        vitals: RddVitals,
        parent: Arc<dyn RddBase>,
        fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sample fraction must be in [0,1], got {fraction}"
        );
        SampleRdd {
            vitals,
            parent,
            fraction,
            seed,
            _m: PhantomData,
        }
    }
}

impl<T: Data> RddBase for SampleRdd<T> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        vec![Dep::Narrow(Arc::clone(&self.parent))]
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let input = env.narrow_input::<T>(&self.parent, part);
        let mut rng =
            rand_chacha::ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(part as u64 * 0x9E37));
        let out: Vec<T> = input
            .iter()
            .filter(|_| rng.gen::<f64>() < self.fraction)
            .cloned()
            .collect();
        env.charge_op(input.len() as u64, &OpCost::cpu(8.0));
        env.charge_records(input.len() as u64, out.len() as u64);
        Computed::from_vec(out)
    }
}

// ---------------------------------------------------------------------------
// Public transformation methods.
// ---------------------------------------------------------------------------

impl<T: Data> Rdd<T> {
    fn child<U: Data>(&self, node: Arc<dyn RddBase>) -> Rdd<U> {
        Rdd::from_node(node, self.ctx.clone())
    }

    /// Apply `f` to every record.
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Rdd<U> {
        self.map_with_cost(f, OpCost::default())
    }

    /// `map` with an explicit cost hint for the closure.
    pub fn map_with_cost<U: Data>(
        &self,
        f: impl Fn(&T) -> U + Send + Sync + 'static,
        cost: OpCost,
    ) -> Rdd<U> {
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "map", self.num_partitions());
        self.child(Arc::new(MapRdd::new(
            vitals,
            Arc::clone(&self.node),
            Arc::new(f),
            cost,
        )))
    }

    /// Keep records satisfying `p`.
    pub fn filter(&self, p: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "filter", self.num_partitions());
        self.child(Arc::new(FilterRdd::new(
            vitals,
            Arc::clone(&self.node),
            Arc::new(p),
            OpCost::cpu(10.0),
        )))
    }

    /// Apply `f` and flatten the results.
    pub fn flat_map<U: Data>(&self, f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        self.flat_map_with_cost(f, OpCost::default())
    }

    /// `flat_map` with an explicit cost hint.
    pub fn flat_map_with_cost<U: Data>(
        &self,
        f: impl Fn(&T) -> Vec<U> + Send + Sync + 'static,
        cost: OpCost,
    ) -> Rdd<U> {
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "flat_map", self.num_partitions());
        self.child(Arc::new(FlatMapRdd::new(
            vitals,
            Arc::clone(&self.node),
            Arc::new(f),
            cost,
        )))
    }

    /// Whole-partition transformation; `f` receives `(partition index,
    /// records)`.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
        cost: OpCost,
    ) -> Rdd<U> {
        let vitals = RddVitals::new(
            self.ctx.next_rdd_id(),
            "map_partitions",
            self.num_partitions(),
        );
        self.child(Arc::new(MapPartitionsRdd::new(
            vitals,
            Arc::clone(&self.node),
            Arc::new(f),
            cost,
        )))
    }

    /// Whole-partition transformation with task-environment access: the
    /// closure can charge CPU and traffic itself (broadcast fetches, custom
    /// working sets). The closure is responsible for its own `charge_*`
    /// calls; the engine only records record counts.
    pub fn map_partitions_with_env<U: Data>(
        &self,
        f: impl Fn(usize, &[T], &mut TaskEnv<'_>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let vitals = RddVitals::new(
            self.ctx.next_rdd_id(),
            "map_partitions_with_env",
            self.num_partitions(),
        );
        self.child(Arc::new(MapPartitionsEnvRdd::new(
            vitals,
            Arc::clone(&self.node),
            Arc::new(f),
        )))
    }

    /// Bernoulli-sample a fraction of records, deterministically.
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "sample", self.num_partitions());
        self.child(Arc::new(SampleRdd::<T>::new(
            vitals,
            Arc::clone(&self.node),
            fraction,
            seed,
        )))
    }
}
