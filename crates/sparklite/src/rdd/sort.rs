//! `sort_by_key`: total ordering via range partitioning.
//!
//! Like Spark, constructing the sorted RDD eagerly runs a *sampling job* to
//! pick the range-partition split points — that job's cost is part of the
//! application's virtual time, exactly as HiBench `sort`'s sampling stage is
//! part of its measured runtime.

use crate::error::Result;
use crate::rdd::shuffled::shuffled_plain;
use crate::rdd::{Data, Key, Rdd};
use crate::shuffle::RangePartitioner;
use std::sync::Arc;

/// Sample size target per output partition for split-point estimation.
const SAMPLE_PER_PARTITION: usize = 20;

impl<K: Key + Ord, V: Data> Rdd<(K, V)> {
    /// Sort by key ascending into `partitions` range partitions.
    ///
    /// Runs a sampling job immediately (like Spark's `RangePartitioner`),
    /// then returns the lazily-evaluated sorted RDD: partition `i`'s keys
    /// all precede partition `i+1`'s, and each partition is sorted.
    pub fn sort_by_key(&self, partitions: usize) -> Result<Rdd<(K, V)>> {
        assert!(partitions > 0, "need at least one output partition");
        // Sampling job: grab ~SAMPLE_PER_PARTITION × partitions keys.
        // The fraction is a heuristic on the unknown total (Spark bounds the
        // sample size the same way); a low estimate only skews balance.
        let want = (SAMPLE_PER_PARTITION * partitions) as f64;
        let per_part_guess = 10_000.0;
        let fraction = (want / (per_part_guess * self.num_partitions() as f64)).clamp(0.01, 1.0);
        let sample: Vec<K> = self
            .map(|(k, _)| k.clone())
            .sample(fraction, 0x5EED)
            .collect()?;
        let partitioner = Arc::new(RangePartitioner::from_sample(sample, partitions));
        Ok(shuffled_plain(
            self,
            partitioner,
            Some(Arc::new(|a: &K, b: &K| a.cmp(b))),
            "sort_by_key",
        ))
    }
}
