//! `union`: concatenate RDDs partition-wise.

use crate::rdd::map::impl_vitals;
use crate::rdd::{Computed, Data, Dep, Rdd, RddBase, RddVitals, TaskEnv};
use crate::storage::StorageLevel;
use std::marker::PhantomData;
use std::sync::Arc;

/// Union of several RDDs: the child has the concatenation of all parents'
/// partitions, each child partition a narrow view of exactly one parent
/// partition.
pub struct UnionRdd<T: Data> {
    vitals: RddVitals,
    parents: Vec<Arc<dyn RddBase>>,
    /// `offsets[i]` = first child partition index of parent `i`.
    offsets: Vec<usize>,
    _m: PhantomData<fn() -> T>,
}

impl<T: Data> UnionRdd<T> {
    pub(crate) fn new(vitals: RddVitals, parents: Vec<Arc<dyn RddBase>>) -> Self {
        assert!(!parents.is_empty(), "union needs at least one parent");
        let mut offsets = Vec::with_capacity(parents.len());
        let mut acc = 0;
        for p in &parents {
            offsets.push(acc);
            acc += p.num_partitions();
        }
        assert_eq!(vitals.partitions, acc);
        UnionRdd {
            vitals,
            parents,
            offsets,
            _m: PhantomData,
        }
    }

    fn locate(&self, part: usize) -> (usize, usize) {
        let idx = self.offsets.partition_point(|&o| o <= part) - 1;
        (idx, part - self.offsets[idx])
    }
}

impl<T: Data> RddBase for UnionRdd<T> {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        self.parents
            .iter()
            .map(|p| Dep::Narrow(Arc::clone(p)))
            .collect()
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let (parent_idx, local) = self.locate(part);
        let input = env.narrow_input::<T>(&self.parents[parent_idx], local);
        let n = input.len() as u64;
        env.charge_records(n, n);
        Computed::from_vec((*input).clone())
    }
}

impl<T: Data> Rdd<T> {
    /// Concatenate with another RDD (partitions of `self` first).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let total = self.num_partitions() + other.num_partitions();
        let vitals = RddVitals::new(self.ctx.next_rdd_id(), "union", total);
        Rdd::from_node(
            Arc::new(UnionRdd::<T>::new(
                vitals,
                vec![Arc::clone(&self.node), Arc::clone(&other.node)],
            )),
            self.ctx.clone(),
        )
    }
}
