//! Source RDDs: `parallelize`, deterministic generators, and DFS text files.

use crate::cost::OpCost;
use crate::memsize::slice_mem_size;
use crate::rdd::{Computed, Data, Dep, RddBase, RddVitals, TaskEnv};
use crate::storage::StorageLevel;
use memtier_dfs::FileStatus;
use memtier_memsim::ObjectId;

/// A driver-side collection split into partitions (`sc.parallelize`).
pub struct ParallelizeRdd<T: Data> {
    vitals: RddVitals,
    parts: Vec<Vec<T>>,
}

impl<T: Data> ParallelizeRdd<T> {
    /// Split `data` into `partitions` even slices.
    pub fn new(vitals: RddVitals, data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert_eq!(vitals.partitions, partitions);
        let total = data.len();
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        if total > 0 {
            // Even split: partition i gets the half-open range scaled by i.
            let mut iter = data.into_iter();
            for (i, part) in parts.iter_mut().enumerate() {
                let start = i * total / partitions;
                let end = (i + 1) * total / partitions;
                part.extend(iter.by_ref().take(end - start));
            }
        }
        ParallelizeRdd { vitals, parts }
    }
}

impl<T: Data> RddBase for ParallelizeRdd<T> {
    fn id(&self) -> crate::rdd::RddId {
        self.vitals.id
    }
    fn name(&self) -> String {
        self.vitals.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.vitals.partitions
    }
    fn deps(&self) -> Vec<Dep> {
        Vec::new()
    }
    fn storage_level(&self) -> StorageLevel {
        *self.vitals.storage.read()
    }
    fn set_storage_level(&self, level: StorageLevel) {
        *self.vitals.storage.write() = level;
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let items = self.parts[part].clone();
        let computed = Computed::from_vec(items);
        // Driver → executor transfer is a stage-input scan.
        env.charge_input_scan(
            ObjectId::Input {
                rdd: self.vitals.id.0,
            },
            computed.bytes,
        );
        env.charge_records(computed.records, computed.records);
        computed
    }
}

/// A deterministic per-partition generator (the workload suite's input
/// source: data is synthesized on first touch instead of shipped from the
/// driver, like reading a pre-generated HiBench dataset from page cache).
pub struct GeneratorRdd<T: Data> {
    vitals: RddVitals,
    gen: std::sync::Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
    cost: OpCost,
}

impl<T: Data> GeneratorRdd<T> {
    /// A generator over `vitals.partitions` partitions.
    pub fn new(
        vitals: RddVitals,
        gen: std::sync::Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
        cost: OpCost,
    ) -> Self {
        GeneratorRdd { vitals, gen, cost }
    }
}

impl<T: Data> RddBase for GeneratorRdd<T> {
    fn id(&self) -> crate::rdd::RddId {
        self.vitals.id
    }
    fn name(&self) -> String {
        self.vitals.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.vitals.partitions
    }
    fn deps(&self) -> Vec<Dep> {
        Vec::new()
    }
    fn storage_level(&self) -> StorageLevel {
        *self.vitals.storage.read()
    }
    fn set_storage_level(&self, level: StorageLevel) {
        *self.vitals.storage.write() = level;
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        let items = (self.gen)(part);
        let computed = Computed::from_vec(items);
        env.charge_input_scan(
            ObjectId::Input {
                rdd: self.vitals.id.0,
            },
            computed.bytes,
        );
        env.charge_op(computed.records, &self.cost);
        env.charge_records(computed.records, computed.records);
        computed
    }
}

/// A DFS-backed text file: one partition per block, Hadoop
/// `LineRecordReader` boundary semantics (a partition skips its leading
/// partial line and reads past its end to finish the trailing one).
pub struct TextFileRdd {
    vitals: RddVitals,
    status: FileStatus,
}

impl TextFileRdd {
    /// Wrap a resolved DFS file.
    pub fn new(vitals: RddVitals, status: FileStatus) -> Self {
        assert_eq!(vitals.partitions, status.blocks.len().max(1));
        TextFileRdd { vitals, status }
    }
}

impl RddBase for TextFileRdd {
    fn id(&self) -> crate::rdd::RddId {
        self.vitals.id
    }
    fn name(&self) -> String {
        self.vitals.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.vitals.partitions
    }
    fn deps(&self) -> Vec<Dep> {
        Vec::new()
    }
    fn storage_level(&self) -> StorageLevel {
        *self.vitals.storage.read()
    }
    fn set_storage_level(&self, level: StorageLevel) {
        *self.vitals.storage.write() = level;
    }
    fn preferred_replicas(&self, part: usize) -> Vec<u32> {
        self.status
            .blocks
            .get(part)
            .map(|b| b.replicas.iter().map(|r| r.0).collect())
            .unwrap_or_default()
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        if self.status.blocks.is_empty() {
            return Computed::from_vec(Vec::<String>::new());
        }
        let block = &self.status.blocks[part];
        let data = env
            .dfs_read(block)
            .unwrap_or_else(|e| panic!("text_file: {e}"));
        let mut bytes = data.as_slice().to_vec();

        // Hadoop line-boundary semantics: a non-first partition owns the
        // line in progress at its start ONLY if the previous block ended on
        // a newline; otherwise that line belongs upstream and is skipped.
        let mut start = 0usize;
        if part > 0 {
            let prev = env
                .dfs_read(&self.status.blocks[part - 1])
                .unwrap_or_else(|e| panic!("text_file: {e}"));
            if !prev.ends_with(b"\n") {
                match bytes.iter().position(|&b| b == b'\n') {
                    Some(nl) => start = nl + 1,
                    // No newline in the whole block: it all belongs upstream.
                    None => start = bytes.len(),
                }
            }
        }
        // …and read forward into subsequent blocks to finish the trailing
        // line (unless this block already ends on a newline boundary).
        let mut extra_read = 0u64;
        if !bytes.ends_with(b"\n") {
            for next in self.status.blocks.iter().skip(part + 1) {
                let next_data = env
                    .dfs_read(next)
                    .unwrap_or_else(|e| panic!("text_file: {e}"));
                match next_data.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        bytes.extend_from_slice(&next_data[..=nl]);
                        extra_read += (nl + 1) as u64;
                        break;
                    }
                    None => {
                        bytes.extend_from_slice(&next_data);
                        extra_read += next_data.len() as u64;
                    }
                }
            }
        }

        let lines: Vec<String> = bytes[start..]
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();

        env.charge_input_scan(
            ObjectId::Input {
                rdd: self.vitals.id.0,
            },
            block.len as u64 + extra_read,
        );
        let records = lines.len() as u64;
        env.charge_op(records, &OpCost::default());
        env.charge_records(records, records);
        let bytes_est = slice_mem_size(&lines) as u64;
        Computed {
            records,
            bytes: bytes_est,
            data: std::sync::Arc::new(lines),
        }
    }
}
