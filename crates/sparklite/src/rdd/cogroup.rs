//! `cogroup`: group two pair RDDs by key (the substrate of `join`).

use crate::memsize::slice_mem_size;
use crate::rdd::map::impl_vitals;
use crate::rdd::shuffled::FnShuffleWriter;
use crate::rdd::{Computed, Data, Dep, Key, Rdd, RddBase, RddVitals, ShuffleDep, TaskEnv};
use crate::shuffle::{Bucket, DetHasher, HashPartitioner, Partitioner, ShuffleId};
use crate::storage::StorageLevel;
use std::collections::HashMap;
use std::sync::Arc;

/// A two-parent wide RDD: partition `p` holds, for every key hashing to
/// `p`, the values from both sides.
pub struct CoGroupedRdd {
    vitals: RddVitals,
    deps: Vec<Arc<ShuffleDep>>,
    reduce: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> Computed + Send + Sync>,
}

impl RddBase for CoGroupedRdd {
    impl_vitals!();
    fn deps(&self) -> Vec<Dep> {
        self.deps
            .iter()
            .map(|d| Dep::Shuffle(Arc::clone(d)))
            .collect()
    }
    fn compute_partition(&self, part: usize, env: &mut TaskEnv<'_>) -> Computed {
        (self.reduce)(part, env)
    }
}

fn plain_writer<K: Key, V: Data>(
    parent: Arc<dyn RddBase>,
    partitioner: Arc<HashPartitioner>,
    shuffle_id: ShuffleId,
    num_reduces: usize,
) -> FnShuffleWriter {
    FnShuffleWriter::new(Box::new(move |map_part, env: &mut TaskEnv<'_>| {
        let input = env.narrow_input::<(K, V)>(&parent, map_part);
        let n = input.len() as u64;
        env.charge_records(n, 0);
        let mut buckets: Vec<Vec<(K, V)>> = (0..num_reduces).map(|_| Vec::new()).collect();
        for (k, v) in input.iter() {
            buckets[Partitioner::<K>::partition(&*partitioner, k)].push((k.clone(), v.clone()));
        }
        env.charge_op(n, &crate::cost::OpCost::cpu(12.0));
        for (b, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let bytes = slice_mem_size(&bucket) as u64;
            let records = bucket.len() as u64;
            env.charge_shuffle_write(shuffle_id, bytes);
            env.rt.shuffle.put_bucket(
                shuffle_id,
                map_part,
                b,
                Bucket {
                    data: Arc::new(bucket),
                    records,
                    bytes,
                },
            );
        }
    }))
}

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// Group this RDD with `other` by key: for every key, the values from
    /// both sides.
    pub fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        partitions: usize,
    ) -> Rdd<(K, (Vec<V>, Vec<W>))> {
        let ctx = self.ctx.clone();
        let partitioner = Arc::new(HashPartitioner::new(partitions));
        let rt = ctx.runtime();
        let left_id = rt.shuffle.register(self.num_partitions(), partitions);
        let right_id = rt.shuffle.register(other.num_partitions(), partitions);

        let left_dep = Arc::new(ShuffleDep {
            shuffle_id: left_id,
            parent: Arc::clone(&self.node),
            num_reduces: partitions,
            writer: Arc::new(plain_writer::<K, V>(
                Arc::clone(&self.node),
                Arc::clone(&partitioner),
                left_id,
                partitions,
            )),
        });
        let right_dep = Arc::new(ShuffleDep {
            shuffle_id: right_id,
            parent: Arc::clone(&other.node),
            num_reduces: partitions,
            writer: Arc::new(plain_writer::<K, W>(
                Arc::clone(&other.node),
                Arc::clone(&partitioner),
                right_id,
                partitions,
            )),
        });

        let reduce = move |part: usize, env: &mut TaskEnv<'_>| -> Computed {
            let mut groups: HashMap<K, (Vec<V>, Vec<W>), DetHasher> = HashMap::default();
            let mut n_in = 0u64;
            let left = env.rt.shuffle.fetch_reduce(left_id, part);
            env.charge_shuffle_read(
                left_id,
                left.iter().map(|b| b.bytes).sum(),
                left.len() as u64,
            );
            env.charge_shuffle_sources(left_id, part);
            for bucket in left {
                let items = bucket.data.downcast::<Vec<(K, V)>>().expect("left bucket");
                n_in += items.len() as u64;
                for (k, v) in items.iter() {
                    groups.entry(k.clone()).or_default().0.push(v.clone());
                }
            }
            let right = env.rt.shuffle.fetch_reduce(right_id, part);
            env.charge_shuffle_read(
                right_id,
                right.iter().map(|b| b.bytes).sum(),
                right.len() as u64,
            );
            env.charge_shuffle_sources(right_id, part);
            for bucket in right {
                let items = bucket.data.downcast::<Vec<(K, W)>>().expect("right bucket");
                n_in += items.len() as u64;
                for (k, w) in items.iter() {
                    groups.entry(k.clone()).or_default().1.push(w.clone());
                }
            }
            let out: Vec<(K, (Vec<V>, Vec<W>))> = groups.into_iter().collect();
            env.charge_hash_ops(n_in, slice_mem_size(&out) as u64);
            env.charge_records(n_in, out.len() as u64);
            Computed::from_vec(out)
        };

        let vitals = RddVitals::new(ctx.next_rdd_id(), "cogroup", partitions);
        Rdd::from_node(
            Arc::new(CoGroupedRdd {
                vitals,
                deps: vec![left_dep, right_dep],
                reduce: Arc::new(reduce),
            }),
            ctx,
        )
    }
}
