//! Engine configuration (`SparkConf` equivalent).

use crate::cost::CostModel;
use crate::error::{Result, SparkError};
use memtier_memsim::{CpuBindPolicy, MemBindPolicy, MemSimConfig, TierId};
use serde::{Deserialize, Serialize};

/// Placement of one executor: which socket its threads are pinned to and
/// which memory tiers its allocations land on (the `numactl` line the paper
/// launches each executor with).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorPlacement {
    /// `--cpunodebind`.
    pub cpu: CpuBindPolicy,
    /// `--membind`.
    pub mem: MemBindPolicy,
}

impl Default for ExecutorPlacement {
    fn default() -> Self {
        ExecutorPlacement {
            cpu: CpuBindPolicy::Socket(0),
            mem: MemBindPolicy::Tier(TierId::LOCAL_DRAM),
        }
    }
}

/// Engine configuration.
///
/// The defaults mirror the paper's default deployment: standalone mode, one
/// executor using all 40 hyperthreads of one socket, memory bound to the
/// local DRAM tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkConf {
    /// Number of executors (paper Fig. 4 sweeps {1, 2, 4, 5, 8}).
    pub num_executors: usize,
    /// Cores per executor (paper Fig. 4 sweeps {5, 8, 10, 20, 40}).
    pub cores_per_executor: usize,
    /// Where executors run and allocate.
    pub placement: ExecutorPlacement,
    /// Partitions for source RDDs when the caller doesn't specify
    /// (`spark.default.parallelism`); defaults to the total core count.
    pub default_parallelism: Option<usize>,
    /// Per-executor cache capacity in bytes (the storage region of Spark's
    /// unified memory manager).
    pub executor_cache_bytes: u64,
    /// Memory-system model.
    pub memsim: MemSimConfig,
    /// Cost-model constants.
    pub cost: CostModel,
    /// DFS datanodes backing `text_file`/`save_as_text_file`.
    pub dfs_datanodes: usize,
    /// DFS block size in bytes.
    pub dfs_block_size: usize,
    /// Hadoop-comparison mode: round-trip every shuffle through disk
    /// (MapReduce materializes intermediate data; Spark's in-memory shuffle
    /// is the paper-intro motivation). Off by default.
    pub shuffle_through_disk: bool,
}

impl Default for SparkConf {
    fn default() -> Self {
        SparkConf {
            num_executors: 1,
            cores_per_executor: 40,
            placement: ExecutorPlacement::default(),
            default_parallelism: None,
            executor_cache_bytes: 512 << 20,
            memsim: MemSimConfig::paper_default(),
            cost: CostModel::default(),
            dfs_datanodes: 4,
            dfs_block_size: 4 << 20,
            shuffle_through_disk: false,
        }
    }
}

impl SparkConf {
    /// The paper's default deployment bound to the given memory tier.
    pub fn bound_to_tier(tier: TierId) -> SparkConf {
        SparkConf {
            placement: ExecutorPlacement {
                cpu: CpuBindPolicy::Socket(0),
                mem: MemBindPolicy::Tier(tier),
            },
            ..SparkConf::default()
        }
    }

    /// Override the executor grid (Fig. 4 sweep points).
    pub fn with_executors(mut self, executors: usize, cores: usize) -> SparkConf {
        self.num_executors = executors;
        self.cores_per_executor = cores;
        self
    }

    /// Override default parallelism.
    pub fn with_parallelism(mut self, partitions: usize) -> SparkConf {
        self.default_parallelism = Some(partitions);
        self
    }

    /// Total task slots across executors.
    pub fn total_cores(&self) -> usize {
        self.num_executors * self.cores_per_executor
    }

    /// Effective default parallelism.
    pub fn parallelism(&self) -> usize {
        self.default_parallelism
            .unwrap_or_else(|| self.total_cores())
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_executors == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one executor".into(),
            ));
        }
        if self.cores_per_executor == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one core per executor".into(),
            ));
        }
        if let Some(p) = self.default_parallelism {
            if p == 0 {
                return Err(SparkError::InvalidConfig("parallelism must be > 0".into()));
            }
        }
        if self.dfs_datanodes == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one datanode".into(),
            ));
        }
        if self.dfs_block_size == 0 {
            return Err(SparkError::InvalidConfig(
                "dfs block size must be > 0".into(),
            ));
        }
        self.cost.validate().map_err(SparkError::InvalidConfig)?;
        self.memsim.validate().map_err(SparkError::InvalidConfig)?;
        // Executors must fit on their socket.
        let sockets = self.memsim.topology.sockets.len();
        for i in 0..self.num_executors {
            let socket = self.placement.cpu.socket_for(i, sockets);
            let capacity = self.memsim.topology.hyperthreads_on(socket) as usize;
            if self.cores_per_executor > capacity {
                return Err(SparkError::InvalidConfig(format!(
                    "executor {i}: {} cores exceed socket {socket}'s {capacity} hyperthreads",
                    self.cores_per_executor
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let c = SparkConf::default();
        c.validate().unwrap();
        assert_eq!(c.num_executors, 1);
        assert_eq!(c.cores_per_executor, 40);
        assert_eq!(c.total_cores(), 40);
        assert_eq!(c.parallelism(), 40);
        assert_eq!(c.placement.mem, MemBindPolicy::Tier(TierId::LOCAL_DRAM));
    }

    #[test]
    fn builders() {
        let c = SparkConf::bound_to_tier(TierId::NVM_NEAR)
            .with_executors(4, 10)
            .with_parallelism(80);
        assert_eq!(c.total_cores(), 40);
        assert_eq!(c.parallelism(), 80);
        assert_eq!(c.placement.mem, MemBindPolicy::Tier(TierId::NVM_NEAR));
        c.validate().unwrap();
    }

    #[test]
    fn validation_failures() {
        assert!(SparkConf::default()
            .with_executors(0, 1)
            .validate()
            .is_err());
        assert!(SparkConf::default()
            .with_executors(1, 0)
            .validate()
            .is_err());
        assert!(SparkConf::default().with_parallelism(0).validate().is_err());
        // 41 cores on a 40-thread socket.
        assert!(SparkConf::default()
            .with_executors(1, 41)
            .validate()
            .is_err());
        let c = SparkConf {
            dfs_datanodes: 0,
            ..SparkConf::default()
        };
        assert!(c.validate().is_err());
    }
}
