//! Engine configuration (`SparkConf` equivalent).

use crate::cost::CostModel;
use crate::error::{Result, SparkError};
use crate::faultsim::FaultPlan;
use memtier_memsim::{CpuBindPolicy, MemBindPolicy, MemSimConfig, PlacementSpec, TierId};
use memtier_netsim::NetworkMode;
use serde::{Deserialize, Serialize};

/// Placement of one executor: which socket its threads are pinned to and
/// which memory tiers its allocations land on (the `numactl` line the paper
/// launches each executor with).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorPlacement {
    /// `--cpunodebind`.
    pub cpu: CpuBindPolicy,
    /// `--membind`.
    pub mem: MemBindPolicy,
}

impl Default for ExecutorPlacement {
    fn default() -> Self {
        ExecutorPlacement {
            cpu: CpuBindPolicy::Socket(0),
            mem: MemBindPolicy::Tier(TierId::LOCAL_DRAM),
        }
    }
}

/// How object traffic is routed across memory tiers.
///
/// `Static` preserves the pre-engine behaviour exactly: every access
/// follows the executor's `numactl`-style [`ExecutorPlacement`] split.
/// `Dynamic` activates the [`PlacementEngine`](memtier_memsim::PlacementEngine)
/// inside the virtual-time loop: the carried [`PlacementSpec`] decides
/// per-object tier residency at epoch boundaries, and migrations are
/// charged as real memory traffic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum PlacementMode {
    /// Static per-executor split (the paper's `numactl` deployments).
    #[default]
    Static,
    /// Per-object dynamic placement driven by the given policy.
    Dynamic(PlacementSpec),
}

/// Engine configuration.
///
/// The defaults mirror the paper's default deployment: standalone mode, one
/// executor using all 40 hyperthreads of one socket, memory bound to the
/// local DRAM tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkConf {
    /// Number of executors (paper Fig. 4 sweeps {1, 2, 4, 5, 8}).
    pub num_executors: usize,
    /// Cores per executor (paper Fig. 4 sweeps {5, 8, 10, 20, 40}).
    pub cores_per_executor: usize,
    /// Where executors run and allocate.
    pub placement: ExecutorPlacement,
    /// How object traffic is routed across tiers (static `membind` split
    /// vs. dynamic per-object placement). Defaults to `Static`, which is
    /// bit-for-bit the pre-engine behaviour; absent in serialized configs
    /// from before the placement engine existed.
    #[serde(default)]
    pub placement_mode: PlacementMode,
    /// Partitions for source RDDs when the caller doesn't specify
    /// (`spark.default.parallelism`); defaults to the total core count.
    pub default_parallelism: Option<usize>,
    /// Per-executor cache capacity in bytes (the storage region of Spark's
    /// unified memory manager).
    pub executor_cache_bytes: u64,
    /// Memory-system model.
    pub memsim: MemSimConfig,
    /// Cost-model constants.
    pub cost: CostModel,
    /// DFS datanodes backing `text_file`/`save_as_text_file`.
    pub dfs_datanodes: usize,
    /// DFS block size in bytes.
    pub dfs_block_size: usize,
    /// Hadoop-comparison mode: round-trip every shuffle through disk
    /// (MapReduce materializes intermediate data; Spark's in-memory shuffle
    /// is the paper-intro motivation). Off by default.
    pub shuffle_through_disk: bool,
    /// Deterministic fault-injection plan. `None` (the default, and what
    /// every config serialized before `faultsim` existed deserializes to)
    /// runs a zero-failure cluster; a zero-probability plan is guaranteed
    /// byte-identical to `None`.
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// Enable the wall-clock engine self-profiler (`des::prof`). Off by
    /// default, and absent in configs serialized before it existed. Purely
    /// observational: enabling it attaches counters and coarse timers to the
    /// DES kernel and surfaces an `EngineStats` sidecar on the run report,
    /// but never changes virtual-time results — runs are byte-identical
    /// (minus the sidecar) with it on or off.
    #[serde(default)]
    pub profile_engine: bool,
    /// How the simulated cluster is wired. `Loopback` (the default, and
    /// what every config serialized before the network plane existed
    /// deserializes to) charges no network cost anywhere and is guaranteed
    /// byte-identical to the pre-plane engine; a `Topology` routes every
    /// cross-node transfer through per-link fair-shared flows.
    #[serde(default)]
    pub network: NetworkMode,
}

impl Default for SparkConf {
    fn default() -> Self {
        SparkConf {
            num_executors: 1,
            cores_per_executor: 40,
            placement: ExecutorPlacement::default(),
            placement_mode: PlacementMode::default(),
            default_parallelism: None,
            executor_cache_bytes: 512 << 20,
            memsim: MemSimConfig::paper_default(),
            cost: CostModel::default(),
            dfs_datanodes: 4,
            dfs_block_size: 4 << 20,
            shuffle_through_disk: false,
            fault_plan: None,
            profile_engine: false,
            network: NetworkMode::Loopback,
        }
    }
}

impl SparkConf {
    /// The paper's default deployment bound to the given memory tier.
    pub fn bound_to_tier(tier: TierId) -> SparkConf {
        SparkConf {
            placement: ExecutorPlacement {
                cpu: CpuBindPolicy::Socket(0),
                mem: MemBindPolicy::Tier(tier),
            },
            ..SparkConf::default()
        }
    }

    /// Override the executor grid (Fig. 4 sweep points).
    pub fn with_executors(mut self, executors: usize, cores: usize) -> SparkConf {
        self.num_executors = executors;
        self.cores_per_executor = cores;
        self
    }

    /// Override default parallelism.
    pub fn with_parallelism(mut self, partitions: usize) -> SparkConf {
        self.default_parallelism = Some(partitions);
        self
    }

    /// Route object traffic through a dynamic placement policy instead of
    /// the static `membind` split.
    pub fn with_placement(mut self, spec: PlacementSpec) -> SparkConf {
        self.placement_mode = PlacementMode::Dynamic(spec);
        self
    }

    /// Inject faults from a deterministic plan during every run.
    pub fn with_faults(mut self, plan: FaultPlan) -> SparkConf {
        self.fault_plan = Some(plan);
        self
    }

    /// Turn on the wall-clock engine self-profiler for runs under this
    /// config (see [`profile_engine`](Self::profile_engine)).
    pub fn with_engine_profiling(mut self) -> SparkConf {
        self.profile_engine = true;
        self
    }

    /// Wire the simulated cluster with a network topology (or back to
    /// loopback).
    pub fn with_network(mut self, network: NetworkMode) -> SparkConf {
        self.network = network;
        self
    }

    /// Total task slots across executors.
    pub fn total_cores(&self) -> usize {
        self.num_executors * self.cores_per_executor
    }

    /// Effective default parallelism.
    pub fn parallelism(&self) -> usize {
        self.default_parallelism
            .unwrap_or_else(|| self.total_cores())
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_executors == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one executor".into(),
            ));
        }
        if self.cores_per_executor == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one core per executor".into(),
            ));
        }
        if let Some(p) = self.default_parallelism {
            if p == 0 {
                return Err(SparkError::InvalidConfig("parallelism must be > 0".into()));
            }
        }
        if self.dfs_datanodes == 0 {
            return Err(SparkError::InvalidConfig(
                "need at least one datanode".into(),
            ));
        }
        if self.dfs_block_size == 0 {
            return Err(SparkError::InvalidConfig(
                "dfs block size must be > 0".into(),
            ));
        }
        self.cost.validate().map_err(SparkError::InvalidConfig)?;
        self.memsim.validate().map_err(SparkError::InvalidConfig)?;
        if let PlacementMode::Dynamic(spec) = &self.placement_mode {
            match *spec {
                PlacementSpec::HotCold { epoch, .. } => {
                    if epoch.is_zero() {
                        return Err(SparkError::InvalidConfig(
                            "hot/cold placement epoch must be positive".into(),
                        ));
                    }
                }
                PlacementSpec::WearAware {
                    epoch,
                    write_weight,
                    ..
                } => {
                    if epoch.is_zero() {
                        return Err(SparkError::InvalidConfig(
                            "wear-aware placement epoch must be positive".into(),
                        ));
                    }
                    if !(write_weight.is_finite() && write_weight >= 0.0) {
                        return Err(SparkError::InvalidConfig(format!(
                            "wear-aware write weight must be finite and non-negative, got {write_weight}"
                        )));
                    }
                }
                PlacementSpec::Static { .. } => {}
            }
        }
        if let Some(plan) = &self.fault_plan {
            let prob_ok = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
            if !(prob_ok(plan.task_failure_prob)
                && prob_ok(plan.fetch_failure_prob)
                && prob_ok(plan.straggler_prob))
            {
                return Err(SparkError::InvalidConfig(
                    "fault probabilities must be finite and within [0, 1]".into(),
                ));
            }
            if !(plan.straggler_factor.is_finite() && plan.straggler_factor >= 1.0) {
                return Err(SparkError::InvalidConfig(format!(
                    "straggler factor must be finite and >= 1, got {}",
                    plan.straggler_factor
                )));
            }
            for c in &plan.executor_crashes {
                if c.executor >= self.num_executors {
                    return Err(SparkError::InvalidConfig(format!(
                        "crash targets executor {} but the cluster has {}",
                        c.executor, self.num_executors
                    )));
                }
            }
            if let Some(spec) = &plan.speculation {
                if !(spec.quantile.is_finite() && spec.quantile > 0.0 && spec.quantile <= 1.0) {
                    return Err(SparkError::InvalidConfig(format!(
                        "speculation quantile must be in (0, 1], got {}",
                        spec.quantile
                    )));
                }
                if !(spec.multiplier.is_finite() && spec.multiplier >= 1.0) {
                    return Err(SparkError::InvalidConfig(format!(
                        "speculation multiplier must be finite and >= 1, got {}",
                        spec.multiplier
                    )));
                }
            }
        }
        if let NetworkMode::Topology { topology, locality } = &self.network {
            topology.validate().map_err(SparkError::InvalidConfig)?;
            if let memtier_netsim::LocalityMode::DelayScheduling { wait } = locality {
                if wait.is_zero() {
                    return Err(SparkError::InvalidConfig(
                        "delay-scheduling wait must be positive".into(),
                    ));
                }
            }
        }
        // Executors must fit on their socket, and a pinned socket must
        // exist on the machine (surfaced here as a config error instead of
        // a panic mid-run).
        let sockets = self.memsim.topology.sockets.len();
        for i in 0..self.num_executors {
            let Some(socket) = self.placement.cpu.checked_socket_for(i, sockets) else {
                return Err(SparkError::InvalidConfig(format!(
                    "executor {i}: cpu bind {:?} targets a socket outside the machine's {sockets} sockets",
                    self.placement.cpu
                )));
            };
            let capacity = self.memsim.topology.hyperthreads_on(socket) as usize;
            if self.cores_per_executor > capacity {
                return Err(SparkError::InvalidConfig(format!(
                    "executor {i}: {} cores exceed socket {socket}'s {capacity} hyperthreads",
                    self.cores_per_executor
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let c = SparkConf::default();
        c.validate().unwrap();
        assert_eq!(c.num_executors, 1);
        assert_eq!(c.cores_per_executor, 40);
        assert_eq!(c.total_cores(), 40);
        assert_eq!(c.parallelism(), 40);
        assert_eq!(c.placement.mem, MemBindPolicy::Tier(TierId::LOCAL_DRAM));
    }

    #[test]
    fn builders() {
        let c = SparkConf::bound_to_tier(TierId::NVM_NEAR)
            .with_executors(4, 10)
            .with_parallelism(80);
        assert_eq!(c.total_cores(), 40);
        assert_eq!(c.parallelism(), 80);
        assert_eq!(c.placement.mem, MemBindPolicy::Tier(TierId::NVM_NEAR));
        c.validate().unwrap();
    }

    #[test]
    fn validation_failures() {
        assert!(SparkConf::default()
            .with_executors(0, 1)
            .validate()
            .is_err());
        assert!(SparkConf::default()
            .with_executors(1, 0)
            .validate()
            .is_err());
        assert!(SparkConf::default().with_parallelism(0).validate().is_err());
        // 41 cores on a 40-thread socket.
        assert!(SparkConf::default()
            .with_executors(1, 41)
            .validate()
            .is_err());
        let c = SparkConf {
            dfs_datanodes: 0,
            ..SparkConf::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn out_of_range_socket_is_a_config_error_not_a_panic() {
        let c = SparkConf {
            placement: ExecutorPlacement {
                cpu: CpuBindPolicy::Socket(7),
                mem: MemBindPolicy::Tier(TierId::LOCAL_DRAM),
            },
            ..SparkConf::default()
        };
        match c.validate() {
            Err(SparkError::InvalidConfig(msg)) => {
                assert!(msg.contains("socket"), "unhelpful message: {msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn dynamic_placement_specs_are_validated() {
        use memtier_des::SimTime;
        SparkConf::default()
            .with_placement(PlacementSpec::hot_cold(1 << 30, SimTime::from_ms(5)))
            .validate()
            .unwrap();
        let zero_epoch = SparkConf::default().with_placement(PlacementSpec::HotCold {
            dram_capacity_bytes: 1 << 30,
            epoch: SimTime::ZERO,
            cold_tier: TierId::NVM_NEAR,
        });
        assert!(zero_epoch.validate().is_err());
        let bad_weight = SparkConf::default().with_placement(PlacementSpec::WearAware {
            dram_capacity_bytes: 1 << 30,
            epoch: SimTime::from_ms(5),
            cold_tier: TierId::NVM_NEAR,
            write_weight: f64::NAN,
        });
        assert!(bad_weight.validate().is_err());
    }

    #[test]
    fn fault_plans_are_validated() {
        use crate::faultsim::{FaultPlan, SpeculationConf};
        use memtier_des::SimTime;
        SparkConf::default()
            .with_faults(
                FaultPlan::seeded(1)
                    .with_task_failures(0.1)
                    .with_crash(SimTime::from_ms(1), 0)
                    .with_speculation(SpeculationConf::default()),
            )
            .validate()
            .unwrap();
        let bad_prob =
            SparkConf::default().with_faults(FaultPlan::seeded(1).with_task_failures(1.5));
        assert!(bad_prob.validate().is_err());
        let bad_factor =
            SparkConf::default().with_faults(FaultPlan::seeded(1).with_stragglers(0.1, 0.5));
        assert!(bad_factor.validate().is_err());
        // A crash aimed at an executor the cluster doesn't have.
        let bad_crash = SparkConf::default()
            .with_faults(FaultPlan::seeded(1).with_crash(SimTime::from_ms(1), 9));
        assert!(bad_crash.validate().is_err());
        let bad_spec = SparkConf::default().with_faults(FaultPlan::seeded(1).with_speculation(
            SpeculationConf {
                quantile: 0.0,
                multiplier: 1.5,
            },
        ));
        assert!(bad_spec.validate().is_err());
    }

    #[test]
    fn fault_plan_is_optional_in_serialized_configs() {
        // Configs serialized before faultsim existed carry no `fault_plan`
        // key; deserialization must default it to None.
        let mut json = serde_json::to_value(SparkConf::default()).unwrap();
        json.as_object_mut().unwrap().remove("fault_plan");
        let back: SparkConf = serde_json::from_value(json).unwrap();
        assert_eq!(back.fault_plan, None);
    }

    #[test]
    fn profile_engine_is_optional_in_serialized_configs() {
        // Configs serialized before the engine profiler existed carry no
        // `profile_engine` key; deserialization must default it to off.
        let mut json = serde_json::to_value(SparkConf::default()).unwrap();
        json.as_object_mut().unwrap().remove("profile_engine");
        let back: SparkConf = serde_json::from_value(json).unwrap();
        assert!(!back.profile_engine);
        assert!(SparkConf::default().with_engine_profiling().profile_engine);
    }

    #[test]
    fn network_is_optional_in_serialized_configs() {
        // Configs serialized before the network plane existed carry no
        // `network` key; deserialization must default it to Loopback.
        let mut json = serde_json::to_value(SparkConf::default()).unwrap();
        json.as_object_mut().unwrap().remove("network");
        let back: SparkConf = serde_json::from_value(json).unwrap();
        assert_eq!(back.network, NetworkMode::Loopback);
    }

    #[test]
    fn network_topologies_are_validated() {
        use memtier_des::SimTime;
        use memtier_netsim::{LocalityMode, NetTopology};
        SparkConf::default()
            .with_network(NetworkMode::Topology {
                topology: NetTopology::new(4, 2),
                locality: LocalityMode::DelayScheduling {
                    wait: SimTime::from_us(500),
                },
            })
            .validate()
            .unwrap();
        let bad_shape = SparkConf::default().with_network(NetworkMode::Topology {
            topology: NetTopology::new(4, 3),
            locality: LocalityMode::Blind,
        });
        assert!(bad_shape.validate().is_err());
        let bad_wait = SparkConf::default().with_network(NetworkMode::Topology {
            topology: NetTopology::new(2, 1),
            locality: LocalityMode::DelayScheduling {
                wait: SimTime::ZERO,
            },
        });
        assert!(bad_wait.validate().is_err());
    }

    #[test]
    fn placement_mode_is_optional_in_serialized_configs() {
        // Configs serialized before the placement engine existed carry no
        // `placement_mode` key; deserialization must default it to Static.
        let mut json = serde_json::to_value(SparkConf::default()).unwrap();
        json.as_object_mut().unwrap().remove("placement_mode");
        let back: SparkConf = serde_json::from_value(json).unwrap();
        assert_eq!(back.placement_mode, PlacementMode::Static);
    }
}
