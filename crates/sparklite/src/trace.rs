//! Task-timeline tracing with Chrome-tracing export.
//!
//! When enabled on a context, every task's virtual-time span is recorded:
//! which executor and slot ran it, its stage and partition, and its start /
//! end instants. [`chrome_trace_json`] renders the spans in the Chrome
//! tracing / Perfetto format (`chrome://tracing`, ui.perfetto.dev), giving
//! the same at-a-glance view of stage waves, stragglers and executor
//! utilization that the Spark UI's timeline provides.
//!
//! [`chrome_trace_json_full`] additionally interleaves the other telemetry
//! streams into the same timeline: counter samples become per-tier counter
//! tracks (`"ph":"C"` — media traffic, delivered bandwidth, queue
//! occupancy), and logged lifecycle events become a driver lane of job and
//! stage spans connected to their instants by flow arrows — so Perfetto
//! shows the paper's Fig. 2 correlation (stage boundaries against NVM media
//! traffic) in one view.
//!
//! When a [`RunProfile`](crate::profile::RunProfile) is supplied, the
//! critical path is highlighted on top: every task span on the path gets
//! `"args":{"critical":true}` and consecutive path tasks are chained with
//! `critical-path` flow arrows, so the one chain of spans that determines
//! the end-to-end runtime reads directly off the timeline.

use crate::events::{Event, TimedEvent};
use crate::profile::RunProfile;
use memtier_des::SimTime;
use memtier_memsim::{CounterSample, ObjectId, ObjectSample, TierId};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::BTreeMap;

/// Synthetic `pid` for the driver lane (job/stage spans). Large enough to
/// never collide with an executor index.
const DRIVER_PID: u64 = 1_000_000;
/// Synthetic `pid` for counter tracks.
const COUNTER_PID: u64 = 1_000_001;
/// Synthetic `pid` for per-link network counter tracks.
const NET_PID: u64 = 1_000_002;

/// How a task attempt ended, for distinct rendering in the executor lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpanKind {
    /// A plain successful attempt.
    #[default]
    Normal,
    /// An attempt that failed (injected fault or executor crash).
    Failed,
    /// A speculative clone that finished first (won the race).
    Speculative,
    /// An attempt killed because a rival copy finished first.
    SpeculativeKilled,
}

impl SpanKind {
    /// Trace category for the span (`"task"` keeps old traces' shape).
    fn category(self) -> &'static str {
        match self {
            SpanKind::Normal => "task",
            SpanKind::Failed => "task-failed",
            SpanKind::Speculative => "task-speculative",
            SpanKind::SpeculativeKilled => "task-spec-killed",
        }
    }

    /// Name prefix so outcome reads directly off the timeline.
    fn prefix(self) -> &'static str {
        match self {
            SpanKind::Normal => "",
            SpanKind::Failed => "FAILED ",
            SpanKind::Speculative => "spec ",
            SpanKind::SpeculativeKilled => "killed ",
        }
    }
}

/// One executed task's span in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Engine-wide task sequence number.
    pub task_id: u64,
    /// Job this task belonged to (action sequence number).
    pub job: u64,
    /// Stage within the job.
    pub stage: u32,
    /// Partition computed.
    pub partition: usize,
    /// Executor that ran it.
    pub executor: usize,
    /// Slot within the executor (for lane assignment).
    pub slot: usize,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// How the attempt ended (normal, failed, speculative, killed).
    #[serde(default)]
    pub kind: SpanKind,
}

impl TaskSpan {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Render spans as a Chrome-tracing JSON document.
///
/// `pid` = executor, `tid` = slot, timestamps in microseconds of virtual
/// time. Loadable in `chrome://tracing` or Perfetto as-is.
pub fn chrome_trace_json(spans: &[TaskSpan]) -> String {
    chrome_trace_json_full(spans, &[], &[], None)
}

/// Render the full telemetry picture as one Chrome-tracing JSON document:
/// task spans plus per-tier counter tracks (from `samples`) plus a driver
/// lane of job/stage spans with flow arrows (from `events`).
///
/// Counter tracks are only emitted for tiers that saw traffic (judged from
/// the last sample's cumulative counters), so an all-DRAM run doesn't drag
/// three flat-zero tracks into the view. Pass empty slices (and `None` for
/// the profile) to degrade gracefully — `chrome_trace_json` is exactly
/// that.
pub fn chrome_trace_json_full(
    spans: &[TaskSpan],
    samples: &[CounterSample],
    events: &[TimedEvent],
    profile: Option<&RunProfile>,
) -> String {
    chrome_trace_json_objects(spans, samples, events, profile, &[])
}

/// [`chrome_trace_json_full`] plus per-object attribution tracks: the
/// hottest objects' cumulative traffic (from the attribution ledger's
/// [`ObjectSample`] series) becomes one `"ph":"C"` counter track each, so
/// Perfetto shows *which cached RDD or shuffle* drove each burst of media
/// traffic next to the per-tier counter tracks.
pub fn chrome_trace_json_objects(
    spans: &[TaskSpan],
    samples: &[CounterSample],
    events: &[TimedEvent],
    profile: Option<&RunProfile>,
    objects: &[ObjectSample],
) -> String {
    let mut out = Vec::with_capacity(spans.len() + 4 * samples.len() + events.len());
    let critical: Vec<(u64, u64)> = profile.map(|p| p.critical_tasks()).unwrap_or_default();

    // Process-name metadata so Perfetto labels the lanes.
    let mut execs: Vec<usize> = spans.iter().map(|s| s.executor).collect();
    execs.sort_unstable();
    execs.dedup();
    for e in execs {
        out.push(json!({
            "name": "process_name", "ph": "M", "pid": e, "tid": 0,
            "args": { "name": format!("executor {e}") }
        }));
    }
    if !events.is_empty() {
        out.push(json!({
            "name": "process_name", "ph": "M", "pid": DRIVER_PID, "tid": 0,
            "args": { "name": "driver" }
        }));
    }
    if !samples.is_empty() || !objects.is_empty() {
        out.push(json!({
            "name": "process_name", "ph": "M", "pid": COUNTER_PID, "tid": 0,
            "args": { "name": "memory telemetry" }
        }));
    }

    for s in spans {
        let is_critical = critical.contains(&(s.job, s.task_id));
        out.push(json!({
            "name": format!(
                "{}job{} stage{} p{}",
                s.kind.prefix(), s.job, s.stage, s.partition
            ),
            "cat": s.kind.category(),
            "ph": "X",
            "ts": s.start.as_secs_f64() * 1e6,
            "dur": s.duration().as_secs_f64() * 1e6,
            "pid": s.executor,
            "tid": s.slot,
            "args": { "task_id": s.task_id, "critical": is_critical }
        }));
    }

    push_critical_path(&mut out, spans, &critical);
    push_lifecycle_events(&mut out, events);
    push_counter_tracks(&mut out, samples);
    push_object_tracks(&mut out, objects);

    serde_json::to_string_pretty(&json!({ "traceEvents": out })).expect("trace serialization")
}

/// Number of hot objects given their own counter track in the trace.
const HOT_OBJECT_TRACKS: usize = 5;

/// Cumulative-traffic `"ph":"C"` tracks for the hottest objects (top
/// [`HOT_OBJECT_TRACKS`] by final cumulative bytes, object-id tie-break):
/// one counter track per object, one point per attributed access batch.
fn push_object_tracks(out: &mut Vec<serde_json::Value>, objects: &[ObjectSample]) {
    if objects.is_empty() {
        return;
    }
    // Final cumulative bytes per object: samples carry running totals, so
    // the maximum seen is the last.
    let mut totals: BTreeMap<ObjectId, u64> = BTreeMap::new();
    for s in objects {
        let t = totals.entry(s.object).or_insert(0);
        *t = (*t).max(s.total_bytes);
    }
    let mut ranked: Vec<(ObjectId, u64)> = totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(HOT_OBJECT_TRACKS);
    let hot: Vec<ObjectId> = ranked.into_iter().map(|(o, _)| o).collect();
    for s in objects.iter().filter(|s| hot.contains(&s.object)) {
        out.push(json!({
            "name": format!("hot object {}", s.object.label()),
            "cat": "attribution",
            "ph": "C",
            "ts": s.at.as_us_f64(),
            "pid": COUNTER_PID,
            "args": { "mb": s.total_bytes as f64 / 1e6 }
        }));
    }
}

/// Flow arrows chaining consecutive critical-path tasks across executor
/// lanes: an `s` at each path task's end, an `f` at the next path task's
/// start. Ids live above bit 63 so they can never collide with the
/// stage-flow ids (`job << 32 | stage`).
fn push_critical_path(
    out: &mut Vec<serde_json::Value>,
    spans: &[TaskSpan],
    critical: &[(u64, u64)],
) {
    let lane = |job: u64, task: u64| {
        spans
            .iter()
            .find(|s| s.job == job && s.task_id == task)
            .map(|s| (s.executor, s.slot, s.start, s.end))
    };
    for (i, pair) in critical.windows(2).enumerate() {
        let (Some(from), Some(to)) = (lane(pair[0].0, pair[0].1), lane(pair[1].0, pair[1].1))
        else {
            continue;
        };
        let flow_id = (1u64 << 63) | i as u64;
        out.push(json!({
            "name": "critical path",
            "cat": "critical-path",
            "ph": "s",
            "id": flow_id,
            "ts": from.3.as_us_f64(),
            "pid": from.0,
            "tid": from.1
        }));
        out.push(json!({
            "name": "critical path",
            "cat": "critical-path",
            "ph": "f",
            "bp": "e",
            "id": flow_id,
            "ts": to.2.as_us_f64(),
            "pid": to.0,
            "tid": to.1
        }));
    }
}

/// Driver-lane job (tid 0) and stage (tid 1) spans, with `s`/`f` flow
/// arrows linking each stage's submit and complete instants, plus instant
/// markers for MBA throttle changes.
fn push_lifecycle_events(out: &mut Vec<serde_json::Value>, events: &[TimedEvent]) {
    // Pair submit/complete edges by (job, stage). A stage emits one
    // StageCompleted even if fetch failures resubmit tasks later, and jobs
    // are sequential, so a plain scan for the matching completion after
    // each submission is correct.
    for (i, e) in events.iter().enumerate() {
        match &e.event {
            Event::JobSubmitted { job, stages } => {
                let end = events[i..].iter().find_map(|later| match &later.event {
                    Event::JobCompleted { job: j, .. } if j == job => Some(later.at),
                    _ => None,
                });
                let end = end.unwrap_or(e.at);
                out.push(json!({
                    "name": format!("job {job}"),
                    "cat": "job",
                    "ph": "X",
                    "ts": e.at.as_us_f64(),
                    "dur": end.saturating_sub(e.at).as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "args": { "stages": stages }
                }));
            }
            Event::StageSubmitted { job, stage, tasks } => {
                let end = events[i..].iter().find_map(|later| match &later.event {
                    Event::StageCompleted {
                        job: j, stage: s, ..
                    } if j == job && s == stage => Some(later.at),
                    _ => None,
                });
                let end = end.unwrap_or(e.at);
                let flow_id = (*job << 32) | u64::from(*stage);
                out.push(json!({
                    "name": format!("job {job} stage {stage}"),
                    "cat": "stage",
                    "ph": "X",
                    "ts": e.at.as_us_f64(),
                    "dur": end.saturating_sub(e.at).as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 1,
                    "args": { "tasks": tasks }
                }));
                out.push(json!({
                    "name": format!("stage {stage} flow"),
                    "cat": "stage-flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 1
                }));
                out.push(json!({
                    "name": format!("stage {stage} flow"),
                    "cat": "stage-flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": end.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 1
                }));
            }
            Event::MbaThrottle { tier, percent } => {
                out.push(json!({
                    "name": format!("MBA tier{} -> {percent}%", tier.index()),
                    "cat": "mba",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0
                }));
            }
            Event::ObjectMigrated {
                object,
                from,
                to,
                bytes,
            } => {
                out.push(json!({
                    "name": format!(
                        "migrate {} tier{} -> tier{}",
                        object.label(),
                        from.index(),
                        to.index()
                    ),
                    "cat": "placement",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "args": { "bytes": bytes }
                }));
            }
            Event::TaskFailed {
                task_id,
                stage,
                partition,
                attempt,
                reason,
                ..
            } => {
                out.push(json!({
                    "name": format!("task {task_id} failed ({reason})"),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "args": { "stage": stage, "partition": partition, "attempt": attempt }
                }));
            }
            Event::ExecutorLost {
                executor,
                killed_tasks,
                lost_blocks,
                lost_bytes,
            } => {
                out.push(json!({
                    "name": format!("executor {executor} lost"),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "args": {
                        "killed_tasks": killed_tasks,
                        "lost_blocks": lost_blocks,
                        "lost_bytes": lost_bytes
                    }
                }));
            }
            Event::StageResubmitted {
                job,
                stage,
                partition,
            } => {
                out.push(json!({
                    "name": format!("resubmit job {job} stage {stage} p{partition}"),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0
                }));
            }
            Event::SpeculativeLaunched {
                task_id, original, ..
            } => {
                out.push(json!({
                    "name": format!("speculate task {original} -> clone {task_id}"),
                    "cat": "speculation",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0
                }));
            }
            Event::SpeculativeWon { task_id, .. } => {
                out.push(json!({
                    "name": format!("speculative clone {task_id} won"),
                    "cat": "speculation",
                    "ph": "i",
                    "s": "g",
                    "ts": e.at.as_us_f64(),
                    "pid": DRIVER_PID,
                    "tid": 0
                }));
            }
            _ => {}
        }
    }
    push_residency_tracks(out, events);
    push_net_tracks(out, events);
}

/// Per-link network utilization `"ph":"C"` tracks built from the
/// [`Event::FlowCompleted`] stream: one counter track per topology link
/// whose value is the cumulative bytes credited to it, stepping at each
/// transfer completion — the network companion of the per-tier traffic
/// tracks, rendered in its own "network telemetry" lane.
fn push_net_tracks(out: &mut Vec<serde_json::Value>, events: &[TimedEvent]) {
    let mut cumulative: BTreeMap<&str, u64> = BTreeMap::new();
    let mut any = false;
    for e in events {
        let Event::FlowCompleted { link, bytes, .. } = &e.event else {
            continue;
        };
        if !any {
            any = true;
            out.push(json!({
                "name": "process_name",
                "ph": "M",
                "pid": NET_PID,
                "tid": 0,
                "args": { "name": "network telemetry" }
            }));
        }
        let total = cumulative.entry(link.as_str()).or_insert(0);
        *total += bytes;
        out.push(json!({
            "name": format!("link {link} bytes"),
            "cat": "network",
            "ph": "C",
            "ts": e.at.as_us_f64(),
            "pid": NET_PID,
            "args": { "mb": *total as f64 / 1e6 }
        }));
    }
}

/// Per-object tier-residency `"ph":"C"` tracks built from the
/// [`Event::ObjectMigrated`] stream: one counter track per migrated
/// object whose value is the tier index it lives on, stepping at each
/// move — Perfetto renders the object's promotion/demotion history as a
/// staircase next to the traffic tracks.
fn push_residency_tracks(out: &mut Vec<serde_json::Value>, events: &[TimedEvent]) {
    let mut seen: Vec<ObjectId> = Vec::new();
    for e in events {
        let Event::ObjectMigrated {
            object, from, to, ..
        } = &e.event
        else {
            continue;
        };
        // The first move opens the track at the starting tier so the
        // staircase has a left edge.
        if !seen.contains(object) {
            seen.push(*object);
            out.push(json!({
                "name": format!("residency {}", object.label()),
                "cat": "placement",
                "ph": "C",
                "ts": 0.0,
                "pid": COUNTER_PID,
                "args": { "tier": from.index() }
            }));
        }
        out.push(json!({
            "name": format!("residency {}", object.label()),
            "cat": "placement",
            "ph": "C",
            "ts": e.at.as_us_f64(),
            "pid": COUNTER_PID,
            "args": { "tier": to.index() }
        }));
    }
}

/// Per-tier `"ph":"C"` counter tracks: interval media traffic, delivered
/// bandwidth, and queue occupancy, one point per sample.
fn push_counter_tracks(out: &mut Vec<serde_json::Value>, samples: &[CounterSample]) {
    let Some(last) = samples.last() else { return };
    let active: Vec<TierId> = TierId::all()
        .into_iter()
        .filter(|&t| last.counters.tier(t).total() > 0)
        .collect();
    for s in samples {
        let ts = s.at.as_us_f64();
        for &tier in &active {
            let i = tier.index();
            let d = s.delta.tier(tier);
            out.push(json!({
                "name": format!("tier{i} media traffic"),
                "cat": "counters",
                "ph": "C",
                "ts": ts,
                "pid": COUNTER_PID,
                "args": { "reads": d.reads, "writes": d.writes }
            }));
            out.push(json!({
                "name": format!("tier{i} delivered MB/s"),
                "cat": "counters",
                "ph": "C",
                "ts": ts,
                "pid": COUNTER_PID,
                "args": { "mb_per_s": s.bandwidth_bytes_per_s[i] / 1e6 }
            }));
            out.push(json!({
                "name": format!("tier{i} queue"),
                "cat": "counters",
                "ph": "C",
                "ts": ts,
                "pid": COUNTER_PID,
                "args": { "flows": s.active_flows[i] }
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task_id: u64, start_ms: u64, end_ms: u64) -> TaskSpan {
        TaskSpan {
            task_id,
            job: 0,
            stage: 1,
            partition: task_id as usize,
            executor: 0,
            slot: task_id as usize % 4,
            start: SimTime::from_ms(start_ms),
            end: SimTime::from_ms(end_ms),
            kind: SpanKind::Normal,
        }
    }

    #[test]
    fn duration_and_json_shape() {
        let s = span(3, 10, 25);
        assert_eq!(s.duration(), SimTime::from_ms(15));
        let json = chrome_trace_json(&[s]);
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("job0 stage1 p3"));
        // ts in microseconds.
        assert!(json.contains("10000.0"));
        // Valid JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_trace_is_valid() {
        let v: serde_json::Value = serde_json::from_str(&chrome_trace_json(&[])).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 0);
    }

    fn sample(at_ms: u64, nvm_reads: u64) -> CounterSample {
        use memtier_memsim::{AccessBatch, TierCounters, NUM_TIERS};
        let c = TierCounters::new([1; NUM_TIERS]);
        c.record(TierId::NVM_NEAR, &AccessBatch::random_reads(nvm_reads));
        let snap = c.snapshot();
        CounterSample {
            at: SimTime::from_ms(at_ms),
            counters: snap,
            delta: snap,
            bytes_served: [0.0; NUM_TIERS],
            bandwidth_bytes_per_s: [0.0; NUM_TIERS],
            active_flows: [0; NUM_TIERS],
            dynamic_energy_j: [0.0; NUM_TIERS],
        }
    }

    #[test]
    fn counter_tracks_only_for_active_tiers() {
        let json = chrome_trace_json_full(&[span(0, 0, 5)], &[sample(1, 100)], &[], None);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let counters: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "C").collect();
        // Only NVM_NEAR saw traffic: 3 tracks for it, none for other tiers.
        assert_eq!(counters.len(), 3);
        assert!(counters
            .iter()
            .all(|e| e["name"].as_str().unwrap().starts_with("tier2")));
        assert!(events.iter().any(|e| e["ph"] == "X"));
    }

    #[test]
    fn hot_object_tracks_cover_only_the_top_objects() {
        let samples: Vec<ObjectSample> = (0..7u32)
            .map(|rdd| ObjectSample {
                at: SimTime::from_ms(u64::from(rdd)),
                object: ObjectId::CacheBlock { rdd },
                delta_bytes: (u64::from(rdd) + 1) * 100,
                total_bytes: (u64::from(rdd) + 1) * 100,
            })
            .collect();
        let json = chrome_trace_json_objects(&[], &[], &[], None, &samples);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        let tracks: Vec<&str> = out
            .iter()
            .filter(|e| e["cat"] == "attribution")
            .map(|e| e["name"].as_str().unwrap())
            .collect();
        // Only the 5 hottest objects (rdd2..rdd6) get tracks.
        assert_eq!(tracks.len(), HOT_OBJECT_TRACKS);
        assert!(tracks.contains(&"hot object rdd6:cache"));
        assert!(!tracks.contains(&"hot object rdd0:cache"));
        // The telemetry process lane is labeled even without counter samples.
        assert!(out
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "memory telemetry"));
        // The 4-argument form still degrades to no object tracks.
        let plain = chrome_trace_json_full(&[], &[], &[], None);
        assert!(!plain.contains("attribution"));
    }

    #[test]
    fn lifecycle_events_become_driver_spans_and_flows() {
        let events = vec![
            TimedEvent {
                at: SimTime::from_ms(0),
                event: Event::JobSubmitted { job: 0, stages: 1 },
            },
            TimedEvent {
                at: SimTime::from_ms(0),
                event: Event::StageSubmitted {
                    job: 0,
                    stage: 0,
                    tasks: 4,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(7),
                event: Event::StageCompleted {
                    job: 0,
                    stage: 0,
                    tasks: 4,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(7),
                event: Event::JobCompleted {
                    job: 0,
                    stages_run: 1,
                    tasks_run: 4,
                },
            },
        ];
        let json = chrome_trace_json_full(&[], &[], &events, None);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        let job = out
            .iter()
            .find(|e| e["name"] == "job 0")
            .expect("job span missing");
        assert_eq!(job["ph"], "X");
        assert!((job["dur"].as_f64().unwrap() - 7000.0).abs() < 1e-6);
        assert!(out.iter().any(|e| e["ph"] == "s"));
        assert!(out.iter().any(|e| e["ph"] == "f"));
        assert!(out
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "driver"));
    }

    #[test]
    fn migrations_get_markers_and_residency_tracks() {
        let obj = ObjectId::CacheBlock { rdd: 3 };
        let hop = |at_ms: u64, from: TierId, to: TierId| TimedEvent {
            at: SimTime::from_ms(at_ms),
            event: Event::ObjectMigrated {
                object: obj,
                from,
                to,
                bytes: 4096,
            },
        };
        let events = vec![
            hop(5, TierId::NVM_NEAR, TierId::LOCAL_DRAM),
            hop(9, TierId::LOCAL_DRAM, TierId::NVM_NEAR),
        ];
        let json = chrome_trace_json_full(&[], &[], &events, None);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        let markers: Vec<&serde_json::Value> = out
            .iter()
            .filter(|e| e["cat"] == "placement" && e["ph"] == "i")
            .collect();
        assert_eq!(markers.len(), 2);
        assert!(markers[0]["name"].as_str().unwrap().contains("rdd3:cache"));
        // Residency staircase: an opening point at the starting tier plus
        // one step per move.
        let track: Vec<&serde_json::Value> = out
            .iter()
            .filter(|e| e["cat"] == "placement" && e["ph"] == "C")
            .collect();
        assert_eq!(track.len(), 3);
        assert_eq!(track[0]["args"]["tier"], 2);
        assert_eq!(track[1]["args"]["tier"], 0);
        assert_eq!(track[2]["args"]["tier"], 2);
    }

    #[test]
    fn flow_completions_get_per_link_counter_tracks() {
        let flow = |at_ms: u64, link: &str, bytes: u64| TimedEvent {
            at: SimTime::from_ms(at_ms),
            event: Event::FlowCompleted {
                task_id: Some(7),
                link: link.into(),
                bytes,
                locality: "rack-local".into(),
            },
        };
        let events = vec![
            flow(5, "node0:up", 1_000_000),
            flow(9, "node0:up", 500_000),
            flow(9, "rack0:down", 250_000),
        ];
        let json = chrome_trace_json_full(&[], &[], &events, None);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        // One "network telemetry" lane label, emitted once.
        let lanes: Vec<&serde_json::Value> = out
            .iter()
            .filter(|e| e["name"] == "process_name" && e["args"]["name"] == "network telemetry")
            .collect();
        assert_eq!(lanes.len(), 1);
        // Cumulative per-link staircase: two points on node0:up, one on
        // rack0:down, each carrying the running MB total.
        let track: Vec<&serde_json::Value> = out
            .iter()
            .filter(|e| e["cat"] == "network" && e["ph"] == "C")
            .collect();
        assert_eq!(track.len(), 3);
        assert_eq!(track[0]["name"], "link node0:up bytes");
        assert_eq!(track[0]["args"]["mb"], 1.0);
        assert_eq!(track[1]["args"]["mb"], 1.5);
        assert_eq!(track[2]["name"], "link rack0:down bytes");
        assert_eq!(track[2]["args"]["mb"], 0.25);
    }

    #[test]
    fn span_kinds_render_distinctly_and_faults_get_markers() {
        let mut failed = span(0, 0, 5);
        failed.kind = SpanKind::Failed;
        let mut spec = span(1, 5, 9);
        spec.kind = SpanKind::Speculative;
        let mut loser = span(2, 5, 9);
        loser.kind = SpanKind::SpeculativeKilled;
        let events = vec![
            TimedEvent {
                at: SimTime::from_ms(5),
                event: Event::TaskFailed {
                    task_id: 0,
                    job: 0,
                    stage: 1,
                    partition: 0,
                    attempt: 0,
                    reason: "task".into(),
                },
            },
            TimedEvent {
                at: SimTime::from_ms(6),
                event: Event::ExecutorLost {
                    executor: 1,
                    killed_tasks: 2,
                    lost_blocks: 3,
                    lost_bytes: 4096,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(7),
                event: Event::StageResubmitted {
                    job: 0,
                    stage: 0,
                    partition: 2,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(8),
                event: Event::SpeculativeLaunched {
                    task_id: 1,
                    original: 0,
                    job: 0,
                    stage: 1,
                    partition: 1,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(9),
                event: Event::SpeculativeWon {
                    task_id: 1,
                    job: 0,
                    stage: 1,
                    partition: 1,
                },
            },
        ];
        let json = chrome_trace_json_full(&[failed, spec, loser], &[], &events, None);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        let cat = |c: &str| out.iter().filter(|e| e["cat"] == c).count();
        assert_eq!(cat("task-failed"), 1);
        assert_eq!(cat("task-speculative"), 1);
        assert_eq!(cat("task-spec-killed"), 1);
        assert!(out
            .iter()
            .any(|e| e["name"].as_str().unwrap().starts_with("FAILED ")));
        // One instant marker per fault/speculation event.
        assert_eq!(cat("fault"), 3);
        assert_eq!(cat("speculation"), 2);
        // A span without a kind deserializes as Normal (old traces load).
        let legacy = r#"{"task_id":1,"job":0,"stage":0,"partition":0,
            "executor":0,"slot":0,"start":0,"end":1000}"#;
        let s: TaskSpan = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.kind, SpanKind::Normal);
    }

    #[test]
    fn critical_path_is_highlighted_with_flow_arrows() {
        use crate::profile::{PathSegment, RunProfile, SegmentKind};
        let spans = vec![span(0, 0, 10), span(1, 0, 25), span(2, 25, 40)];
        let seg = |task_id: u64, start_ms: u64, end_ms: u64| PathSegment {
            kind: SegmentKind::Task,
            start: SimTime::from_ms(start_ms),
            end: SimTime::from_ms(end_ms),
            job: Some(0),
            task_id: Some(task_id),
        };
        let profile = RunProfile {
            elapsed: SimTime::from_ms(40),
            attribution: Default::default(),
            segments: vec![seg(1, 0, 25), seg(2, 25, 40)],
        };
        let json = chrome_trace_json_full(&spans, &[], &[], Some(&profile));
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let out = v["traceEvents"].as_array().unwrap();
        // Tasks 1 and 2 are on the path, task 0 is not.
        let marked: Vec<u64> = out
            .iter()
            .filter(|e| e["cat"] == "task" && e["args"]["critical"] == true)
            .map(|e| e["args"]["task_id"].as_u64().unwrap())
            .collect();
        assert_eq!(marked, vec![1, 2]);
        // One arrow chains the two path tasks.
        let arrows: Vec<&serde_json::Value> =
            out.iter().filter(|e| e["cat"] == "critical-path").collect();
        assert_eq!(arrows.len(), 2);
        assert_eq!(arrows[0]["ph"], "s");
        assert_eq!(arrows[1]["ph"], "f");
        assert_eq!(arrows[0]["id"], arrows[1]["id"]);
    }
}
