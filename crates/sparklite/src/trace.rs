//! Task-timeline tracing with Chrome-tracing export.
//!
//! When enabled on a context, every task's virtual-time span is recorded:
//! which executor and slot ran it, its stage and partition, and its start /
//! end instants. [`chrome_trace_json`] renders the spans in the Chrome
//! tracing / Perfetto format (`chrome://tracing`, ui.perfetto.dev), giving
//! the same at-a-glance view of stage waves, stragglers and executor
//! utilization that the Spark UI's timeline provides.

use memtier_des::SimTime;
use serde::{Deserialize, Serialize};

/// One executed task's span in virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Engine-wide task sequence number.
    pub task_id: u64,
    /// Job this task belonged to (action sequence number).
    pub job: u64,
    /// Stage within the job.
    pub stage: u32,
    /// Partition computed.
    pub partition: usize,
    /// Executor that ran it.
    pub executor: usize,
    /// Slot within the executor (for lane assignment).
    pub slot: usize,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl TaskSpan {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Render spans as a Chrome-tracing JSON document.
///
/// `pid` = executor, `tid` = slot, timestamps in microseconds of virtual
/// time. Loadable in `chrome://tracing` or Perfetto as-is.
pub fn chrome_trace_json(spans: &[TaskSpan]) -> String {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        events.push(serde_json::json!({
            "name": format!("job{} stage{} p{}", s.job, s.stage, s.partition),
            "cat": "task",
            "ph": "X",
            "ts": s.start.as_secs_f64() * 1e6,
            "dur": s.duration().as_secs_f64() * 1e6,
            "pid": s.executor,
            "tid": s.slot,
            "args": { "task_id": s.task_id }
        }));
    }
    serde_json::to_string_pretty(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serialization")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task_id: u64, start_ms: u64, end_ms: u64) -> TaskSpan {
        TaskSpan {
            task_id,
            job: 0,
            stage: 1,
            partition: task_id as usize,
            executor: 0,
            slot: task_id as usize % 4,
            start: SimTime::from_ms(start_ms),
            end: SimTime::from_ms(end_ms),
        }
    }

    #[test]
    fn duration_and_json_shape() {
        let s = span(3, 10, 25);
        assert_eq!(s.duration(), SimTime::from_ms(15));
        let json = chrome_trace_json(&[s]);
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("job0 stage1 p3"));
        // ts in microseconds.
        assert!(json.contains("10000.0"));
        // Valid JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn empty_trace_is_valid() {
        let v: serde_json::Value = serde_json::from_str(&chrome_trace_json(&[])).unwrap();
        assert_eq!(v["traceEvents"].as_array().unwrap().len(), 0);
    }
}
