//! Accumulators: write-only shared counters aggregated from tasks.
//!
//! The Spark caveat applies here too, faithfully: an accumulator updated
//! inside a *transformation* is incremented once per computation of the
//! enclosing partition, and non-cached lineage may be recomputed by several
//! downstream tasks — use accumulators in transformations for debugging
//! only, and rely on action-side updates (or cached parents) for exact
//! counts.

use parking_lot::Mutex;
use std::ops::AddAssign;
use std::sync::Arc;

/// A shared counter tasks can only add to and the driver can read.
pub struct Accumulator<T> {
    name: String,
    value: Arc<Mutex<T>>,
}

impl<T> Clone for Accumulator<T> {
    fn clone(&self) -> Self {
        Accumulator {
            name: self.name.clone(),
            value: Arc::clone(&self.value),
        }
    }
}

impl<T: AddAssign + Clone + Send + 'static> Accumulator<T> {
    /// A named accumulator starting at `initial`.
    pub fn new(name: impl Into<String>, initial: T) -> Accumulator<T> {
        Accumulator {
            name: name.into(),
            value: Arc::new(Mutex::new(initial)),
        }
    }

    /// Add `delta` (from task or driver code).
    pub fn add(&self, delta: T) {
        *self.value.lock() += delta;
    }

    /// Driver-side read of the current value.
    pub fn value(&self) -> T {
        self.value.lock().clone()
    }

    /// The accumulator's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkConf, SparkContext};

    #[test]
    fn accumulates_from_action_tasks() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let acc = Accumulator::new("records_seen", 0u64);
        let acc_task = acc.clone();
        let rdd = sc.parallelize((0u64..100).collect(), 4).map(move |x| {
            acc_task.add(1);
            x * 2
        });
        rdd.count().unwrap();
        assert_eq!(acc.value(), 100);
        assert_eq!(acc.name(), "records_seen");
    }

    #[test]
    fn recomputation_double_counts_like_spark() {
        // The documented caveat: a non-cached parent re-used by two jobs
        // recomputes, and the transformation-side accumulator double-counts.
        let sc = SparkContext::new(SparkConf::default().with_parallelism(2)).unwrap();
        let acc = Accumulator::new("computed", 0u64);
        let acc_task = acc.clone();
        let rdd = sc.parallelize((0u64..10).collect(), 2).map(move |x| {
            acc_task.add(1);
            *x
        });
        rdd.count().unwrap();
        rdd.count().unwrap();
        assert_eq!(acc.value(), 20, "two jobs recompute the lineage twice");

        // Caching the RDD restores exactly-once per partition computation.
        let acc2 = Accumulator::new("computed_cached", 0u64);
        let acc2_task = acc2.clone();
        let cached = sc
            .parallelize((0u64..10).collect(), 2)
            .map(move |x| {
                acc2_task.add(1);
                *x
            })
            .cache();
        cached.count().unwrap();
        cached.count().unwrap();
        assert_eq!(acc2.value(), 10, "cache hit skips recomputation");
    }

    #[test]
    fn float_accumulator() {
        let acc = Accumulator::new("loss", 0.0f64);
        acc.add(1.5);
        acc.add(2.5);
        assert!((acc.value() - 4.0).abs() < 1e-12);
    }
}
