//! Block manager: storage-level caching with LRU eviction.
//!
//! Spark's `persist()` keeps computed partitions in the executor storage
//! region so iterative jobs (pagerank, als, lda) reread them instead of
//! recomputing lineage — which is exactly what makes those workloads
//! *memory-access-bound* and therefore tier-sensitive in the paper.

use crate::shuffle::AnyPart;
use memtier_memsim::TierId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// How an RDD asks to be persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageLevel {
    /// Not persisted: recompute lineage on every use.
    #[default]
    None,
    /// Keep deserialized partitions in executor memory (the paper's
    /// in-memory analytics setting; `MEMORY_ONLY`). Evicted blocks are
    /// recomputed on next use.
    MemoryOnly,
    /// Keep partitions in memory, but spill LRU victims to local disk
    /// instead of dropping them (`MEMORY_AND_DISK`). Disk reads are far
    /// slower and charged accordingly.
    MemoryAndDisk,
}

impl StorageLevel {
    /// True if this level caches anything.
    pub fn is_cached(self) -> bool {
        self != StorageLevel::None
    }

    /// True if evicted blocks spill to disk instead of being dropped.
    pub fn uses_disk(self) -> bool {
        self == StorageLevel::MemoryAndDisk
    }
}

/// Where a cache lookup found the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockLocation {
    /// Resident in executor memory.
    Memory,
    /// Spilled to local disk (slower to read back).
    Disk,
}

/// Key of a cached block: (RDD id, partition index).
pub type BlockKey = (u32, usize);

/// One block the manager evicted under capacity pressure, for the
/// structured event log. The scheduler drains these with
/// [`BlockManager::take_evictions`] and emits a
/// [`BlockEvicted`](crate::events::Event::BlockEvicted) event per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The evicted block.
    pub key: BlockKey,
    /// Size of the block in bytes.
    pub bytes: u64,
    /// True if the block spilled to disk instead of being dropped.
    pub spilled: bool,
}

struct Entry {
    data: AnyPart,
    bytes: u64,
    last_use: u64,
    spills: bool,
}

struct Inner {
    map: HashMap<BlockKey, Entry>,
    disk: HashMap<BlockKey, (AnyPart, u64)>,
    used: u64,
    disk_used: u64,
    capacity: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    spills: u64,
    disk_reads: u64,
    eviction_log: Vec<EvictedBlock>,
    /// Blocks inserted since the last [`BlockManager::take_insertions`]
    /// drain, with their sizes — the fault-injection layer uses this to
    /// learn which executor computed (and therefore co-locates) each block.
    insertion_log: Vec<(BlockKey, u64)>,
    /// Tier residency of in-memory blocks, maintained by the placement
    /// engine: new blocks inherit their RDD's residency, migrations move
    /// every block of the RDD at once.
    tiers: HashMap<BlockKey, TierId>,
    /// Per-RDD residency defaults (set by [`BlockManager::set_rdd_tier`]).
    rdd_tiers: HashMap<u32, TierId>,
}

/// An LRU block cache shared by all executors of an application.
pub struct BlockManager {
    inner: Mutex<Inner>,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found the block (memory or disk).
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks evicted under capacity pressure (dropped or spilled).
    pub evictions: u64,
    /// Bytes currently cached in memory.
    pub used: u64,
    /// Blocks spilled to disk instead of dropped.
    pub spills: u64,
    /// Lookups served from disk.
    pub disk_reads: u64,
    /// Bytes currently on disk.
    pub disk_used: u64,
}

impl BlockManager {
    /// A block manager with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        BlockManager {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                disk: HashMap::new(),
                used: 0,
                disk_used: 0,
                capacity,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                spills: 0,
                disk_reads: 0,
                eviction_log: Vec::new(),
                insertion_log: Vec::new(),
                tiers: HashMap::new(),
                rdd_tiers: HashMap::new(),
            }),
        }
    }

    /// Look up a block, refreshing its recency. Records a hit or miss and
    /// reports where the block was found so the caller can price the read.
    pub fn get(&self, key: BlockKey) -> Option<(AnyPart, u64, BlockLocation)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_use = tick;
            let out = (entry.data.clone(), entry.bytes, BlockLocation::Memory);
            inner.hits += 1;
            return Some(out);
        }
        if let Some((data, bytes)) = inner.disk.get(&key).cloned() {
            inner.hits += 1;
            inner.disk_reads += 1;
            return Some((data, bytes, BlockLocation::Disk));
        }
        inner.misses += 1;
        None
    }

    /// Insert a block, evicting LRU entries if needed. Victims whose level
    /// was `MemoryAndDisk` spill to the disk store instead of being
    /// dropped. Returns `false` (and caches nothing in memory) when the
    /// block alone exceeds capacity — except that a disk-spilling block is
    /// then written straight to disk, like Spark's `MEMORY_AND_DISK`.
    pub fn put(&self, key: BlockKey, data: AnyPart, bytes: u64, level: StorageLevel) -> bool {
        let mut inner = self.inner.lock();
        let spills = level.uses_disk();
        if bytes > inner.capacity {
            if spills {
                inner.disk_used += bytes;
                inner.spills += 1;
                inner.disk.insert(key, (data, bytes));
                inner.insertion_log.push((key, bytes));
                return true;
            }
            return false;
        }
        if let Some(old) = inner.map.remove(&key) {
            inner.used -= old.bytes;
        }
        while inner.used + bytes > inner.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_use, **k))
                .map(|(k, _)| *k)
                .expect("used > 0 implies a victim exists");
            let evicted = inner
                .map
                .remove(&victim)
                .unwrap_or_else(|| panic!("eviction victim block {victim:?} missing from store"));
            inner.used -= evicted.bytes;
            inner.tiers.remove(&victim);
            inner.evictions += 1;
            inner.eviction_log.push(EvictedBlock {
                key: victim,
                bytes: evicted.bytes,
                spilled: evicted.spills,
            });
            if evicted.spills {
                inner.disk_used += evicted.bytes;
                inner.spills += 1;
                inner.disk.insert(victim, (evicted.data, evicted.bytes));
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.used += bytes;
        inner.map.insert(
            key,
            Entry {
                data,
                bytes,
                last_use: tick,
                spills,
            },
        );
        // New blocks inherit their RDD's residency decision, if any.
        if let Some(tier) = inner.rdd_tiers.get(&key.0).copied() {
            inner.tiers.insert(key, tier);
        }
        inner.insertion_log.push((key, bytes));
        true
    }

    /// True if the block is resident, without touching recency or stats
    /// (the DAG scheduler's `cacheLocs` probe).
    pub fn contains(&self, key: BlockKey) -> bool {
        let inner = self.inner.lock();
        inner.map.contains_key(&key) || inner.disk.contains_key(&key)
    }

    /// Drop every block of one RDD (`unpersist`). Returns bytes freed.
    pub fn unpersist(&self, rdd_id: u32) -> u64 {
        let mut inner = self.inner.lock();
        let victims: Vec<BlockKey> = inner
            .map
            .keys()
            .filter(|(r, _)| *r == rdd_id)
            .copied()
            .collect();
        let mut freed = 0;
        for k in victims {
            let e = inner
                .map
                .remove(&k)
                .unwrap_or_else(|| panic!("unpersist: memory block {k:?} vanished mid-drop"));
            inner.used -= e.bytes;
            inner.tiers.remove(&k);
            freed += e.bytes;
        }
        let disk_victims: Vec<BlockKey> = inner
            .disk
            .keys()
            .filter(|(r, _)| *r == rdd_id)
            .copied()
            .collect();
        for k in disk_victims {
            let (_, bytes) = inner
                .disk
                .remove(&k)
                .unwrap_or_else(|| panic!("unpersist: disk block {k:?} vanished mid-drop"));
            inner.disk_used -= bytes;
            freed += bytes;
        }
        inner.rdd_tiers.remove(&rdd_id);
        freed
    }

    /// Record the placement engine's residency decision for one RDD: every
    /// current and future in-memory block of `rdd_id` is considered
    /// resident on `tier`.
    pub fn set_rdd_tier(&self, rdd_id: u32, tier: TierId) {
        let mut inner = self.inner.lock();
        inner.rdd_tiers.insert(rdd_id, tier);
        let keys: Vec<BlockKey> = inner
            .map
            .keys()
            .filter(|(r, _)| *r == rdd_id)
            .copied()
            .collect();
        for k in keys {
            inner.tiers.insert(k, tier);
        }
    }

    /// Tier residency of one in-memory block, if the placement engine ever
    /// placed its RDD (`None` under static placement).
    pub fn tier_of(&self, key: BlockKey) -> Option<TierId> {
        let inner = self.inner.lock();
        inner
            .tiers
            .get(&key)
            .or_else(|| inner.rdd_tiers.get(&key.0))
            .copied()
    }

    /// Bytes of one RDD currently resident in executor memory — the
    /// footprint a migration of its cache object would have to copy.
    pub fn rdd_bytes(&self, rdd_id: u32) -> u64 {
        let inner = self.inner.lock();
        inner
            .map
            .iter()
            .filter(|((r, _), _)| *r == rdd_id)
            .map(|(_, e)| e.bytes)
            .sum()
    }

    /// Drain the log of blocks evicted since the last call, in eviction
    /// order. The scheduler calls this after each task's data plane and
    /// turns the entries into structured
    /// [`BlockEvicted`](crate::events::Event::BlockEvicted) events.
    pub fn take_evictions(&self) -> Vec<EvictedBlock> {
        std::mem::take(&mut self.inner.lock().eviction_log)
    }

    /// Drain the log of blocks inserted since the last call, with sizes.
    /// The scheduler drains this after each task's data plane to attribute
    /// new cache blocks to the executor that computed them.
    pub fn take_insertions(&self) -> Vec<(BlockKey, u64)> {
        std::mem::take(&mut self.inner.lock().insertion_log)
    }

    /// Forcibly drop a set of blocks (an executor crash taking its storage
    /// — memory *and* local disk — with it). Returns `(blocks, bytes)`
    /// actually dropped. Not counted as evictions: nothing spills, and the
    /// blocks reappear only if lineage recomputes them.
    pub fn drop_blocks(&self, keys: &[BlockKey]) -> (u64, u64) {
        let mut inner = self.inner.lock();
        let (mut blocks, mut bytes) = (0u64, 0u64);
        for k in keys {
            if let Some(e) = inner.map.remove(k) {
                inner.used -= e.bytes;
                inner.tiers.remove(k);
                blocks += 1;
                bytes += e.bytes;
            }
            if let Some((_, b)) = inner.disk.remove(k) {
                inner.disk_used -= b;
                blocks += 1;
                bytes += b;
            }
        }
        (blocks, bytes)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            used: inner.used,
            spills: inner.spills,
            disk_reads: inner.disk_reads,
            disk_used: inner.disk_used,
        }
    }

    /// Drop everything and reset statistics.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.disk.clear();
        inner.used = 0;
        inner.disk_used = 0;
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        inner.spills = 0;
        inner.disk_reads = 0;
        inner.eviction_log.clear();
        inner.insertion_log.clear();
        inner.tiers.clear();
        inner.rdd_tiers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn part(v: Vec<u64>) -> AnyPart {
        Arc::new(v)
    }

    const MO: StorageLevel = StorageLevel::MemoryOnly;
    const MD: StorageLevel = StorageLevel::MemoryAndDisk;

    #[test]
    fn get_put_roundtrip() {
        let bm = BlockManager::new(1000);
        assert!(bm.get((1, 0)).is_none());
        assert!(bm.put((1, 0), part(vec![1, 2, 3]), 24, MO));
        let (data, bytes, loc) = bm.get((1, 0)).unwrap();
        assert_eq!(bytes, 24);
        assert_eq!(loc, BlockLocation::Memory);
        assert_eq!(*data.downcast::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        let s = bm.stats();
        assert_eq!((s.hits, s.misses, s.used), (1, 1, 24));
    }

    #[test]
    fn lru_evicts_coldest() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![]), 40, MO);
        bm.put((1, 1), part(vec![]), 40, MO);
        // Touch block 0 so block 1 is the LRU victim.
        bm.get((1, 0));
        bm.put((1, 2), part(vec![]), 40, MO);
        assert!(bm.get((1, 0)).is_some());
        assert!(bm.get((1, 1)).is_none());
        assert!(bm.get((1, 2)).is_some());
        assert_eq!(bm.stats().evictions, 1);
    }

    #[test]
    fn oversized_block_is_rejected() {
        let bm = BlockManager::new(10);
        assert!(!bm.put((1, 0), part(vec![]), 100, MO));
        assert_eq!(bm.stats().used, 0);
    }

    #[test]
    fn oversized_disk_level_block_goes_straight_to_disk() {
        let bm = BlockManager::new(10);
        assert!(bm.put((1, 0), part(vec![7]), 100, MD));
        let (_, bytes, loc) = bm.get((1, 0)).unwrap();
        assert_eq!((bytes, loc), (100, BlockLocation::Disk));
        assert_eq!(bm.stats().disk_used, 100);
        assert_eq!(bm.stats().spills, 1);
    }

    #[test]
    fn memory_and_disk_spills_victims() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 60, MD);
        bm.put((1, 1), part(vec![2]), 60, MD); // evicts (1,0) -> disk
        let (_, _, loc0) = bm.get((1, 0)).unwrap();
        assert_eq!(loc0, BlockLocation::Disk);
        let (_, _, loc1) = bm.get((1, 1)).unwrap();
        assert_eq!(loc1, BlockLocation::Memory);
        let s = bm.stats();
        assert_eq!(s.spills, 1);
        assert_eq!(s.disk_reads, 1);
        assert_eq!(s.disk_used, 60);
        // cacheLocs probe sees disk blocks too.
        assert!(bm.contains((1, 0)));
    }

    #[test]
    fn memory_only_victims_are_dropped() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 60, MO);
        bm.put((1, 1), part(vec![2]), 60, MO);
        assert!(
            bm.get((1, 0)).is_none(),
            "MemoryOnly victim must be dropped"
        );
        assert_eq!(bm.stats().spills, 0);
    }

    #[test]
    fn reput_replaces_without_leak() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 60, MO);
        bm.put((1, 0), part(vec![2]), 40, MO);
        assert_eq!(bm.stats().used, 40);
        let (data, _, _) = bm.get((1, 0)).unwrap();
        assert_eq!(*data.downcast::<Vec<u64>>().unwrap(), vec![2]);
    }

    #[test]
    fn unpersist_frees_one_rdd_including_disk() {
        let bm = BlockManager::new(1000);
        bm.put((1, 0), part(vec![]), 10, MO);
        bm.put((1, 1), part(vec![]), 10, MO);
        bm.put((2, 0), part(vec![]), 10, MO);
        assert_eq!(bm.unpersist(1), 20);
        assert!(bm.get((1, 0)).is_none());
        assert!(bm.get((2, 0)).is_some());
        // Disk blocks are freed too.
        let bm = BlockManager::new(10);
        bm.put((3, 0), part(vec![1]), 100, MD);
        assert_eq!(bm.unpersist(3), 100);
        assert_eq!(bm.stats().disk_used, 0);
    }

    #[test]
    fn eviction_log_records_victims_and_drains() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 60, MO);
        bm.put((1, 1), part(vec![2]), 60, MD); // evicts (1,0), dropped
        bm.put((1, 2), part(vec![3]), 60, MO); // evicts (1,1), spilled
        let log = bm.take_evictions();
        assert_eq!(
            log,
            vec![
                EvictedBlock {
                    key: (1, 0),
                    bytes: 60,
                    spilled: false,
                },
                EvictedBlock {
                    key: (1, 1),
                    bytes: 60,
                    spilled: true,
                },
            ]
        );
        // Draining empties the log.
        assert!(bm.take_evictions().is_empty());
    }

    #[test]
    fn tier_residency_follows_rdd_decisions() {
        let bm = BlockManager::new(1000);
        bm.put((1, 0), part(vec![1]), 30, MO);
        assert_eq!(bm.tier_of((1, 0)), None, "no decision yet");
        bm.set_rdd_tier(1, TierId::LOCAL_DRAM);
        assert_eq!(bm.tier_of((1, 0)), Some(TierId::LOCAL_DRAM));
        // Future blocks of the RDD inherit the decision.
        bm.put((1, 1), part(vec![2]), 20, MO);
        assert_eq!(bm.tier_of((1, 1)), Some(TierId::LOCAL_DRAM));
        assert_eq!(bm.rdd_bytes(1), 50);
        // A demotion moves every block of the RDD.
        bm.set_rdd_tier(1, TierId::NVM_NEAR);
        assert_eq!(bm.tier_of((1, 0)), Some(TierId::NVM_NEAR));
        assert_eq!(bm.tier_of((1, 1)), Some(TierId::NVM_NEAR));
        // Unpersist forgets residency.
        bm.unpersist(1);
        assert_eq!(bm.tier_of((1, 0)), None);
        assert_eq!(bm.rdd_bytes(1), 0);
    }

    #[test]
    fn insertion_log_records_puts_and_drains() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 30, MO);
        bm.put((2, 0), part(vec![2]), 100, MD); // oversized -> straight to disk
        assert_eq!(bm.take_insertions(), vec![((1, 0), 30), ((2, 0), 100)]);
        assert!(bm.take_insertions().is_empty());
        // A rejected put records nothing.
        assert!(!bm.put((3, 0), part(vec![]), 500, MO));
        assert!(bm.take_insertions().is_empty());
    }

    #[test]
    fn drop_blocks_loses_memory_and_disk_without_evictions() {
        let bm = BlockManager::new(100);
        bm.put((1, 0), part(vec![1]), 40, MO);
        bm.put((1, 1), part(vec![2]), 200, MD); // on disk
        bm.set_rdd_tier(1, TierId::LOCAL_DRAM);
        let (blocks, bytes) = bm.drop_blocks(&[(1, 0), (1, 1), (9, 9)]);
        assert_eq!((blocks, bytes), (2, 240));
        assert!(bm.get((1, 0)).is_none());
        assert!(bm.get((1, 1)).is_none());
        assert_eq!(
            bm.tier_of((1, 0)),
            Some(TierId::LOCAL_DRAM),
            "rdd default survives"
        );
        let s = bm.stats();
        assert_eq!((s.used, s.disk_used, s.evictions), (0, 0, 0));
    }

    #[test]
    fn clear_resets() {
        let bm = BlockManager::new(1000);
        bm.put((1, 0), part(vec![]), 10, MO);
        bm.get((1, 0));
        bm.clear();
        assert_eq!(bm.stats(), CacheStats::default());
        assert!(bm.get((1, 0)).is_none());
    }
}
