//! Deterministic fault injection and the bookkeeping for recovering from it.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: executor
//! crashes pinned to virtual-time instants, per-task failure and
//! shuffle-fetch-failure probabilities, straggler slowdowns, and (optional)
//! speculative execution to fight the stragglers. The plan is pure data —
//! it rides on [`SparkConf`](crate::config::SparkConf) and is serialized
//! with scenarios — and all randomness is a counter-based hash of
//! `(seed, salt, job, stage, partition, attempt)`, so the same plan on the
//! same workload replays byte-identically and a zero-probability plan takes
//! exactly the code paths of no plan at all.
//!
//! The recovery half lives in the scheduler
//! ([`scheduler::sim`](crate::scheduler)): bounded retries with backoff,
//! stage resubmission on fetch failure, lineage recompute of cache blocks
//! lost with a crashed executor, and first-finisher-wins speculation.
//! [`FaultState`] is the per-context mutable side (which executors are
//! alive, which blocks live where, accumulated [`RecoveryStats`]).

use crate::storage::BlockKey;
use memtier_des::SimTime;
use memtier_memsim::NUM_TIERS;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// RNG salt: does this task attempt fail at completion?
pub(crate) const SALT_TASK_FAIL: u64 = 0x7461736b;
/// RNG salt: does this reduce attempt hit a fetch failure?
pub(crate) const SALT_FETCH_FAIL: u64 = 0x6665746368;
/// RNG salt: is this task attempt a straggler?
pub(crate) const SALT_STRAGGLER: u64 = 0x73747261;
/// RNG salt: which parent map output does a fetch failure blame?
pub(crate) const SALT_FETCH_VICTIM: u64 = 0x76696374;

/// One scheduled executor crash at a virtual-time instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Virtual time at which the executor dies.
    pub at: SimTime,
    /// Index of the executor that dies.
    pub executor: usize,
}

/// Speculative-execution knobs (Spark's `spark.speculation.*`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConf {
    /// Fraction of a stage's tasks that must have finished before
    /// speculation is considered (Spark default 0.75).
    #[serde(default = "default_quantile")]
    pub quantile: f64,
    /// A running task is speculatable once its age exceeds this multiple of
    /// the median finished-task duration (Spark default 1.5).
    #[serde(default = "default_multiplier")]
    pub multiplier: f64,
}

fn default_quantile() -> f64 {
    0.75
}

fn default_multiplier() -> f64 {
    1.5
}

impl Default for SpeculationConf {
    fn default() -> Self {
        SpeculationConf {
            quantile: default_quantile(),
            multiplier: default_multiplier(),
        }
    }
}

fn default_straggler_factor() -> f64 {
    1.0
}

fn default_max_retries() -> u32 {
    3
}

fn default_backoff() -> SimTime {
    SimTime::from_ms(10)
}

/// A deterministic schedule of failures for one run.
///
/// Every field defaults to "nothing goes wrong", so a plan deserialized
/// from partial JSON — or built with [`FaultPlan::seeded`] and no further
/// builders — is exactly the zero-fault plan, which the scheduler
/// guarantees is byte-identical to running with no plan at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed folded into every probability roll.
    #[serde(default)]
    pub seed: u64,
    /// Per-attempt probability that a task fails at its completion instant.
    #[serde(default)]
    pub task_failure_prob: f64,
    /// Per-attempt probability that a reduce task's shuffle fetch fails,
    /// blaming (and forcing re-execution of) one parent map output.
    #[serde(default)]
    pub fetch_failure_prob: f64,
    /// Per-attempt probability that a task straggles.
    #[serde(default)]
    pub straggler_prob: f64,
    /// CPU-time multiplier applied to stragglers (≥ 1).
    #[serde(default = "default_straggler_factor")]
    pub straggler_factor: f64,
    /// Retries allowed per (stage, partition) after the first attempt.
    #[serde(default = "default_max_retries")]
    pub max_task_retries: u32,
    /// Virtual-time delay before a failed task is re-queued.
    #[serde(default = "default_backoff")]
    pub retry_backoff: SimTime,
    /// Executor crashes pinned to virtual-time instants.
    #[serde(default)]
    pub executor_crashes: Vec<CrashEvent>,
    /// Speculative execution, if enabled.
    #[serde(default)]
    pub speculation: Option<SpeculationConf>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// The zero-fault plan under `seed`: nothing fails until builders say so.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            task_failure_prob: 0.0,
            fetch_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: default_straggler_factor(),
            max_task_retries: default_max_retries(),
            retry_backoff: default_backoff(),
            executor_crashes: Vec::new(),
            speculation: None,
        }
    }

    /// Fail each task attempt with probability `p`.
    pub fn with_task_failures(mut self, p: f64) -> FaultPlan {
        self.task_failure_prob = p;
        self
    }

    /// Fail each reduce attempt's shuffle fetch with probability `p`.
    pub fn with_fetch_failures(mut self, p: f64) -> FaultPlan {
        self.fetch_failure_prob = p;
        self
    }

    /// Make each task attempt straggle (CPU × `factor`) with probability `p`.
    pub fn with_stragglers(mut self, p: f64, factor: f64) -> FaultPlan {
        self.straggler_prob = p;
        self.straggler_factor = factor;
        self
    }

    /// Crash `executor` at virtual time `at`.
    pub fn with_crash(mut self, at: SimTime, executor: usize) -> FaultPlan {
        self.executor_crashes.push(CrashEvent { at, executor });
        self
    }

    /// Enable speculative execution with the given knobs.
    pub fn with_speculation(mut self, conf: SpeculationConf) -> FaultPlan {
        self.speculation = Some(conf);
        self
    }

    /// Override the retry budget and backoff.
    pub fn with_retries(mut self, max: u32, backoff: SimTime) -> FaultPlan {
        self.max_task_retries = max;
        self.retry_backoff = backoff;
        self
    }

    /// True when the plan can never inject anything: the scheduler takes
    /// exactly the no-plan code paths.
    pub fn is_zero(&self) -> bool {
        self.task_failure_prob <= 0.0
            && self.fetch_failure_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.executor_crashes.is_empty()
            && self.speculation.is_none()
    }

    /// A compact display label for scenario names:
    /// `faults(seed7,task5%,fetch2%,strag10%x4,crash1,spec)`.
    pub fn label(&self) -> String {
        let mut parts = vec![format!("seed{}", self.seed)];
        let pct = |p: f64| format!("{}", (p * 100.0 * 100.0).round() / 100.0);
        if self.task_failure_prob > 0.0 {
            parts.push(format!("task{}%", pct(self.task_failure_prob)));
        }
        if self.fetch_failure_prob > 0.0 {
            parts.push(format!("fetch{}%", pct(self.fetch_failure_prob)));
        }
        if self.straggler_prob > 0.0 {
            parts.push(format!(
                "strag{}%x{}",
                pct(self.straggler_prob),
                self.straggler_factor
            ));
        }
        if !self.executor_crashes.is_empty() {
            parts.push(format!("crash{}", self.executor_crashes.len()));
        }
        if self.speculation.is_some() {
            parts.push("spec".to_string());
        }
        format!("faults({})", parts.join(","))
    }

    /// Deterministic uniform `[0, 1)` roll for one decision point.
    ///
    /// A pure hash of `(seed, salt, job, stage, partition, attempt)`:
    /// order-independent (no RNG stream to advance), so injecting a fault
    /// for one task never perturbs any other task's rolls.
    pub fn roll(&self, salt: u64, job: u64, stage: u32, partition: usize, attempt: u32) -> f64 {
        let mut h = splitmix(self.seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15));
        h = splitmix(h ^ job);
        h = splitmix(h ^ ((u64::from(stage) << 32) | partition as u64));
        h = splitmix(h ^ u64::from(attempt));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One step of the splitmix64 output function — the standard finalizer used
/// as a stateless counter-based RNG.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// What recovering from the plan's faults cost, rolled up over a run.
///
/// Rides on `RunReport` / `ScenarioResult`. The time split is the headline:
/// `useful_time` is executor-occupancy spent on attempts whose results were
/// kept, `wasted_time` on attempts that failed, were killed with a crashed
/// executor, or lost a speculation race.
///
/// `useful_time` accrues on every run — it is the waste fraction's
/// denominator and must match between a no-plan run and a zero-fault-plan
/// run for the byte-identity contract to hold. Every *other* field is zero
/// unless fault machinery actually fired; [`Self::is_quiet`] checks exactly
/// those.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Injected task failures (completion-time).
    pub task_failures: u64,
    /// Injected shuffle-fetch failures.
    pub fetch_failures: u64,
    /// Executor crashes applied.
    pub executor_crashes: u64,
    /// Running tasks killed by crashes.
    pub tasks_killed: u64,
    /// Parent map partitions resubmitted after fetch failures.
    pub stage_resubmissions: u64,
    /// Retry attempts queued (after backoff).
    pub retries: u64,
    /// Speculative copies launched.
    pub speculative_launched: u64,
    /// Speculative copies that beat their original.
    pub speculative_won: u64,
    /// Speculation losers killed (original or copy).
    pub speculative_killed: u64,
    /// Cache blocks dropped with crashed executors.
    pub lost_blocks: u64,
    /// Bytes of cache dropped with crashed executors.
    pub lost_bytes: u64,
    /// Memory traffic (bytes) of killed tasks' partially-drained flows,
    /// charged to the ledger's `recovery` object.
    pub cancelled_bytes: u64,
    /// Executor-occupancy virtual time of kept attempts.
    pub useful_time: SimTime,
    /// Executor-occupancy virtual time of failed / killed / losing attempts.
    pub wasted_time: SimTime,
    /// Per-tier memory-flow bytes of retry attempts (attempt > 0) — the
    /// tier-priced cost of recompute, the paper's reason to care.
    pub recompute_bytes: [u64; NUM_TIERS],
}

impl RecoveryStats {
    /// True when no fault machinery fired at all (zero-fault runs).
    pub fn is_quiet(&self) -> bool {
        let quiet_counts = self.task_failures == 0
            && self.fetch_failures == 0
            && self.executor_crashes == 0
            && self.tasks_killed == 0
            && self.stage_resubmissions == 0
            && self.retries == 0
            && self.speculative_launched == 0;
        quiet_counts && self.wasted_time.is_zero() && self.recompute_bytes.iter().all(|&b| b == 0)
    }

    /// Fraction of executor-occupancy time wasted on recovery (0 when idle).
    pub fn waste_fraction(&self) -> f64 {
        let total = self.useful_time.as_secs_f64() + self.wasted_time.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.wasted_time.as_secs_f64() / total
        }
    }
}

/// Mutable fault-injection state for one context: which executors are
/// alive, the crash schedule not yet applied, which executor owns each
/// cached block, and the accumulated [`RecoveryStats`].
#[derive(Debug)]
pub struct FaultState {
    /// The plan, if any. `None` behaves exactly like a zero plan but skips
    /// even the probability rolls.
    pub plan: Option<FaultPlan>,
    /// Liveness per executor index.
    pub alive: Vec<bool>,
    /// Crashes not yet applied, sorted by `(at, executor)`.
    pub pending_crashes: VecDeque<CrashEvent>,
    /// Executor that computed (and therefore co-locates) each cached block.
    pub block_owner: HashMap<BlockKey, usize>,
    /// Accumulated recovery costs.
    pub stats: RecoveryStats,
    /// Executor-occupancy spans of failed / killed / losing attempts, as
    /// `(started, end)`. Recorded through [`Self::record_waste`] at every
    /// point `stats.wasted_time` accrues, so the span durations re-sum to
    /// `stats.wasted_time` in exact integer picoseconds — the always-on raw
    /// series behind the doctor's windowed fault-waste rollup.
    pub waste_spans: Vec<(SimTime, SimTime)>,
}

impl FaultState {
    /// Fresh state for `num_executors` executors under `plan`.
    pub fn new(plan: Option<FaultPlan>, num_executors: usize) -> FaultState {
        let mut crashes: Vec<CrashEvent> = plan
            .as_ref()
            .map(|p| {
                p.executor_crashes
                    .iter()
                    .copied()
                    .filter(|c| c.executor < num_executors)
                    .collect()
            })
            .unwrap_or_default();
        crashes.sort_by_key(|c| (c.at, c.executor));
        FaultState {
            plan,
            alive: vec![true; num_executors],
            pending_crashes: crashes.into(),
            block_owner: HashMap::new(),
            stats: RecoveryStats::default(),
            waste_spans: Vec::new(),
        }
    }

    /// Charge one wasted attempt span `[started, end]`: accrues
    /// `stats.wasted_time` and records the span, keeping the two views
    /// conserving against each other by construction.
    pub fn record_waste(&mut self, started: SimTime, end: SimTime) {
        self.stats.wasted_time += end - started;
        self.waste_spans.push((started, end));
    }

    /// Virtual time of the next unapplied crash, if any.
    pub fn next_crash_at(&self) -> Option<SimTime> {
        self.pending_crashes.front().map(|c| c.at)
    }

    /// Pop every crash due at or before `t`.
    pub fn pop_crashes_due(&mut self, t: SimTime) -> Vec<CrashEvent> {
        let mut due = Vec::new();
        while self.pending_crashes.front().is_some_and(|c| c.at <= t) {
            due.push(self.pending_crashes.pop_front().expect("front checked"));
        }
        due
    }

    /// Number of executors still alive.
    pub fn live_executors(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_uniform_range() {
        let p = FaultPlan::seeded(7);
        let a = p.roll(SALT_TASK_FAIL, 0, 1, 2, 0);
        let b = p.roll(SALT_TASK_FAIL, 0, 1, 2, 0);
        assert_eq!(a, b, "same coordinates must roll identically");
        assert!((0.0..1.0).contains(&a));
        // Different coordinates de-correlate.
        assert_ne!(a, p.roll(SALT_TASK_FAIL, 0, 1, 2, 1));
        assert_ne!(a, p.roll(SALT_FETCH_FAIL, 0, 1, 2, 0));
        assert_ne!(a, FaultPlan::seeded(8).roll(SALT_TASK_FAIL, 0, 1, 2, 0));
        // Rough uniformity: the mean of many rolls is near 1/2.
        let n = 4096;
        let mean: f64 = (0..n)
            .map(|i| p.roll(SALT_STRAGGLER, 0, 0, i, 0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn zero_plan_and_labels() {
        let p = FaultPlan::seeded(3);
        assert!(p.is_zero());
        assert_eq!(p.label(), "faults(seed3)");
        let p = p
            .with_task_failures(0.05)
            .with_stragglers(0.1, 4.0)
            .with_crash(SimTime::from_ms(5), 1)
            .with_speculation(SpeculationConf::default());
        assert!(!p.is_zero());
        assert_eq!(p.label(), "faults(seed3,task5%,strag10%x4,crash1,spec)");
    }

    #[test]
    fn plan_serde_defaults_fill_missing_fields() {
        // A plan written with only a seed and one probability loads with
        // every other knob at its default.
        let p: FaultPlan = serde_json::from_str(r#"{"seed":9,"task_failure_prob":0.25}"#).unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.task_failure_prob, 0.25);
        assert_eq!(p.max_task_retries, 3);
        assert_eq!(p.retry_backoff, SimTime::from_ms(10));
        assert_eq!(p.straggler_factor, 1.0);
        assert!(p.executor_crashes.is_empty());
        // Speculation knobs have serde defaults too.
        let s: SpeculationConf = serde_json::from_str("{}").unwrap();
        assert_eq!(s, SpeculationConf::default());
        // Round trip.
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<FaultPlan>(&json).unwrap());
    }

    #[test]
    fn fault_state_orders_and_pops_crashes() {
        let plan = FaultPlan::seeded(0)
            .with_crash(SimTime::from_ms(20), 1)
            .with_crash(SimTime::from_ms(5), 0)
            .with_crash(SimTime::from_ms(5), 9); // out of range: dropped
        let mut st = FaultState::new(Some(plan), 2);
        assert_eq!(st.live_executors(), 2);
        assert_eq!(st.next_crash_at(), Some(SimTime::from_ms(5)));
        let due = st.pop_crashes_due(SimTime::from_ms(10));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].executor, 0);
        assert_eq!(st.next_crash_at(), Some(SimTime::from_ms(20)));
        assert!(st.pop_crashes_due(SimTime::from_ms(10)).is_empty());
    }

    #[test]
    fn recovery_stats_quiet_and_waste() {
        let mut s = RecoveryStats::default();
        assert!(s.is_quiet());
        assert_eq!(s.waste_fraction(), 0.0);
        s.useful_time = SimTime::from_ms(30);
        s.wasted_time = SimTime::from_ms(10);
        s.task_failures = 1;
        assert!(!s.is_quiet());
        assert!((s.waste_fraction() - 0.25).abs() < 1e-12);
    }
}
