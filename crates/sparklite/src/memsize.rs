//! In-memory footprint estimation for records.
//!
//! The time plane needs to know how many bytes a partition occupies to price
//! its traffic (Spark has the analogous `SizeEstimator`). [`MemSize`] is a
//! deliberately cheap structural estimate: stack size plus owned heap, no
//! attempt at allocator overhead or sharing detection.

/// Estimated in-memory footprint of a value in bytes.
pub trait MemSize {
    /// Total footprint: inline (stack) size plus owned heap allocations.
    fn mem_size(&self) -> usize;
}

macro_rules! primitive_mem_size {
    ($($t:ty),* $(,)?) => {
        $(impl MemSize for $t {
            #[inline]
            fn mem_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

primitive_mem_size!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl MemSize for String {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl MemSize for &'static str {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<&str>() + self.len()
    }
}

impl<T: MemSize, const N: usize> MemSize for [T; N] {
    fn mem_size(&self) -> usize {
        self.iter().map(MemSize::mem_size).sum()
    }
}

impl<K: MemSize, V: MemSize, S> MemSize for std::collections::HashMap<K, V, S> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .iter()
                .map(|(k, v)| k.mem_size() + v.mem_size())
                .sum::<usize>()
    }
}

impl<K: MemSize, V: MemSize> MemSize for std::collections::BTreeMap<K, V> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .iter()
                .map(|(k, v)| k.mem_size() + v.mem_size())
                .sum::<usize>()
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
}

impl<T: MemSize> MemSize for Box<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Box<T>>() + (**self).mem_size()
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn mem_size(&self) -> usize {
        std::mem::size_of::<Option<T>>()
            + self
                .as_ref()
                .map_or(0, |v| v.mem_size().saturating_sub(std::mem::size_of::<T>()))
    }
}

impl<T: MemSize> MemSize for std::sync::Arc<T> {
    fn mem_size(&self) -> usize {
        // Shared data is charged once per handle holder in this estimate;
        // good enough for traffic pricing, documented as approximate.
        std::mem::size_of::<std::sync::Arc<T>>() + (**self).mem_size()
    }
}

macro_rules! tuple_mem_size {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(impl<$($name: MemSize),+> MemSize for ($($name,)+) {
            fn mem_size(&self) -> usize {
                0 $(+ self.$idx.mem_size())+
            }
        })+
    };
}

tuple_mem_size!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Footprint of a slice's elements (without the container header).
pub fn slice_mem_size<T: MemSize>(items: &[T]) -> usize {
    items.iter().map(MemSize::mem_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(42u64.mem_size(), 8);
        assert_eq!(1.5f32.mem_size(), 4);
        assert_eq!(true.mem_size(), 1);
        assert_eq!(().mem_size(), 0);
    }

    #[test]
    fn strings_include_heap() {
        let s = String::from("hello");
        assert_eq!(s.mem_size(), std::mem::size_of::<String>() + 5);
        assert_eq!("abc".mem_size(), std::mem::size_of::<&str>() + 3);
    }

    #[test]
    fn vec_sums_elements() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.mem_size(), std::mem::size_of::<Vec<u32>>() + 12);
        let nested = vec![vec![1u8, 2], vec![3u8]];
        assert_eq!(
            nested.mem_size(),
            std::mem::size_of::<Vec<Vec<u8>>>() + 2 * std::mem::size_of::<Vec<u8>>() + 3
        );
    }

    #[test]
    fn tuples_sum_fields() {
        assert_eq!((1u64, 2u32).mem_size(), 12);
        assert_eq!((1u8, (2u8, 3u8)).mem_size(), 3);
    }

    #[test]
    fn option_and_box() {
        let some: Option<u64> = Some(1);
        let none: Option<u64> = None;
        assert!(some.mem_size() >= 8);
        assert_eq!(none.mem_size(), std::mem::size_of::<Option<u64>>());
        assert_eq!(Box::new(7u64).mem_size(), 8 + 8);
    }

    #[test]
    fn maps_sum_entries() {
        let mut h: std::collections::HashMap<u32, u64> = Default::default();
        h.insert(1, 2);
        h.insert(3, 4);
        assert_eq!(
            h.mem_size(),
            std::mem::size_of::<std::collections::HashMap<u32, u64>>() + 2 * 12
        );
        let mut b: std::collections::BTreeMap<u8, u8> = Default::default();
        b.insert(1, 2);
        assert_eq!(
            b.mem_size(),
            std::mem::size_of::<std::collections::BTreeMap<u8, u8>>() + 2
        );
    }

    #[test]
    fn slice_helper() {
        assert_eq!(slice_mem_size(&[1u16, 2, 3]), 6);
        assert_eq!(slice_mem_size::<u64>(&[]), 0);
    }
}
