//! The operator cost model (the time plane's constants).
//!
//! Every task's virtual duration is assembled from these constants plus the
//! actual record/byte counts observed on the data plane. The defaults are
//! calibrated so that the *shapes* of the paper's figures reproduce (see
//! DESIGN.md §1 and the `memtier-core` calibration tests); they are all
//! overridable per [`SparkConf`](crate::config::SparkConf).

use serde::{Deserialize, Serialize};

/// Engine-wide cost constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Default CPU cost of one record through a narrow operator, ns.
    pub per_record_ns: f64,
    /// CPU cost per byte scanned at a stage input (deserialization), ns.
    pub scan_ns_per_byte: f64,
    /// CPU cost per byte produced at a stage output (serialization), ns.
    pub write_ns_per_byte: f64,
    /// Driver-side dispatch + launch overhead per task, ns.
    pub task_dispatch_ns: f64,
    /// Fixed overhead per shuffle bucket fetched (connection setup,
    /// per-fetch bookkeeping), ns.
    pub bucket_overhead_ns: f64,
    /// Random memory reads charged per shuffle bucket fetched (index walks).
    pub bucket_random_reads: u64,
    /// Intra-executor ("fat JVM") contention: each co-running task on the
    /// same executor inflates a task's CPU time by this fraction. Models
    /// allocator/GC/lock pressure that makes 1×40 slower per task than 8×5.
    pub jvm_contention_alpha: f64,
    /// Cross-executor coordination bytes written per task per *other*
    /// executor (status, shuffle registration, block announcements). The
    /// Takeaway-6 mechanism: more executors → more traffic on the bound
    /// tier.
    pub coord_bytes_per_task: u64,
    /// Random reads per record during hash aggregation (probe).
    pub hash_reads_per_record: f64,
    /// Random writes per record during hash aggregation (insert/update).
    pub hash_writes_per_record: f64,
    /// CPU cost per comparison when sorting, ns (total cost uses n·log₂n).
    pub sort_ns_per_cmp: f64,
    /// Working sets up to this size are treated as cache-resident: hash
    /// probes against them cost CPU but almost no memory traffic. Larger
    /// tables pay `hash_reads/writes_per_record` in DRAM/NVM accesses —
    /// this is what separates the paper's access-heavy workloads
    /// (bayes/lda/pagerank, big aggregation state) from the tier-tolerant
    /// ones.
    pub cache_resident_bytes: u64,
    /// Fraction of probes that still miss the cache for resident tables
    /// (cold misses, evictions by neighbours).
    pub hash_cold_fraction: f64,
    /// CPU-equivalent cost per byte when reading a spilled block back from
    /// local disk (NVMe-class; dwarfs any memory tier).
    pub disk_read_ns_per_byte: f64,
    /// Fixed per-block disk read overhead (open + seek), ns.
    pub disk_seek_ns: f64,
    /// CPU-equivalent cost per byte when writing spilled/materialized data
    /// to local disk.
    pub disk_write_ns_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_record_ns: 180.0,
            scan_ns_per_byte: 0.6,
            write_ns_per_byte: 0.9,
            task_dispatch_ns: 1_200_000.0,
            bucket_overhead_ns: 40_000.0,
            bucket_random_reads: 16,
            jvm_contention_alpha: 0.011,
            coord_bytes_per_task: 3_072,
            hash_reads_per_record: 2.0,
            hash_writes_per_record: 1.0,
            sort_ns_per_cmp: 18.0,
            cache_resident_bytes: 2 << 20,
            hash_cold_fraction: 0.05,
            disk_read_ns_per_byte: 2.5,
            disk_seek_ns: 250_000.0,
            disk_write_ns_per_byte: 3.5,
        }
    }
}

impl CostModel {
    /// CPU cost of sorting `n` records, ns.
    pub fn sort_cost_ns(&self, n: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let n = n as f64;
        self.sort_ns_per_cmp * n * n.log2()
    }

    /// Validate positivity of all constants.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("per_record_ns", self.per_record_ns),
            ("scan_ns_per_byte", self.scan_ns_per_byte),
            ("write_ns_per_byte", self.write_ns_per_byte),
            ("task_dispatch_ns", self.task_dispatch_ns),
            ("bucket_overhead_ns", self.bucket_overhead_ns),
            ("jvm_contention_alpha", self.jvm_contention_alpha),
            ("hash_reads_per_record", self.hash_reads_per_record),
            ("hash_writes_per_record", self.hash_writes_per_record),
            ("sort_ns_per_cmp", self.sort_ns_per_cmp),
            ("hash_cold_fraction", self.hash_cold_fraction),
            ("disk_read_ns_per_byte", self.disk_read_ns_per_byte),
            ("disk_seek_ns", self.disk_seek_ns),
            ("disk_write_ns_per_byte", self.disk_write_ns_per_byte),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("cost model: {name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Per-operator cost hint supplied by workload code for closures whose work
/// the engine cannot see (e.g. an ALS factor solve per record).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// CPU ns per record processed.
    pub cpu_ns_per_record: f64,
    /// Random memory reads per record (working-set probes).
    pub rnd_reads_per_record: f64,
    /// Random memory writes per record.
    pub rnd_writes_per_record: f64,
}

impl OpCost {
    /// A pure-CPU hint.
    pub fn cpu(ns_per_record: f64) -> OpCost {
        OpCost {
            cpu_ns_per_record: ns_per_record,
            rnd_reads_per_record: 0.0,
            rnd_writes_per_record: 0.0,
        }
    }

    /// Add random-read traffic per record.
    pub fn with_reads(mut self, reads: f64) -> OpCost {
        self.rnd_reads_per_record = reads;
        self
    }

    /// Add random-write traffic per record.
    pub fn with_writes(mut self, writes: f64) -> OpCost {
        self.rnd_writes_per_record = writes;
        self
    }
}

impl Default for OpCost {
    /// The engine-default narrow-operator cost (used by plain `map`).
    fn default() -> Self {
        OpCost::cpu(CostModel::default().per_record_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CostModel::default().validate().unwrap();
    }

    #[test]
    fn sort_cost_is_nlogn() {
        let c = CostModel::default();
        assert_eq!(c.sort_cost_ns(0), 0.0);
        assert_eq!(c.sort_cost_ns(1), 0.0);
        let c1k = c.sort_cost_ns(1024);
        let c2k = c.sort_cost_ns(2048);
        // Doubling n slightly more than doubles the cost.
        assert!(c2k > 2.0 * c1k && c2k < 2.4 * c1k);
    }

    #[test]
    fn validate_rejects_negative() {
        let c = CostModel {
            per_record_ns: -1.0,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());
        let c = CostModel {
            scan_ns_per_byte: f64::NAN,
            ..CostModel::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn op_cost_builder() {
        let op = OpCost::cpu(100.0).with_reads(2.0).with_writes(0.5);
        assert_eq!(op.cpu_ns_per_record, 100.0);
        assert_eq!(op.rnd_reads_per_record, 2.0);
        assert_eq!(op.rnd_writes_per_record, 0.5);
        assert_eq!(
            OpCost::default().cpu_ns_per_record,
            CostModel::default().per_record_ns
        );
    }
}
