//! Structured lifecycle event log — the Spark listener-bus equivalent.
//!
//! Spark exposes job/stage/task lifecycle through its `SparkListener` bus and
//! persists it as the JSON event log the History Server replays. The paper's
//! per-stage analysis (Fig. 2's time-resolved traffic, the stage-level
//! slowdowns of Table III) needs the same observable here: *when* did each
//! stage run, what did each task do, when did the cache evict, when did an
//! MBA throttle change.
//!
//! [`SparkContext`](crate::context::SparkContext) owns an [`EventBus`];
//! the scheduler emits a [`Event`] at each lifecycle edge, stamped with the
//! current virtual time. Sinks are pluggable:
//!
//! * [`MemoryRing`] — bounded in-memory ring, queryable after the run;
//! * [`JsonlSink`] — one JSON object per line, the persistent event log;
//! * [`ProgressSink`] — live ASCII job/stage progress for long campaigns.
//!
//! With no sinks attached the bus is inert: emission sites check
//! [`EventBus::is_active`] (one `Vec::is_empty` test) before building an
//! event, so disabled telemetry costs nothing measurable.

use crate::metrics::TaskMetrics;
use crate::profile::TaskBreakdown;
use memtier_des::SimTime;
use memtier_memsim::{ObjectId, TierId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::Arc;

/// Default capacity of the in-memory event ring (events, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// One lifecycle event. Serialized with an adjacent `type` tag so a JSONL
/// log is self-describing (`{"type":"task_started",...}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    /// A job (one action) entered the scheduler.
    JobSubmitted {
        /// Job sequence number within the context.
        job: u64,
        /// Stages in the job's plan.
        stages: u64,
    },
    /// A job's result stage completed.
    JobCompleted {
        /// Job sequence number within the context.
        job: u64,
        /// Stages actually executed.
        stages_run: u64,
        /// Tasks actually executed.
        tasks_run: u64,
    },
    /// A stage's dependencies were met and its tasks became runnable.
    StageSubmitted {
        /// Owning job.
        job: u64,
        /// Stage id within the job's plan.
        stage: u32,
        /// Tasks in the stage.
        tasks: u64,
    },
    /// A stage's last task finished.
    StageCompleted {
        /// Owning job.
        job: u64,
        /// Stage id within the job's plan.
        stage: u32,
        /// Tasks the stage ran.
        tasks: u64,
    },
    /// A task was dispatched to an executor slot.
    TaskStarted {
        /// Context-unique task id.
        task_id: u64,
        /// Owning job.
        job: u64,
        /// Owning stage.
        stage: u32,
        /// Partition the task computes.
        partition: usize,
        /// Executor the task landed on.
        executor: usize,
        /// Core slot within the executor.
        slot: usize,
    },
    /// A task drained its memory traffic and completed.
    TaskFinished {
        /// Context-unique task id.
        task_id: u64,
        /// Owning job.
        job: u64,
        /// Owning stage.
        stage: u32,
        /// Partition the task computed.
        partition: usize,
        /// Everything the task did on the data plane.
        metrics: TaskMetrics,
        /// The task's virtual-time span decomposed into named components
        /// (conserves: components sum to the span exactly).
        #[serde(default)]
        breakdown: TaskBreakdown,
    },
    /// A task looked up cached partitions.
    CacheAccess {
        /// The task that performed the lookups.
        task_id: u64,
        /// Lookups served from the block manager.
        hits: u64,
        /// Lookups that fell through to recomputation.
        misses: u64,
    },
    /// The block manager evicted (and possibly spilled) blocks while a task
    /// was materializing output.
    CacheEviction {
        /// Blocks evicted since the last report.
        evictions: u64,
        /// Blocks spilled to disk since the last report.
        spills: u64,
    },
    /// The block manager evicted one specific cached block under capacity
    /// pressure — the per-object companion of the aggregate
    /// [`CacheEviction`](Event::CacheEviction) report.
    BlockEvicted {
        /// RDD owning the evicted block.
        rdd: u32,
        /// Partition index of the block.
        partition: usize,
        /// Size of the block in bytes.
        bytes: u64,
        /// True if the block spilled to disk instead of being dropped.
        spilled: bool,
        /// Primary tier of the executor whose task triggered the eviction
        /// (where the freed bytes lived).
        tier: TierId,
    },
    /// An RDD was explicitly unpersisted and all its cached blocks
    /// (memory and disk) dropped.
    RddUnpersisted {
        /// The unpersisted RDD.
        rdd: u32,
        /// Bytes freed across the memory and disk stores.
        bytes_freed: u64,
    },
    /// A task wrote shuffle output.
    ShuffleWrite {
        /// The writing task.
        task_id: u64,
        /// Shuffle bytes written.
        bytes: u64,
    },
    /// A task fetched shuffle input.
    ShuffleFetch {
        /// The fetching task.
        task_id: u64,
        /// Shuffle bytes fetched.
        bytes: u64,
        /// Map-output buckets fetched.
        buckets: u64,
    },
    /// The placement engine moved an object between tiers at an epoch
    /// boundary. The copy traffic is charged to the memory system under
    /// [`ObjectId::Migration`], so it shows up in the hotness report and
    /// conserves against the machine counters.
    ObjectMigrated {
        /// The object that moved.
        object: ObjectId,
        /// Tier the object was resident on.
        from: TierId,
        /// Tier the object moved to.
        to: TierId,
        /// Bytes the copy moved.
        bytes: u64,
    },
    /// The MBA throttle level of a tier changed.
    MbaThrottle {
        /// Throttled tier.
        tier: TierId,
        /// New MBA level, percent.
        percent: u8,
    },
    /// A task attempt failed (injected task failure or shuffle-fetch
    /// failure) and its slot was freed for a retry.
    TaskFailed {
        /// Context-unique task id of the failed attempt.
        task_id: u64,
        /// Owning job.
        job: u64,
        /// Owning stage.
        stage: u32,
        /// Partition the attempt was computing.
        partition: usize,
        /// Zero-based attempt number that failed.
        attempt: u32,
        /// Human-readable failure cause (`"task"`, `"fetch"`, `"crash"`).
        reason: String,
    },
    /// An executor crashed: its running tasks were killed and its cached
    /// blocks dropped (to be recomputed through lineage on next use).
    ExecutorLost {
        /// The crashed executor.
        executor: usize,
        /// Running tasks killed with it.
        killed_tasks: u64,
        /// Cache blocks dropped with it.
        lost_blocks: u64,
        /// Bytes of cache dropped with it.
        lost_bytes: u64,
    },
    /// A fetch failure blamed one parent map output and the scheduler
    /// resubmitted that map partition.
    StageResubmitted {
        /// Owning job.
        job: u64,
        /// The parent (map) stage being partially re-run.
        stage: u32,
        /// The map partition being recomputed.
        partition: usize,
    },
    /// Speculative execution cloned a straggling task.
    SpeculativeLaunched {
        /// Task id of the speculative copy.
        task_id: u64,
        /// Task id of the straggling original.
        original: u64,
        /// Owning job.
        job: u64,
        /// Owning stage.
        stage: u32,
        /// Partition both attempts compute.
        partition: usize,
    },
    /// A speculative copy finished before its original (which was killed).
    SpeculativeWon {
        /// Task id of the winning copy.
        task_id: u64,
        /// Owning job.
        job: u64,
        /// Owning stage.
        stage: u32,
        /// Partition the copy computed.
        partition: usize,
    },
    /// A cross-node transfer entered the network plane: one event per link
    /// of its path. Only emitted under a topology (never in loopback mode).
    FlowStarted {
        /// Owning task (`None` for driver-initiated transfers such as DFS
        /// re-replication).
        task_id: Option<u64>,
        /// Link label (e.g. `"node0:up"`, `"rack1:down"`).
        link: String,
        /// Transfer size in bytes (the whole transfer, on every link).
        bytes: u64,
        /// Locality class of the transfer (`"rack-local"` / `"remote"`;
        /// node-local transfers never enter the plane).
        locality: String,
    },
    /// A cross-node transfer finished draining: one event per path link,
    /// emitted at the completion instant (when the slowest link drained).
    FlowCompleted {
        /// Owning task (`None` for driver-initiated transfers).
        task_id: Option<u64>,
        /// Link label the bytes were credited to.
        link: String,
        /// Transfer size in bytes.
        bytes: u64,
        /// Locality class of the transfer.
        locality: String,
    },
}

/// An [`Event`] stamped with the virtual time it occurred at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Virtual instant of the event.
    pub at: SimTime,
    /// The event itself.
    pub event: Event,
}

/// A consumer of lifecycle events.
pub trait EventSink: Send {
    /// Observe one event at virtual time `at`.
    fn on_event(&mut self, at: SimTime, event: &Event);
    /// Flush any buffered output (end of run) and surface the first I/O
    /// error the sink hit — including errors on earlier `on_event` writes,
    /// which must not kill the simulation mid-run but must not vanish
    /// either.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The event bus: fans each emitted event out to every attached sink.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn EventSink>>,
}

impl EventBus {
    /// An empty (inert) bus.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Attach a sink. All future events go to it as well.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// True if any sink is attached. Emission sites gate on this so an
    /// inactive bus costs one branch, not an event construction.
    #[inline]
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Deliver an event to every sink.
    pub fn emit(&mut self, at: SimTime, event: Event) {
        if self.sinks.is_empty() {
            return;
        }
        for sink in &mut self.sinks {
            sink.on_event(at, &event);
        }
    }

    /// Flush every sink, collecting the errors instead of stopping at the
    /// first: one broken log file must not prevent the others from
    /// flushing. An empty vector means every sink flushed cleanly.
    pub fn flush(&mut self) -> Vec<io::Error> {
        self.sinks
            .iter_mut()
            .filter_map(|sink| sink.flush().err())
            .collect()
    }
}

struct RingInner {
    capacity: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
}

/// Bounded in-memory event store. Attach the [`MemoryRing`] to the bus and
/// keep the cheap [`MemoryRingHandle`] to read the log back afterwards.
/// When full, the *oldest* events are dropped (and counted).
pub struct MemoryRing {
    inner: Arc<Mutex<RingInner>>,
}

/// Shared read handle onto a [`MemoryRing`].
#[derive(Clone)]
pub struct MemoryRingHandle {
    inner: Arc<Mutex<RingInner>>,
}

impl MemoryRing {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> MemoryRing {
        assert!(capacity > 0, "ring capacity must be positive");
        MemoryRing {
            inner: Arc::new(Mutex::new(RingInner {
                capacity,
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// A read handle sharing this ring's storage.
    pub fn handle(&self) -> MemoryRingHandle {
        MemoryRingHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl EventSink for MemoryRing {
    fn on_event(&mut self, at: SimTime, event: &Event) {
        let mut inner = self.inner.lock();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TimedEvent {
            at,
            event: event.clone(),
        });
    }
}

impl MemoryRingHandle {
    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

/// Borrowing mirror of [`TimedEvent`] so the JSONL writer serializes without
/// cloning each event.
#[derive(Serialize)]
struct LineRef<'a> {
    at: SimTime,
    event: &'a Event,
}

/// Sink writing one JSON object per event per line — the persistent event
/// log, replayable with [`parse_jsonl`].
///
/// Write errors do not kill the simulation: the first one is remembered,
/// subsequent events are dropped (the log is truncated, not corrupted
/// mid-line), and [`EventSink::flush`] surfaces the error. The sink also
/// flushes on drop, so a log handed to a `JsonlSink` is durable even when
/// nobody calls `flush` explicitly.
pub struct JsonlSink<W: Write + Send> {
    /// `None` only after [`JsonlSink::into_inner`] disarmed the drop flush.
    writer: Option<W>,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A JSONL sink writing to `writer`.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Some(writer),
            error: None,
        }
    }

    /// Recover the underlying writer (flushing is the caller's business;
    /// the drop flush is disarmed).
    pub fn into_inner(mut self) -> W {
        self.writer.take().expect("writer taken only here")
    }
}

/// Re-raise a sticky I/O error without consuming it (`io::Error` is not
/// `Clone`): repeated flushes of a failed sink keep failing.
fn sticky(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn on_event(&mut self, at: SimTime, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let writer = self.writer.as_mut().expect("writer present until drop");
        let line = LineRef { at, event };
        // Serialization of these types cannot fail, so any error here is I/O.
        let res = serde_json::to_writer(&mut *writer, &line)
            .map_err(io::Error::from)
            .and_then(|()| writer.write_all(b"\n"));
        if let Err(e) = res {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(sticky(e));
        }
        self.writer.as_mut().expect("writer present").flush()
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Serialize events to JSONL text (one object per line).
pub fn to_jsonl(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("event serialization cannot fail"));
        out.push('\n');
    }
    out
}

/// Parse JSONL text (as produced by [`to_jsonl`] or a [`JsonlSink`]) back
/// into events. Blank lines are skipped.
pub fn parse_jsonl(text: &str) -> serde_json::Result<Vec<TimedEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Live ASCII progress reporter: one line per job/stage edge, virtual
/// timestamps included. Attach `ProgressSink::stderr()` to watch a long
/// campaign without drowning in per-task noise.
///
/// Like [`JsonlSink`], write errors are sticky and surfaced on flush, and
/// the sink flushes on drop.
pub struct ProgressSink<W: Write + Send> {
    /// `None` only after [`ProgressSink::into_inner`] disarmed the drop
    /// flush.
    writer: Option<W>,
    error: Option<io::Error>,
}

impl ProgressSink<std::io::Stderr> {
    /// A progress reporter on standard error.
    pub fn stderr() -> ProgressSink<std::io::Stderr> {
        ProgressSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> ProgressSink<W> {
    /// A progress reporter writing to `writer`.
    pub fn new(writer: W) -> ProgressSink<W> {
        ProgressSink {
            writer: Some(writer),
            error: None,
        }
    }

    /// Recover the underlying writer (the drop flush is disarmed).
    pub fn into_inner(mut self) -> W {
        self.writer.take().expect("writer taken only here")
    }
}

impl<W: Write + Send> EventSink for ProgressSink<W> {
    fn on_event(&mut self, at: SimTime, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = match event {
            Event::JobSubmitted { job, stages } => {
                format!("[{at}] job {job} submitted ({stages} stages)")
            }
            Event::JobCompleted {
                job,
                stages_run,
                tasks_run,
            } => {
                format!("[{at}] job {job} done ({stages_run} stages, {tasks_run} tasks)")
            }
            Event::StageSubmitted { job, stage, tasks } => {
                format!("[{at}]   job {job} stage {stage} -> running ({tasks} tasks)")
            }
            Event::StageCompleted { job, stage, tasks } => {
                format!("[{at}]   job {job} stage {stage} done ({tasks} tasks)")
            }
            Event::MbaThrottle { tier, percent } => {
                format!("[{at}] MBA tier{} -> {percent}%", tier.index())
            }
            Event::ExecutorLost {
                executor,
                killed_tasks,
                lost_blocks,
                lost_bytes,
            } => {
                format!(
                    "[{at}] executor {executor} lost ({killed_tasks} tasks killed, \
                     {lost_blocks} blocks / {lost_bytes} B dropped)"
                )
            }
            Event::StageResubmitted {
                job,
                stage,
                partition,
            } => {
                format!("[{at}]   job {job} stage {stage} resubmitted (map partition {partition})")
            }
            Event::ObjectMigrated {
                object,
                from,
                to,
                bytes,
            } => {
                format!(
                    "[{at}] migrate {} tier{} -> tier{} ({bytes} B)",
                    object.label(),
                    from.index(),
                    to.index()
                )
            }
            _ => return,
        };
        let writer = self.writer.as_mut().expect("writer present until drop");
        if let Err(e) = writeln!(writer, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(sticky(e));
        }
        self.writer.as_mut().expect("writer present").flush()
    }
}

impl<W: Write + Send> Drop for ProgressSink<W> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task_id: u64) -> Event {
        Event::TaskStarted {
            task_id,
            job: 0,
            stage: 1,
            partition: task_id as usize,
            executor: 0,
            slot: 0,
        }
    }

    #[test]
    fn inactive_bus_is_inert() {
        let mut bus = EventBus::new();
        assert!(!bus.is_active());
        bus.emit(SimTime::ZERO, ev(0)); // no sinks: no-op
        assert!(bus.flush().is_empty());
    }

    #[test]
    fn ring_retains_in_order_and_drops_oldest() {
        let ring = MemoryRing::new(3);
        let handle = ring.handle();
        let mut bus = EventBus::new();
        bus.attach(Box::new(ring));
        assert!(bus.is_active());
        for i in 0..5 {
            bus.emit(SimTime::from_us(i), ev(i));
        }
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.dropped(), 2);
        let events = handle.events();
        assert_eq!(events[0].at, SimTime::from_us(2));
        assert_eq!(events[2].at, SimTime::from_us(4));
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![
            TimedEvent {
                at: SimTime::from_us(5),
                event: Event::JobSubmitted { job: 0, stages: 2 },
            },
            TimedEvent {
                at: SimTime::from_us(9),
                event: Event::MbaThrottle {
                    tier: TierId::NVM_NEAR,
                    percent: 30,
                },
            },
            TimedEvent {
                at: SimTime::from_ms(1),
                event: Event::TaskFinished {
                    task_id: 7,
                    job: 0,
                    stage: 1,
                    partition: 3,
                    metrics: TaskMetrics {
                        records_in: 100,
                        ..Default::default()
                    },
                    breakdown: TaskBreakdown {
                        compute: SimTime::from_us(2),
                        ..Default::default()
                    },
                },
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().next().unwrap().contains("\"job_submitted\""));
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn flow_events_round_trip() {
        let events = vec![
            TimedEvent {
                at: SimTime::from_us(3),
                event: Event::FlowStarted {
                    task_id: Some(9),
                    link: "node0:up".to_string(),
                    bytes: 4096,
                    locality: "remote".to_string(),
                },
            },
            TimedEvent {
                at: SimTime::from_us(8),
                event: Event::FlowCompleted {
                    task_id: None,
                    link: "rack1:down".to_string(),
                    bytes: 4096,
                    locality: "rack-local".to_string(),
                },
            },
        ];
        let text = to_jsonl(&events);
        assert!(text.lines().next().unwrap().contains("\"flow_started\""));
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn jsonl_sink_matches_to_jsonl() {
        let mut sink = JsonlSink::new(Vec::new());
        let e = TimedEvent {
            at: SimTime::from_us(1),
            event: ev(42),
        };
        sink.on_event(e.at, &e.event);
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, to_jsonl(std::slice::from_ref(&e)));
        assert_eq!(parse_jsonl(&text).unwrap(), vec![e]);
    }

    #[test]
    fn progress_sink_reports_stage_edges_only() {
        let mut sink = ProgressSink::new(Vec::new());
        sink.on_event(SimTime::ZERO, &Event::JobSubmitted { job: 1, stages: 2 });
        sink.on_event(SimTime::from_us(3), &ev(0)); // task noise: suppressed
        sink.on_event(
            SimTime::from_ms(2),
            &Event::StageCompleted {
                job: 1,
                stage: 0,
                tasks: 8,
            },
        );
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("job 1 submitted (2 stages)"));
        assert!(text.contains("stage 0 done (8 tasks)"));
    }

    /// A writer that accepts `budget` bytes then fails every operation.
    struct FailingWriter {
        budget: usize,
        written: Vec<u8>,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget < buf.len() {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "disk full (simulated)",
                ));
            }
            self.budget -= buf.len();
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        let mut sink = JsonlSink::new(FailingWriter {
            budget: 0,
            written: Vec::new(),
        });
        sink.on_event(SimTime::ZERO, &ev(0));
        let err = sink.flush().expect_err("write error must surface");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // Sticky: later flushes keep failing, later events are dropped.
        assert!(sink.flush().is_err());
        sink.on_event(SimTime::from_us(1), &ev(1));
        assert!(sink.into_inner().written.is_empty());
    }

    #[test]
    fn bus_flush_collects_sink_errors() {
        let mut bus = EventBus::new();
        bus.attach(Box::new(JsonlSink::new(FailingWriter {
            budget: 0,
            written: Vec::new(),
        })));
        bus.attach(Box::new(JsonlSink::new(Vec::new())));
        bus.emit(SimTime::ZERO, ev(0));
        let errors = bus.flush();
        assert_eq!(errors.len(), 1, "only the broken sink reports");
        assert_eq!(errors[0].kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn progress_sink_surfaces_write_errors() {
        let mut sink = ProgressSink::new(FailingWriter {
            budget: 0,
            written: Vec::new(),
        });
        sink.on_event(SimTime::ZERO, &Event::JobSubmitted { job: 0, stages: 1 });
        assert!(sink.flush().is_err());
    }
}
