//! Shared runtime services every task sees.

use crate::config::SparkConf;
use crate::cost::CostModel;
use crate::shuffle::ShuffleManager;
use crate::storage::BlockManager;
use memtier_dfs::{Dfs, DfsClient};

/// The application-wide services: shuffle bucket store, block cache, cost
/// model and the DFS deployment backing `text_file`/`save_as_text_file`.
pub struct Runtime {
    /// Shuffle subsystem.
    pub shuffle: ShuffleManager,
    /// Block cache (all executors' storage regions pooled; see DESIGN.md).
    pub cache: BlockManager,
    /// Cost-model constants.
    pub cost: CostModel,
    /// DFS block size for writes.
    pub dfs_block_size: usize,
    /// DFS replication factor for writes.
    pub dfs_replication: usize,
    /// Hadoop-comparison mode (see `SparkConf::shuffle_through_disk`).
    pub shuffle_through_disk: bool,
    dfs: Dfs,
}

impl Runtime {
    /// Build the runtime from a validated configuration.
    pub fn new(conf: &SparkConf) -> Runtime {
        let cache_capacity = conf.executor_cache_bytes * conf.num_executors as u64;
        Runtime {
            shuffle: ShuffleManager::new(),
            cache: BlockManager::new(cache_capacity),
            cost: conf.cost.clone(),
            dfs_block_size: conf.dfs_block_size,
            dfs_replication: memtier_dfs::DEFAULT_REPLICATION.min(conf.dfs_datanodes),
            shuffle_through_disk: conf.shuffle_through_disk,
            dfs: Dfs::new(conf.dfs_datanodes, u64::MAX / 4),
        }
    }

    /// A DFS client handle.
    pub fn dfs(&self) -> DfsClient {
        self.dfs.client()
    }

    /// The DFS deployment itself (datanode fault injection, re-replication).
    pub fn dfs_deployment(&self) -> &Dfs {
        &self.dfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_wires_services() {
        let conf = SparkConf::default();
        let rt = Runtime::new(&conf);
        assert_eq!(rt.shuffle.live_shuffles(), 0);
        assert_eq!(rt.cache.stats().used, 0);
        let c = rt.dfs();
        c.write_file("/t", &[1, 2, 3], 2, 1).unwrap();
        assert_eq!(c.read_file("/t").unwrap(), vec![1, 2, 3]);
        // Replication is clamped to the datanode count.
        let small = SparkConf {
            dfs_datanodes: 1,
            ..SparkConf::default()
        };
        assert_eq!(Runtime::new(&small).dfs_replication, 1);
    }
}
