//! The `SparkContext`: application entry point and job driver.

use crate::config::{PlacementMode, SparkConf};
use crate::cost::OpCost;
use crate::doctor::{diagnose, DoctorInputs, DoctorReport};
use crate::error::{Result, SparkError};
use crate::events::{
    Event, EventBus, EventSink, MemoryRing, MemoryRingHandle, TimedEvent, DEFAULT_RING_CAPACITY,
};
use crate::explain::RunDigest;
use crate::faultsim::{FaultState, RecoveryStats};
use crate::metrics::{AppMetrics, StageRollup, SystemEvents};
use crate::net::{NetChargeKind, NetReport, NetState};
use crate::profile::{build_profile, ProfileLog, RunProfile};
use crate::rdd::source::{GeneratorRdd, ParallelizeRdd, TextFileRdd};
use crate::rdd::{Data, Rdd, RddId, RddVitals, TaskEnv};
use crate::runtime::Runtime;
use crate::scheduler::executor::{build_executors, ExecutorSpec};
use crate::scheduler::{build_plan, JobRunner};
use crate::storage::CacheStats;
use memtier_des::{EngineStats, ProfPhase, SimTime};
use memtier_dfs::DfsClient;
use memtier_memsim::{
    CounterSample, CounterSnapshot, HotnessReport, MemorySystem, MigrationStats, ObjectSample,
    PlacementEngine, RunTelemetry, TierId, WindowRollup,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Everything an application run produced, for the characterization layer.
pub struct RunReport {
    /// Total virtual execution time.
    pub elapsed: SimTime,
    /// Memory-system telemetry (counters, energy, wear, utilization).
    pub telemetry: RunTelemetry,
    /// Engine-level metrics.
    pub metrics: AppMetrics,
    /// The Fig. 5 system-level event vector.
    pub events: SystemEvents,
    /// Block-cache statistics.
    pub cache: CacheStats,
    /// Per-stage metric rollups, in completion order across all jobs.
    pub stage_rollups: Vec<StageRollup>,
    /// Critical-path profile: where the virtual runtime went
    /// (conserves: attribution components sum to `elapsed`).
    pub profile: RunProfile,
    /// Per-object memory attribution: every Spark-level object (cached RDD,
    /// shuffle segment, input, broadcast, scratch) ranked by the media
    /// traffic it drove, with per-tier residency, stall, energy and NVM
    /// wear. Conserves against `telemetry.counters` in exact integers.
    pub hotness: HotnessReport,
    /// What the placement engine did: migrations, promotions/demotions,
    /// bytes copied, epochs crossed. All zeros under static placement.
    pub migrations: MigrationStats,
    /// I/O errors event sinks hit during the run, surfaced at flush time
    /// (empty on a clean run). Sinks never kill a simulation mid-run, but
    /// a truncated event log must not pass silently either.
    pub sink_errors: Vec<String>,
    /// Fault-injection and recovery rollup: failures seen, retries and
    /// resubmissions issued, speculation outcomes, and useful vs. wasted
    /// virtual time. Fault and waste counters are all zeros when no
    /// [`FaultPlan`](crate::FaultPlan) is configured (`useful_time` always
    /// accrues — it is the waste fraction's denominator).
    pub recovery: RecoveryStats,
    /// Compact conserved decomposition of this run for the regression
    /// explainer ([`crate::explain`]): the critical-path phase rollup
    /// sliced per stage, per-object × per-tier footprints, and the
    /// migration/recovery rollups, all in exact integers. A pure function
    /// of the run, so it lives inside the byte-identity domain.
    pub digest: RunDigest,
    /// The run doctor's diagnosis: conserved windowed series (per-tier
    /// bandwidth and stall, executor busy/idle, queue depth, eviction and
    /// migration churn, fault waste) plus ranked, evidence-backed findings.
    /// Built from always-on sources only, so it is a pure function of the
    /// run and lives inside the byte-identity domain.
    pub doctor: DoctorReport,
    /// Aggregated network-plane activity: completed transfer counts and
    /// bytes split by locality class and traffic kind, plus per-link
    /// totals. All zeros (and skipped from serialized results) under the
    /// default loopback wiring, keeping pre-plane artifacts byte-identical.
    pub network: NetReport,
    /// Wall-clock engine self-profiling sidecar: present only when
    /// [`SparkConf::profile_engine`] was set. Strictly outside the
    /// byte-identity domain — everything else on this report is a pure
    /// function of (workload, config, seed), while this block contains
    /// host-dependent wall-clock measurements.
    pub engine: Option<EngineStats>,
}

struct Inner {
    conf: SparkConf,
    runtime: Runtime,
    mem: Mutex<MemorySystem>,
    placement: Mutex<PlacementEngine>,
    clock: Mutex<SimTime>,
    next_rdd: AtomicU32,
    app: Mutex<AppMetrics>,
    executors: Vec<ExecutorSpec>,
    trace: Mutex<Option<Vec<crate::trace::TaskSpan>>>,
    events: Mutex<EventBus>,
    rollups: Mutex<Vec<StageRollup>>,
    event_log: Mutex<Option<MemoryRingHandle>>,
    profile_log: Mutex<ProfileLog>,
    faults: Mutex<FaultState>,
    net: Mutex<NetState>,
}

/// A handle to one application. Cloning shares the application (like
/// `SparkContext` references in Spark).
///
/// # Examples
///
/// ```
/// use sparklite::{SparkConf, SparkContext};
///
/// let sc = SparkContext::new(SparkConf::default()).unwrap();
/// let doubled = sc.parallelize(vec![1u64, 2, 3], 2).map(|x| x * 2);
/// assert_eq!(doubled.collect().unwrap(), vec![2, 4, 6]);
/// // Execution time is virtual and deterministic:
/// assert!(sc.elapsed().as_secs_f64() > 0.0);
/// ```
#[derive(Clone)]
pub struct SparkContext {
    inner: Arc<Inner>,
}

impl SparkContext {
    /// Start an application with the given configuration.
    pub fn new(conf: SparkConf) -> Result<SparkContext> {
        conf.validate()?;
        let runtime = Runtime::new(&conf);
        let mut mem = MemorySystem::new(conf.memsim.clone());
        if conf.profile_engine {
            mem.enable_engine_prof();
        }
        let executors = build_executors(&conf, mem.topology());
        let placement = match &conf.placement_mode {
            PlacementMode::Static => PlacementEngine::new_static(),
            PlacementMode::Dynamic(spec) => PlacementEngine::new_dynamic(spec),
        };
        let faults = FaultState::new(conf.fault_plan.clone(), executors.len());
        let net = NetState::new(&conf.network);
        Ok(SparkContext {
            inner: Arc::new(Inner {
                conf,
                runtime,
                mem: Mutex::new(mem),
                placement: Mutex::new(placement),
                clock: Mutex::new(SimTime::ZERO),
                next_rdd: AtomicU32::new(0),
                app: Mutex::new(AppMetrics::default()),
                executors,
                trace: Mutex::new(None),
                events: Mutex::new(EventBus::new()),
                rollups: Mutex::new(Vec::new()),
                event_log: Mutex::new(None),
                profile_log: Mutex::new(ProfileLog::default()),
                faults: Mutex::new(faults),
                net: Mutex::new(net),
            }),
        })
    }

    /// The application's configuration.
    pub fn conf(&self) -> &SparkConf {
        &self.inner.conf
    }

    /// Shared runtime services.
    pub(crate) fn runtime(&self) -> &Runtime {
        &self.inner.runtime
    }

    /// The resolved executor placements.
    pub fn executors(&self) -> &[ExecutorSpec] {
        &self.inner.executors
    }

    /// Allocate a lineage-node id.
    pub(crate) fn next_rdd_id(&self) -> RddId {
        RddId(self.inner.next_rdd.fetch_add(1, Ordering::Relaxed))
    }

    /// A DFS client for staging input data.
    pub fn dfs(&self) -> DfsClient {
        self.inner.runtime.dfs()
    }

    // --- sources ----------------------------------------------------------

    /// Distribute a driver-side collection over `partitions` partitions.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> Rdd<T> {
        let vitals = RddVitals::new(self.next_rdd_id(), "parallelize", partitions);
        Rdd::from_node(
            Arc::new(ParallelizeRdd::new(vitals, data, partitions)),
            self.clone(),
        )
    }

    /// Distribute with the configured default parallelism.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> Rdd<T> {
        self.parallelize(data, self.inner.conf.parallelism())
    }

    /// A deterministic generator source: partition `i`'s records are
    /// `per_part(i)`. `cost` prices the generation closure.
    pub fn generate<T: Data>(
        &self,
        partitions: usize,
        per_part: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
        cost: OpCost,
    ) -> Rdd<T> {
        assert!(partitions > 0, "need at least one partition");
        let vitals = RddVitals::new(self.next_rdd_id(), "generate", partitions);
        Rdd::from_node(
            Arc::new(GeneratorRdd::new(vitals, Arc::new(per_part), cost)),
            self.clone(),
        )
    }

    /// Distribute a read-only value to all executors (`sc.broadcast`).
    pub fn broadcast<T: crate::memsize::MemSize + Send + Sync + 'static>(
        &self,
        value: T,
    ) -> crate::broadcast::Broadcast<T> {
        crate::broadcast::Broadcast::new(value)
    }

    /// Read a DFS text file, one partition per block, Hadoop line-boundary
    /// semantics.
    pub fn text_file(&self, path: &str) -> Result<Rdd<String>> {
        let status = self.dfs().stat(path)?;
        let partitions = status.blocks.len().max(1);
        let vitals = RddVitals::new(self.next_rdd_id(), format!("text_file({path})"), partitions);
        Ok(Rdd::from_node(
            Arc::new(TextFileRdd::new(vitals, status)),
            self.clone(),
        ))
    }

    // --- execution ---------------------------------------------------------

    /// Run a job: one task per partition of `rdd`, each applying `f` to its
    /// partition within a [`TaskEnv`]. Returns per-partition results.
    pub(crate) fn run_job<T: Data, U: Send + 'static>(
        &self,
        rdd: &Rdd<T>,
        f: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> U + Send + Sync>,
    ) -> Result<Vec<U>> {
        if !Arc::ptr_eq(&self.inner, &rdd.context().inner) {
            return Err(SparkError::ContextMismatch);
        }
        let inner = &self.inner;
        let plan = build_plan(rdd.node(), &inner.runtime);
        let mut mem = inner.mem.lock();
        let mut placement = inner.placement.lock();
        let mut clock = inner.clock.lock();
        let mut app = inner.app.lock();
        let mut trace = inner.trace.lock();
        let mut events = inner.events.lock();
        let mut rollups = inner.rollups.lock();
        let mut profile_log = inner.profile_log.lock();
        let mut faults = inner.faults.lock();
        let mut net = inner.net.lock();
        let job_seq = app.jobs;
        let runner = JobRunner::new(
            &inner.runtime,
            &mut mem,
            &mut placement,
            &mut app,
            &inner.executors,
            plan,
            f,
            *clock,
            job_seq,
            trace.as_mut(),
            &mut events,
            &mut rollups,
            &mut profile_log,
            &mut faults,
            &mut net,
        );
        let outcome = runner.run()?;
        *clock = outcome.finished_at;
        app.jobs += 1;
        app.stages += outcome.stages_run;
        Ok(outcome.results)
    }

    // --- observation & control ---------------------------------------------

    /// Current virtual time (the application's running execution time).
    pub fn elapsed(&self) -> SimTime {
        *self.inner.clock.lock()
    }

    /// Charge serial driver-side computation: advances the virtual clock by
    /// `cpu_ns` with no executor parallelism. Workloads whose algorithms do
    /// non-trivial work between jobs on the driver (model normalization,
    /// split selection, …) use this so that work is part of the measured
    /// execution time — exactly as it is for a real Spark driver.
    pub fn run_driver_work(&self, cpu_ns: f64) {
        let mut clock = self.inner.clock.lock();
        let mut mem = self.inner.mem.lock();
        *clock += SimTime::from_ns_f64(cpu_ns);
        mem.advance(*clock);
        self.inner.app.lock().totals.cpu_ns += cpu_ns.max(0.0);
    }

    /// Start sampling per-tier channel utilization every `interval` of
    /// virtual time (see [`MemorySystem::enable_utilization_sampling`]).
    pub fn enable_utilization_sampling(&self, interval: SimTime) {
        self.inner.mem.lock().enable_utilization_sampling(interval);
    }

    /// The recorded utilization samples so far.
    pub fn utilization_samples(&self) -> Vec<memtier_memsim::UtilizationSample> {
        self.inner.mem.lock().utilization_samples().to_vec()
    }

    /// Start sampling the full counter time series (media counters,
    /// delivered bandwidth, queue occupancy, dynamic energy) every
    /// `interval` of virtual time (see
    /// [`MemorySystem::enable_counter_sampling`]).
    pub fn enable_counter_sampling(&self, interval: SimTime) {
        self.inner.mem.lock().enable_counter_sampling(interval);
    }

    /// The recorded counter samples so far.
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.inner.mem.lock().counter_samples().to_vec()
    }

    /// Attach a lifecycle-event sink. All jobs run after this call emit
    /// typed events (job/stage/task edges, cache and shuffle activity, MBA
    /// changes) to it. With no sink attached, emission is disabled and
    /// costs nothing measurable.
    pub fn add_event_sink(&self, sink: Box<dyn EventSink>) {
        self.inner.events.lock().attach(sink);
    }

    /// Attach (once) a bounded in-memory event log and return a read
    /// handle to it. Idempotent: repeated calls return handles onto the
    /// same ring.
    pub fn enable_event_log(&self) -> MemoryRingHandle {
        let mut log = self.inner.event_log.lock();
        if let Some(handle) = log.as_ref() {
            return handle.clone();
        }
        let ring = MemoryRing::new(DEFAULT_RING_CAPACITY);
        let handle = ring.handle();
        self.inner.events.lock().attach(Box::new(ring));
        *log = Some(handle.clone());
        handle
    }

    /// The events retained by the in-memory log (empty if
    /// [`enable_event_log`](Self::enable_event_log) was never called).
    pub fn logged_events(&self) -> Vec<TimedEvent> {
        self.inner
            .event_log
            .lock()
            .as_ref()
            .map(|h| h.events())
            .unwrap_or_default()
    }

    /// Per-stage metric rollups for every stage completed so far.
    pub fn stage_rollups(&self) -> Vec<StageRollup> {
        self.inner.rollups.lock().clone()
    }

    /// The raw profiler log (per-task breakdowns, stage activation edges,
    /// job windows) recorded so far. Always collected, like rollups.
    pub fn profile_log(&self) -> ProfileLog {
        self.inner.profile_log.lock().clone()
    }

    /// The critical-path profile of everything run so far: walks the
    /// recorded DAG, extracts the critical path, and rolls its components
    /// into a conserved attribution of the current virtual time.
    pub fn run_profile(&self) -> RunProfile {
        let elapsed = *self.inner.clock.lock();
        build_profile(&self.inner.profile_log.lock(), elapsed)
    }

    /// Start recording per-task spans for Chrome-tracing export. Only jobs
    /// run after this call are captured.
    pub fn enable_tracing(&self) {
        let mut t = self.inner.trace.lock();
        if t.is_none() {
            *t = Some(Vec::new());
        }
    }

    /// The recorded task spans, if tracing is enabled.
    pub fn task_spans(&self) -> Option<Vec<crate::trace::TaskSpan>> {
        self.inner.trace.lock().clone()
    }

    /// The recorded timeline as Chrome-tracing JSON (`chrome://tracing`,
    /// Perfetto). `None` if tracing was never enabled.
    ///
    /// Task spans are enriched with whatever other telemetry is on: counter
    /// samples become per-tier counter tracks, logged job/stage events
    /// become driver-lane spans with flow arrows, and the critical path is
    /// highlighted (marked spans plus flow arrows chaining the path's
    /// tasks). Call after [`finish`](Self::finish) to include the final
    /// conservation sample.
    pub fn chrome_trace(&self) -> Option<String> {
        let samples = self.inner.mem.lock().counter_samples().to_vec();
        let events = self.logged_events();
        let profile = self.run_profile();
        let objects = self.object_series();
        self.inner.trace.lock().as_ref().map(|spans| {
            crate::trace::chrome_trace_json_objects(
                spans,
                &samples,
                &events,
                Some(&profile),
                &objects,
            )
        })
    }

    /// The per-object memory-attribution report so far: every Spark-level
    /// object ranked by the media traffic it drove, with per-tier
    /// residency, stall, energy and NVM-wear breakdowns. Always collected
    /// (like the profiler log); conserves against [`counters`](Self::counters)
    /// in exact integers.
    pub fn hotness_report(&self) -> HotnessReport {
        self.inner.mem.lock().hotness_report()
    }

    /// The per-object traffic time series recorded so far (one sample per
    /// attributed access batch, cumulative bytes per object).
    pub fn object_series(&self) -> Vec<ObjectSample> {
        self.inner.mem.lock().object_series().to_vec()
    }

    /// The windowed rollup of every counter charge so far: per-tier traffic
    /// and priced stall per virtual-time window. Always on (one map upsert
    /// per charge) and conserving against [`counters`](Self::counters) in
    /// exact integers — the run doctor's primary series source.
    pub fn window_rollup(&self) -> WindowRollup {
        self.inner.mem.lock().windows().clone()
    }

    /// Emit the structured unpersist event (called by
    /// [`Rdd::unpersist`](crate::rdd::Rdd::unpersist) after the block
    /// manager dropped the RDD's blocks).
    pub(crate) fn emit_unpersist(&self, rdd: u32, bytes_freed: u64) {
        let now = *self.inner.clock.lock();
        let mut events = self.inner.events.lock();
        if events.is_active() {
            events.emit(now, Event::RddUnpersisted { rdd, bytes_freed });
        }
    }

    /// What the placement engine has done so far (all zeros under static
    /// placement).
    pub fn migration_stats(&self) -> MigrationStats {
        self.inner.placement.lock().stats()
    }

    /// The active placement policy's name (`"membind"` in static mode).
    pub fn placement_policy_name(&self) -> &'static str {
        self.inner.placement.lock().policy_name()
    }

    /// Engine-level metrics so far.
    pub fn metrics(&self) -> AppMetrics {
        *self.inner.app.lock()
    }

    /// Live `ipmctl`-style counter snapshot.
    pub fn counters(&self) -> CounterSnapshot {
        self.inner.mem.lock().counters()
    }

    /// Apply an MBA throttle level (percent) to one tier.
    pub fn set_mba_level(&self, tier: TierId, percent: u8) {
        let mut mem = self.inner.mem.lock();
        let now = *self.inner.clock.lock();
        mem.set_mba_level(now, tier, percent);
        let mut events = self.inner.events.lock();
        if events.is_active() {
            events.emit(now, Event::MbaThrottle { tier, percent });
        }
    }

    /// Apply an MBA throttle level to every tier.
    pub fn set_mba_all(&self, percent: u8) {
        let mut mem = self.inner.mem.lock();
        let now = *self.inner.clock.lock();
        mem.set_mba_all(now, percent);
        let mut events = self.inner.events.lock();
        if events.is_active() {
            for tier in TierId::all() {
                events.emit(now, Event::MbaThrottle { tier, percent });
            }
        }
    }

    /// Close out the application: returns the full run report (virtual
    /// time, telemetry with static energy integrated, metrics, event
    /// vector).
    pub fn finish(&self) -> RunReport {
        let mut mem = self.inner.mem.lock();
        let elapsed = *self.inner.clock.lock();
        let prof = mem.engine_prof().clone();
        let mut report = {
            let _t = prof.phase(ProfPhase::Serialization);
            let telemetry = mem.finish_run(elapsed);
            let sink_errors: Vec<String> = self
                .inner
                .events
                .lock()
                .flush()
                .iter()
                .map(|e| e.to_string())
                .collect();
            let metrics = *self.inner.app.lock();
            let snap = telemetry.counters;
            let (reads, writes) = TierId::all().iter().fold((0, 0), |(r, w), &t| {
                (r + snap.tier(t).reads, w + snap.tier(t).writes)
            });
            let events = SystemEvents::collect(&metrics, reads, writes);
            let hotness = telemetry.hotness.clone();
            let migrations = self.inner.placement.lock().stats();
            let (recovery, waste_spans) = {
                let faults = self.inner.faults.lock();
                (faults.stats, faults.waste_spans.clone())
            };
            let profile_log = self.inner.profile_log.lock();
            let profile = build_profile(&profile_log, elapsed);
            let digest = crate::explain::build_digest(
                &profile,
                &profile_log,
                &hotness,
                migrations,
                recovery,
            );
            let cache = self.inner.runtime.cache.stats();
            let params = TierId::all().map(|t| mem.tier_params(t).clone());
            let total_cores: u64 = self.inner.executors.iter().map(|e| e.cores as u64).sum();
            let net = self.inner.net.lock();
            debug_assert!(
                net.conserves(),
                "per-link byte counters must re-sum from completed transfers"
            );
            let network = net.report();
            let doctor = diagnose(&DoctorInputs {
                elapsed,
                total_cores,
                windows: &telemetry.windows,
                counters: &snap,
                params: &params,
                profile: &profile,
                log: &profile_log,
                hotness: &hotness,
                cache: &cache,
                migrations,
                recovery,
                waste_spans: &waste_spans,
                object_series: mem.object_series(),
                network: network.clone(),
                net_records: &net.records,
            });
            drop(net);
            drop(profile_log);
            RunReport {
                elapsed,
                telemetry,
                metrics,
                events,
                cache,
                stage_rollups: self.inner.rollups.lock().clone(),
                profile,
                hotness,
                migrations,
                sink_errors,
                recovery,
                digest,
                doctor,
                network,
                engine: None,
            }
        };
        // Snapshot after the Serialization scope closes so report assembly
        // is included in the phase attribution.
        report.engine = prof.snapshot(elapsed.as_secs_f64());
        report
    }

    /// Fault-injection and recovery statistics so far. Fault and waste
    /// counters are all zeros with no fault plan configured; `useful_time`
    /// accrues regardless.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.inner.faults.lock().stats
    }

    /// Aggregated network-plane activity so far (all zeros under the
    /// default loopback wiring).
    pub fn net_report(&self) -> NetReport {
        self.inner.net.lock().report()
    }

    /// Restore full DFS replication after datanode loss, charging every
    /// replica copy through the network plane as a driverless
    /// `src datanode → dst datanode` transfer. The virtual clock advances
    /// to the last copy's completion, so re-replication traffic competes
    /// for the same rack uplinks as everything else. Under loopback wiring
    /// the copies are free and instantaneous, exactly as before the plane
    /// existed. Returns the number of replicas created.
    pub fn rereplicate_dfs(&self) -> Result<usize> {
        let copies = self
            .inner
            .runtime
            .dfs_deployment()
            .rereplicate_with_records()
            .map_err(SparkError::from)?;
        let mut net = self.inner.net.lock();
        if !net.active() || copies.is_empty() {
            return Ok(copies.len());
        }
        let mut clock = self.inner.clock.lock();
        let mut events = self.inner.events.lock();
        let start = *clock;
        for c in &copies {
            if c.bytes == 0 {
                continue;
            }
            let topo = net.topology().expect("active plane has a topology");
            let src = topo.node_of_datanode(c.src.0);
            let dst = topo.node_of_datanode(c.dst.0);
            if src == dst {
                net.note_node_local(c.bytes);
                continue;
            }
            // Pace each copy at its path's nominal solo rate; concurrent
            // copies then fair-share the links like any other flows.
            let nominal = topo.nominal_time(src, dst, c.bytes);
            let rate = c.bytes as f64 / nominal.as_secs_f64().max(1e-12);
            let (_, links, locality) = net.begin(
                start,
                None,
                NetChargeKind::Rereplicate,
                src,
                dst,
                c.bytes,
                rate,
                false,
            );
            if events.is_active() {
                let topo = net.topology().expect("active plane has a topology");
                for &l in &links {
                    events.emit(
                        start,
                        Event::FlowStarted {
                            task_id: None,
                            link: topo.link_at(l).label(),
                            bytes: c.bytes,
                            locality: locality.label().to_string(),
                        },
                    );
                }
            }
        }
        // Drain the plane: re-replication runs to completion before the
        // application resumes, advancing the virtual clock past the last
        // copy.
        while let Some(t) = net.next_event_time() {
            if let Some(rec) = net.step(t) {
                let (bytes, locality, links) = (rec.bytes, rec.locality, rec.links.clone());
                if events.is_active() {
                    let topo = net.topology().expect("active plane has a topology");
                    for &l in &links {
                        events.emit(
                            t,
                            Event::FlowCompleted {
                                task_id: None,
                                link: topo.link_at(l).label(),
                                bytes,
                                locality: locality.label().to_string(),
                            },
                        );
                    }
                }
            }
            if t > *clock {
                *clock = t;
            }
        }
        self.inner.mem.lock().advance(*clock);
        Ok(copies.len())
    }
}
