//! Task- and application-level metrics, and the system-level event vector
//! the paper's Fig. 5 correlates with execution time.

use memtier_des::SimTime;
use memtier_memsim::AccessBatch;
use serde::{Deserialize, Serialize};

/// Metrics accumulated by one task on the data plane. The time plane turns
/// these into the task's virtual duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Records consumed from stage inputs.
    pub records_in: u64,
    /// Records produced by the task's terminal operator.
    pub records_out: u64,
    /// Bytes read at stage inputs (source scan, cache hit, shuffle fetch).
    pub input_bytes: u64,
    /// Bytes produced at stage outputs (shuffle write, cache put, result).
    pub output_bytes: u64,
    /// Shuffle bytes fetched.
    pub shuffle_read_bytes: u64,
    /// Shuffle bytes written.
    pub shuffle_write_bytes: u64,
    /// Shuffle buckets fetched (per-fetch overheads scale with this).
    pub shuffle_buckets_read: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses (lookups on cached RDDs that had to recompute).
    pub cache_misses: u64,
    /// Modeled CPU nanoseconds.
    pub cpu_ns: f64,
    /// The subset of `cpu_ns` charged to fetching/deserializing shuffle
    /// input (scan, per-bucket overheads, MapReduce-mode disk terms) — the
    /// profiler splits it out of the compute component.
    #[serde(default)]
    pub shuffle_fetch_ns: f64,
    /// Memory traffic to charge against the executor's bound tier(s).
    pub traffic: AccessBatch,
}

impl TaskMetrics {
    /// Merge another task's metrics into this one.
    pub fn merge(&mut self, other: &TaskMetrics) {
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.shuffle_read_bytes += other.shuffle_read_bytes;
        self.shuffle_write_bytes += other.shuffle_write_bytes;
        self.shuffle_buckets_read += other.shuffle_buckets_read;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cpu_ns += other.cpu_ns;
        self.shuffle_fetch_ns += other.shuffle_fetch_ns;
        self.traffic += other.traffic;
    }
}

/// Application-level aggregation across every job the context ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AppMetrics {
    /// Jobs executed (one per action).
    pub jobs: u64,
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Sum of all task metrics.
    pub totals: TaskMetrics,
}

impl AppMetrics {
    /// Record one finished task.
    pub fn record_task(&mut self, m: &TaskMetrics) {
        self.tasks += 1;
        self.totals.merge(m);
    }
}

/// Per-stage metric rollup: everything one stage's tasks did, plus the
/// stage's virtual submit/complete window. The scheduler produces one per
/// executed stage (always — the cost is one [`TaskMetrics::merge`] per
/// task), giving the per-stage traffic decomposition the paper's Fig. 2
/// reads off `ipmctl` between stage boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageRollup {
    /// Owning job (context-wide sequence number).
    pub job: u64,
    /// Stage id within the job's plan.
    pub stage: u32,
    /// Tasks the stage ran.
    pub tasks: u64,
    /// Virtual instant the stage became runnable.
    pub submitted: SimTime,
    /// Virtual instant the stage's last task finished.
    pub completed: SimTime,
    /// Sum of the stage's task metrics.
    pub metrics: TaskMetrics,
}

impl StageRollup {
    /// The stage's wall span of virtual time.
    pub fn duration(&self) -> SimTime {
        self.completed.saturating_sub(self.submitted)
    }
}

/// The system-level event vector of the paper's Fig. 5: one scalar per
/// low-level metric, collected per run, correlated against execution time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemEvents {
    /// `(event name, value)` pairs, fixed order.
    pub events: Vec<(String, f64)>,
}

impl SystemEvents {
    /// Build the event vector from application metrics plus the memory
    /// system's counter totals for the run.
    pub fn collect(app: &AppMetrics, mem_reads: u64, mem_writes: u64) -> SystemEvents {
        let t = &app.totals;
        let ev = |name: &str, v: f64| (name.to_string(), v);
        SystemEvents {
            events: vec![
                ev("cpu_ns", t.cpu_ns),
                ev("tasks", app.tasks as f64),
                ev("stages", app.stages as f64),
                ev("jobs", app.jobs as f64),
                ev("records_in", t.records_in as f64),
                ev("records_out", t.records_out as f64),
                ev("input_bytes", t.input_bytes as f64),
                ev("output_bytes", t.output_bytes as f64),
                ev("shuffle_read_bytes", t.shuffle_read_bytes as f64),
                ev("shuffle_write_bytes", t.shuffle_write_bytes as f64),
                ev("mem_reads", mem_reads as f64),
                ev("mem_writes", mem_writes as f64),
                ev("cache_hits", t.cache_hits as f64),
                ev("cache_misses", t.cache_misses as f64),
            ],
        }
    }

    /// Event names in collection order.
    pub fn names(&self) -> Vec<&str> {
        self.events.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Value of a named event.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.events.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let mut a = TaskMetrics {
            records_in: 10,
            cpu_ns: 100.0,
            traffic: AccessBatch::sequential_read(64),
            ..Default::default()
        };
        let b = TaskMetrics {
            records_in: 5,
            cpu_ns: 50.0,
            cache_hits: 2,
            traffic: AccessBatch::sequential_write(64),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.records_in, 15);
        assert_eq!(a.cpu_ns, 150.0);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.traffic.reads, 1);
        assert_eq!(a.traffic.writes, 1);
    }

    #[test]
    fn app_metrics_count_tasks() {
        let mut app = AppMetrics::default();
        app.record_task(&TaskMetrics {
            records_in: 3,
            ..Default::default()
        });
        app.record_task(&TaskMetrics {
            records_in: 4,
            ..Default::default()
        });
        assert_eq!(app.tasks, 2);
        assert_eq!(app.totals.records_in, 7);
    }

    #[test]
    fn stage_rollup_duration() {
        let r = StageRollup {
            job: 0,
            stage: 2,
            tasks: 8,
            submitted: SimTime::from_ms(3),
            completed: SimTime::from_ms(10),
            metrics: TaskMetrics::default(),
        };
        assert_eq!(r.duration(), SimTime::from_ms(7));
    }

    #[test]
    fn event_vector_lookup() {
        let mut app = AppMetrics {
            jobs: 3,
            stages: 7,
            ..AppMetrics::default()
        };
        app.record_task(&TaskMetrics {
            cpu_ns: 1e9,
            ..Default::default()
        });
        let ev = SystemEvents::collect(&app, 1000, 500);
        assert_eq!(ev.get("jobs"), Some(3.0));
        assert_eq!(ev.get("mem_reads"), Some(1000.0));
        assert_eq!(ev.get("mem_writes"), Some(500.0));
        assert_eq!(ev.get("cpu_ns"), Some(1e9));
        assert_eq!(ev.get("nonexistent"), None);
        assert_eq!(ev.names().len(), 14);
    }
}
