//! Broadcast variables: read-only driver values shared with every task.
//!
//! Spark ships a broadcast variable to each executor once and lets every
//! task read it locally. The engine models the same: the value lives behind
//! an `Arc`, and the first task of a job *per executor* would pay the fetch
//! — we approximate executor-granular delivery by charging each task a
//! `1/cores` share of the serialized size, which totals one fetch per
//! executor per wave, matching Spark's TorrentBroadcast amortization.

use crate::memsize::MemSize;
use crate::rdd::TaskEnv;
use std::sync::Arc;

/// A read-only value distributed to all executors.
pub struct Broadcast<T: Send + Sync + 'static> {
    value: Arc<T>,
    bytes: u64,
}

impl<T: Send + Sync + 'static> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
            bytes: self.bytes,
        }
    }
}

impl<T: MemSize + Send + Sync + 'static> Broadcast<T> {
    /// Wrap a driver-side value for distribution.
    pub fn new(value: T) -> Broadcast<T> {
        let bytes = value.mem_size() as u64;
        Broadcast {
            value: Arc::new(value),
            bytes,
        }
    }
}

impl<T: Send + Sync + 'static> Broadcast<T> {
    /// Access the value inside a task, charging the amortized fetch.
    ///
    /// Call once per task (repeated calls recharge, mirroring repeated
    /// block-manager reads in Spark when a task re-materializes a broadcast
    /// iterator).
    pub fn value<'b>(&'b self, env: &mut TaskEnv<'_>) -> &'b T {
        // Amortized executor-level fetch: a 40-core executor fetches the
        // broadcast once and its ~40 concurrent tasks share it.
        let share = (self.bytes / 32).max(64);
        env.charge_input_scan(memtier_memsim::ObjectId::Broadcast, share);
        // Under a topology the same share travels driver → executor.
        env.record_net(
            crate::net::NetChargeKind::Broadcast,
            crate::net::NetPeer::Driver,
            true,
            share,
        );
        &self.value
    }

    /// Serialized size estimate in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }

    /// Driver-side access (no task context, no charge).
    pub fn driver_value(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparkConf;
    use crate::runtime::Runtime;

    #[test]
    fn broadcast_charges_amortized_fetch() {
        let rt = Runtime::new(&SparkConf::default());
        let b = Broadcast::new(vec![0u64; 1000]); // ~8 KB
        assert!(b.size_bytes() >= 8000);
        let mut env = TaskEnv::new(&rt);
        let v = b.value(&mut env);
        assert_eq!(v.len(), 1000);
        let charged = env.metrics.input_bytes;
        assert!(charged > 0 && charged < b.size_bytes());
        assert_eq!(b.driver_value().len(), 1000);
    }

    #[test]
    fn clone_shares_the_value() {
        let b = Broadcast::new(String::from("model"));
        let c = b.clone();
        assert_eq!(c.driver_value(), "model");
        assert_eq!(c.size_bytes(), b.size_bytes());
    }
}
