//! The shuffle subsystem: partitioners, bucket storage, map-output tracking.
//!
//! A shuffle map task partitions its output into one bucket per reduce
//! partition and registers the buckets here; reduce tasks fetch every
//! `(map, reduce)` bucket addressed to them. Bucket payloads are type-erased
//! (`Arc<dyn Any>`) — the typed ends live in
//! [`ShuffledRdd`](crate::rdd::ShuffledRdd).

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// A type-erased, shareable partition payload (`Arc<Vec<T>>` underneath).
pub type AnyPart = Arc<dyn Any + Send + Sync>;

/// Identifier of a registered shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShuffleId(pub u32);

/// Deterministic hasher (fixed-key SipHash): shuffle placement must be a
/// pure function of the key so runs are reproducible.
pub type DetHasher = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// Hash a key deterministically.
pub fn det_hash<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Assigns keys to reduce partitions.
pub trait Partitioner<K>: Send + Sync {
    /// Number of reduce partitions.
    fn num_partitions(&self) -> usize;
    /// The partition a key belongs to (must be `< num_partitions`).
    fn partition(&self, key: &K) -> usize;
}

/// Spark's default: partition by key hash.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// A hash partitioner with `partitions` reduce partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "partitioner needs at least one partition");
        HashPartitioner { partitions }
    }
}

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn partition(&self, key: &K) -> usize {
        (det_hash(key) % self.partitions as u64) as usize
    }
}

/// Range partitioner for sorted output (`sort_by_key`): keys are assigned by
/// binary search over sampled split points, so partition `i` holds keys
/// entirely ≤ partition `i+1`'s.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    /// Upper bounds of partitions `0..n-1` (partition `n-1` is unbounded).
    bounds: Vec<K>,
}

impl<K: Ord + Clone> RangePartitioner<K> {
    /// Build from a sample of keys, splitting it into `partitions` quantile
    /// ranges. Duplicated split points collapse, so the effective partition
    /// count can be lower for heavily skewed samples.
    pub fn from_sample(mut sample: Vec<K>, partitions: usize) -> Self {
        assert!(partitions > 0, "partitioner needs at least one partition");
        sample.sort();
        sample.dedup();
        let mut bounds = Vec::with_capacity(partitions.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..partitions {
                let idx = i * sample.len() / partitions;
                if idx > 0 && idx < sample.len() {
                    let candidate = sample[idx].clone();
                    if bounds.last() != Some(&candidate) {
                        bounds.push(candidate);
                    }
                }
            }
        }
        RangePartitioner { bounds }
    }

    /// The split points.
    pub fn bounds(&self) -> &[K] {
        &self.bounds
    }
}

impl<K: Ord + Clone + Send + Sync> Partitioner<K> for RangePartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.bounds.len() + 1
    }
    fn partition(&self, key: &K) -> usize {
        self.bounds.partition_point(|b| b <= key)
    }
}

/// One shuffle bucket: the records a map task addressed to one reducer.
#[derive(Clone)]
pub struct Bucket {
    /// Payload (`Arc<Vec<(K, C)>>`).
    pub data: AnyPart,
    /// Record count.
    pub records: u64,
    /// Serialized size estimate in bytes.
    pub bytes: u64,
}

struct ShuffleData {
    num_maps: usize,
    num_reduces: usize,
    buckets: HashMap<(usize, usize), Bucket>,
    done_maps: std::collections::HashSet<usize>,
    /// Executor that produced each map output (the `MapOutputTracker`
    /// location half): reducers use it to price fetches over the network
    /// plane and the scheduler to prefer map-local placement.
    map_exec: HashMap<usize, usize>,
}

/// Stores shuffle buckets and tracks map outputs (Spark's shuffle service +
/// `MapOutputTracker` rolled together).
#[derive(Default)]
pub struct ShuffleManager {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    next_id: u32,
    shuffles: HashMap<ShuffleId, ShuffleData>,
}

impl ShuffleManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a shuffle with the given map/reduce fan.
    pub fn register(&self, num_maps: usize, num_reduces: usize) -> ShuffleId {
        let mut inner = self.inner.lock();
        let id = ShuffleId(inner.next_id);
        inner.next_id += 1;
        inner.shuffles.insert(
            id,
            ShuffleData {
                num_maps,
                num_reduces,
                buckets: HashMap::new(),
                done_maps: std::collections::HashSet::new(),
                map_exec: HashMap::new(),
            },
        );
        id
    }

    /// Record that a map task finished writing its buckets.
    pub fn mark_map_done(&self, id: ShuffleId, map: usize) {
        let mut inner = self.inner.lock();
        let data = inner.shuffles.get_mut(&id).expect("unregistered shuffle");
        assert!(map < data.num_maps, "map index {map} out of range");
        data.done_maps.insert(map);
    }

    /// Record which executor produced a map task's output (kept separate
    /// from [`mark_map_done`](Self::mark_map_done) so pre-plane call sites
    /// stay untouched). Re-runs overwrite: the latest location wins, like
    /// Spark's `MapOutputTracker`.
    pub fn record_map_exec(&self, id: ShuffleId, map: usize, exec: usize) {
        let mut inner = self.inner.lock();
        let data = inner.shuffles.get_mut(&id).expect("unregistered shuffle");
        assert!(map < data.num_maps, "map index {map} out of range");
        data.map_exec.insert(map, exec);
    }

    /// The `(executor, bytes)` sources a reducer fetches from, in map
    /// order, skipping maps that produced nothing for this reducer. Maps
    /// with no recorded location report executor 0 (the single-executor
    /// degenerate case).
    pub fn reduce_sources(&self, id: ShuffleId, reduce: usize) -> Vec<(usize, u64)> {
        let inner = self.inner.lock();
        let data = inner.shuffles.get(&id).expect("unregistered shuffle");
        (0..data.num_maps)
            .filter_map(|m| {
                data.buckets
                    .get(&(m, reduce))
                    .map(|b| (data.map_exec.get(&m).copied().unwrap_or(0), b.bytes))
            })
            .collect()
    }

    /// Un-register one map task's output (a fetch failure blamed it). Only
    /// the *registration* is dropped — the bucket data stays, because in
    /// this simulator failures are a time-plane fiction: the re-run map
    /// task recomputes byte-identical buckets, so keeping them preserves
    /// data-plane correctness while the scheduler still pays the recompute.
    pub fn mark_map_lost(&self, id: ShuffleId, map: usize) {
        let mut inner = self.inner.lock();
        if let Some(data) = inner.shuffles.get_mut(&id) {
            data.done_maps.remove(&map);
        }
    }

    /// True once every map task's output is registered — the stage-skipping
    /// predicate the DAG scheduler uses.
    pub fn is_complete(&self, id: ShuffleId) -> bool {
        let inner = self.inner.lock();
        inner
            .shuffles
            .get(&id)
            .map(|d| d.done_maps.len() == d.num_maps)
            .unwrap_or(false)
    }

    /// Store one bucket.
    ///
    /// # Panics
    /// Panics on an unregistered shuffle or out-of-range indices.
    pub fn put_bucket(&self, id: ShuffleId, map: usize, reduce: usize, bucket: Bucket) {
        let mut inner = self.inner.lock();
        let data = inner.shuffles.get_mut(&id).expect("unregistered shuffle");
        assert!(map < data.num_maps, "map index {map} out of range");
        assert!(
            reduce < data.num_reduces,
            "reduce index {reduce} out of range"
        );
        data.buckets.insert((map, reduce), bucket);
    }

    /// Fetch all buckets addressed to `reduce`, in map order. Missing
    /// buckets (a map task produced nothing for that reducer) are skipped.
    pub fn fetch_reduce(&self, id: ShuffleId, reduce: usize) -> Vec<Bucket> {
        let inner = self.inner.lock();
        let data = inner.shuffles.get(&id).expect("unregistered shuffle");
        (0..data.num_maps)
            .filter_map(|m| data.buckets.get(&(m, reduce)).cloned())
            .collect()
    }

    /// Total bytes a reducer would fetch (map-output tracker estimate).
    pub fn reduce_input_bytes(&self, id: ShuffleId, reduce: usize) -> u64 {
        let inner = self.inner.lock();
        let data = inner.shuffles.get(&id).expect("unregistered shuffle");
        (0..data.num_maps)
            .filter_map(|m| data.buckets.get(&(m, reduce)))
            .map(|b| b.bytes)
            .sum()
    }

    /// Drop a shuffle's buckets (lineage GC between iterations).
    pub fn unregister(&self, id: ShuffleId) {
        self.inner.lock().shuffles.remove(&id);
    }

    /// Drop everything (application teardown).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.shuffles.clear();
    }

    /// Number of live shuffles.
    pub fn live_shuffles(&self) -> usize {
        self.inner.lock().shuffles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0..1000u64 {
            let a = Partitioner::<u64>::partition(&p, &key);
            let b = Partitioner::<u64>::partition(&p, &key);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for key in 0..8000u64 {
            counts[Partitioner::<u64>::partition(&p, &key)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "severely unbalanced hash partitioning: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_orders_partitions() {
        let sample: Vec<u64> = (0..1000).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(Partitioner::<u64>::num_partitions(&p), 4);
        let parts: Vec<usize> = (0..1000u64).map(|k| p.partition(&k)).collect();
        // Partition ids are monotone in the key.
        for w in parts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // All partitions are used.
        for target in 0..4 {
            assert!(parts.contains(&target));
        }
    }

    #[test]
    fn range_partitioner_handles_skew_and_empty() {
        let p = RangePartitioner::from_sample(vec![5u64; 100], 4);
        // All-equal sample collapses to a single split-free partitioner.
        assert_eq!(Partitioner::<u64>::num_partitions(&p), 1);
        let p = RangePartitioner::<u64>::from_sample(vec![], 4);
        assert_eq!(Partitioner::<u64>::num_partitions(&p), 1);
        assert_eq!(p.partition(&42), 0);
    }

    #[test]
    fn shuffle_bucket_roundtrip() {
        let mgr = ShuffleManager::new();
        let id = mgr.register(2, 3);
        let payload: AnyPart = Arc::new(vec![(1u64, 2u64), (3, 4)]);
        mgr.put_bucket(
            id,
            0,
            1,
            Bucket {
                data: payload,
                records: 2,
                bytes: 32,
            },
        );
        let buckets = mgr.fetch_reduce(id, 1);
        assert_eq!(buckets.len(), 1);
        let data = buckets[0]
            .data
            .clone()
            .downcast::<Vec<(u64, u64)>>()
            .unwrap();
        assert_eq!(*data, vec![(1, 2), (3, 4)]);
        assert_eq!(mgr.reduce_input_bytes(id, 1), 32);
        assert_eq!(mgr.fetch_reduce(id, 0).len(), 0);
    }

    #[test]
    fn unregister_and_clear() {
        let mgr = ShuffleManager::new();
        let a = mgr.register(1, 1);
        let _b = mgr.register(1, 1);
        assert_eq!(mgr.live_shuffles(), 2);
        mgr.unregister(a);
        assert_eq!(mgr.live_shuffles(), 1);
        mgr.clear();
        assert_eq!(mgr.live_shuffles(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn put_bucket_validates_indices() {
        let mgr = ShuffleManager::new();
        let id = mgr.register(1, 1);
        mgr.put_bucket(
            id,
            5,
            0,
            Bucket {
                data: Arc::new(Vec::<u8>::new()),
                records: 0,
                bytes: 0,
            },
        );
    }

    #[test]
    fn map_completion_tracking() {
        let mgr = ShuffleManager::new();
        let id = mgr.register(2, 1);
        assert!(!mgr.is_complete(id));
        mgr.mark_map_done(id, 0);
        assert!(!mgr.is_complete(id));
        mgr.mark_map_done(id, 1);
        assert!(mgr.is_complete(id));
        // Idempotent.
        mgr.mark_map_done(id, 1);
        assert!(mgr.is_complete(id));
        // A lost map output de-completes the shuffle until re-registered.
        mgr.mark_map_lost(id, 0);
        assert!(!mgr.is_complete(id));
        mgr.mark_map_done(id, 0);
        assert!(mgr.is_complete(id));
        // Unknown shuffle is never complete.
        mgr.unregister(id);
        assert!(!mgr.is_complete(id));
        mgr.mark_map_lost(id, 0); // no-op on unknown shuffle
    }

    #[test]
    fn reduce_sources_report_locations_in_map_order() {
        let mgr = ShuffleManager::new();
        let id = mgr.register(3, 1);
        for (m, bytes) in [(0usize, 10u64), (2, 30)] {
            mgr.put_bucket(
                id,
                m,
                0,
                Bucket {
                    data: Arc::new(Vec::<u8>::new()),
                    records: 1,
                    bytes,
                },
            );
        }
        mgr.record_map_exec(id, 0, 1);
        mgr.record_map_exec(id, 1, 2);
        // Map 2 never recorded a location: defaults to executor 0. Map 1
        // produced nothing for this reducer and is skipped.
        assert_eq!(mgr.reduce_sources(id, 0), vec![(1, 10), (0, 30)]);
        // A re-run on another executor overwrites the location.
        mgr.record_map_exec(id, 0, 2);
        assert_eq!(mgr.reduce_sources(id, 0), vec![(2, 10), (0, 30)]);
    }

    #[test]
    fn shuffle_ids_are_unique() {
        let mgr = ShuffleManager::new();
        let a = mgr.register(1, 1);
        let b = mgr.register(1, 1);
        assert_ne!(a, b);
    }
}
