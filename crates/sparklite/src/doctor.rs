//! Run doctor: conserved windowed rollups + evidence-backed bottleneck
//! diagnosis.
//!
//! The explainer ([`crate::explain`]) answers *what changed* between two
//! runs; this module answers *what is wrong with this one*. It folds the
//! run's always-on, conservation-grade sources — the
//! [`WindowRollup`](memtier_memsim::WindowRollup) of every counter charge,
//! the profiler log (task spans, stage activations, eviction records), the
//! fault machinery's waste spans, the attribution ledger's object series —
//! into one uniform virtual-time grid of per-window series
//! ([`DoctorSeries`]), then runs a catalogue of online detectors over the
//! grid and emits ranked [`Finding`]s with evidence windows, affected
//! stages/objects, and recovery estimates cross-priced through the existing
//! [`reprice`]/[`hotness_promotion_whatif`] engines.
//!
//! ## The conservation contract
//!
//! Every windowed series is a *partition* of a totalled quantity, exact in
//! integer picoseconds / exact bytes ([`DoctorReport::conserved`] records
//! the check):
//!
//! * per-tier traffic re-sums to the run's `CounterSnapshot` (via the
//!   rollup's own 1:1 charge mapping, re-binned onto the doctor grid);
//! * per-tier priced stall re-sums to the rollup's running stall total;
//! * executor busy time re-sums to `useful_time + wasted_time` (task spans
//!   and waste spans split across windows with exact integer overlap);
//! * fault waste re-sums to `wasted_time`;
//! * eviction count/bytes re-sum to the profiler's eviction records, whose
//!   count equals the block manager's eviction counter;
//! * migration bytes re-sum to the ledger's `migration` object traffic;
//! * cross-rack network bytes re-sum to the network plane's
//!   `cross_rack_bytes` counter (both zero under loopback wiring).
//!
//! ## Determinism
//!
//! The doctor reads only always-on sources — never the opt-in event log or
//! samplers — so attaching it to every run stays inside the byte-identity
//! domain: a plain and an instrumented run of the same scenario carry
//! byte-identical doctor reports, and `BENCH_doctor.json` regenerates
//! byte-identically (every ordering is fixed, every float is a
//! deterministic function of the run).

use crate::faultsim::RecoveryStats;
use crate::net::{NetReport, TransferRecord};
use crate::profile::{hotness_promotion_whatif, reprice, ProfileLog, RunProfile, WhatIf};
use crate::storage::CacheStats;
use memtier_des::SimTime;
use memtier_memsim::{
    CounterSnapshot, HotnessReport, MigrationStats, ObjectId, ObjectSample, TierId, TierParams,
    WindowRollup, NUM_TIERS,
};
use memtier_metrics::table::{fmt_f64, sparkline};
use memtier_metrics::AsciiTable;
use memtier_netsim::Locality;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on the doctor's uniform grid. The rollup's own width is widened by
/// an integer factor until the whole run fits, so re-binning stays exact.
pub const DOCTOR_MAX_WINDOWS: u64 = 512;

/// How many evidence windows each finding carries.
pub const EVIDENCE_TOP_K: usize = 3;

/// How many hot objects the saturation what-if promotes (mirrors the
/// hotness harness's top-k narrative).
pub const PROMOTE_K: usize = 3;

/// Saturation detector: minimum recoverable fraction of the runtime for a
/// tier's latency gap to count as a finding.
pub const SATURATION_MIN_RECOVERY_FRAC: f64 = 0.02;

/// Saturation severity knee: recoverable fraction at which the finding
/// turns critical.
pub const SATURATION_CRITICAL_FRAC: f64 = 0.25;

/// Eviction-thrash detector: evicted bytes as a fraction of all traffic.
pub const THRASH_MIN_BYTE_FRAC: f64 = 0.05;

/// Ping-pong detector: migrated bytes as a fraction of all traffic.
pub const PINGPONG_MIN_BYTE_FRAC: f64 = 0.02;

/// Ping-pong detector: minimum promotions/demotions balance (1.0 = fully
/// reversing churn).
pub const PINGPONG_MIN_REVERSAL: f64 = 0.25;

/// Straggler detector: slowest / median task-duration ratio.
pub const STRAGGLER_RATIO: f64 = 1.5;

/// Straggler detector: stages smaller than this can't skew meaningfully.
pub const STRAGGLER_MIN_TASKS: usize = 4;

/// Idle-bubble detector: busy fraction below which a window counts as idle.
pub const IDLE_BUBBLE_UTIL: f64 = 0.25;

/// Idle-bubble detector: minimum bubble length as a fraction of the run.
pub const IDLE_BUBBLE_MIN_FRAC: f64 = 0.10;

/// Wear detector: one object's share of all NVM media writes that makes it
/// a hotspot.
pub const WEAR_MIN_SHARE: f64 = 0.5;

/// Waste detector: minimum wasted fraction of executor occupancy.
pub const WASTE_MIN_FRAC: f64 = 0.01;

/// Cross-rack saturation detector: minimum share of completed network
/// bytes that crossed racks for the oversubscribed uplinks to count as
/// the bottleneck.
pub const CROSS_RACK_MIN_BYTE_FRAC: f64 = 0.25;

/// The detector that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// A slow tier's latency gap dominates the critical path.
    TierBandwidthSaturation,
    /// The block cache churns under capacity pressure (DRAM capacity cliff).
    EvictionThrash,
    /// The placement engine migrates back and forth without settling.
    MigrationPingPong,
    /// One task per stage runs far past the pack.
    StragglerSkew,
    /// Executors sit idle mid-run.
    ExecutorIdleBubble,
    /// NVM media writes concentrate on one object.
    NvmWriteWear,
    /// Failed / killed attempts burn a visible slice of occupancy.
    FaultWasteConcentration,
    /// Oversubscribed rack uplinks carry most of the network traffic.
    CrossRackSaturation,
}

impl FindingKind {
    /// Stable display label (also the detector's name in docs and CI).
    pub fn label(&self) -> &'static str {
        match self {
            FindingKind::TierBandwidthSaturation => "tier-bandwidth-saturation",
            FindingKind::EvictionThrash => "eviction-thrash",
            FindingKind::MigrationPingPong => "migration-ping-pong",
            FindingKind::StragglerSkew => "straggler-skew",
            FindingKind::ExecutorIdleBubble => "executor-idle-bubble",
            FindingKind::NvmWriteWear => "nvm-write-wear",
            FindingKind::FaultWasteConcentration => "fault-waste-concentration",
            FindingKind::CrossRackSaturation => "cross-rack-saturation",
        }
    }

    fn order(&self) -> u8 {
        match self {
            FindingKind::TierBandwidthSaturation => 0,
            FindingKind::EvictionThrash => 1,
            FindingKind::MigrationPingPong => 2,
            FindingKind::StragglerSkew => 3,
            FindingKind::ExecutorIdleBubble => 4,
            FindingKind::NvmWriteWear => 5,
            FindingKind::FaultWasteConcentration => 6,
            FindingKind::CrossRackSaturation => 7,
        }
    }
}

/// How loud a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing, unlikely to move the runtime.
    Info,
    /// Costs measurable runtime or device budget.
    Warning,
    /// Dominates the run.
    Critical,
}

impl Severity {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One evidence window backing a finding: where on the timeline the
/// detector saw the symptom, and how strong it was there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceWindow {
    /// Window start (virtual time).
    pub start: SimTime,
    /// Window end (virtual time).
    pub end: SimTime,
    /// What the value measures (`utilization`, `evicted bytes`, ...).
    pub what: String,
    /// The symptom's strength inside the window.
    pub value: f64,
}

/// One ranked diagnosis: a detector's claim with its evidence, blast
/// radius, and a first-order recovery estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Which detector fired.
    pub kind: FindingKind,
    /// How loud.
    pub severity: Severity,
    /// Ranking key: roughly "fraction of the run at stake", comparable
    /// across detectors. Findings are sorted by this, descending.
    pub score: f64,
    /// One-line human narrative.
    pub summary: String,
    /// Where on the timeline (top windows by symptom strength).
    pub evidence: Vec<EvidenceWindow>,
    /// Affected stage keys (`job0/stage2`), worst first.
    pub stages: Vec<String>,
    /// Affected object labels (`rdd3:cache`, `migration`, ...), worst first.
    pub objects: Vec<String>,
    /// First-order runtime recovery if the issue were fixed, seconds
    /// (cross-priced through [`reprice`] where a what-if exists; an upper
    /// bound otherwise; 0 for non-runtime findings like wear).
    pub estimated_recovery_s: f64,
}

/// The per-window conserved series on the doctor's uniform grid. All
/// vectors have the same length; window `i` covers
/// `[i·width, (i+1)·width)` except the last, which absorbs the tail.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DoctorSeries {
    /// Window start instants.
    pub starts: Vec<SimTime>,
    /// Per-tier bytes moved per window (re-sums to the counter totals).
    pub tier_bytes: Vec<[u64; NUM_TIERS]>,
    /// Per-tier priced stall per window (re-sums to the rollup total).
    pub tier_stall: Vec<[SimTime; NUM_TIERS]>,
    /// Per-tier channel utilization per window (derived: bytes over
    /// capacity for the window width; unclamped).
    pub tier_utilization: Vec<[f64; NUM_TIERS]>,
    /// Executor-core busy time per window, useful *and* wasted attempts
    /// (re-sums to `useful_time + wasted_time`).
    pub busy: Vec<SimTime>,
    /// Runnable-queue wait per window: task time spent between stage
    /// activation and dispatch (divide by the width for mean queue depth).
    pub queue: Vec<SimTime>,
    /// Wasted attempt time per window (re-sums to `wasted_time`).
    pub waste: Vec<SimTime>,
    /// Cache blocks evicted per window.
    pub evictions: Vec<u64>,
    /// Bytes those evictions displaced per window.
    pub evict_bytes: Vec<u64>,
    /// Bytes the placement engine migrated per window.
    pub migration_bytes: Vec<u64>,
    /// Cross-rack network bytes per window (completed transfers, binned at
    /// completion; re-sums to the net report's `cross_rack_bytes`). Empty —
    /// and skipped from serialized reports, preserving pre-plane artifacts —
    /// when the run saw no cross-rack traffic.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub cross_rack_bytes: Vec<u64>,
}

/// The doctor's product: the conserved windowed series, the conservation
/// verdict, and the ranked findings. Attached to every
/// [`RunReport`](crate::context::RunReport) and `ScenarioResult` — a pure
/// function of the run, inside the byte-identity domain.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DoctorReport {
    /// End-to-end virtual runtime the grid covers.
    pub elapsed: SimTime,
    /// Uniform window width of the doctor grid (an integer multiple of the
    /// underlying rollup's width, so re-binning was exact).
    pub window_width: SimTime,
    /// Total executor cores (the busy series' capacity denominator).
    pub total_cores: u64,
    /// The per-window conserved series.
    pub series: DoctorSeries,
    /// The conservation contract's verdict: true iff every windowed series
    /// re-summed exactly to its total (see the module docs). Asserted for
    /// every suite workload in `core/tests/doctor.rs`.
    pub conserved: bool,
    /// Ranked findings, highest score first.
    pub findings: Vec<Finding>,
}

/// Everything the doctor reads — all of it always-on.
pub struct DoctorInputs<'a> {
    /// End-to-end virtual runtime.
    pub elapsed: SimTime,
    /// Total executor cores (busy-capacity denominator).
    pub total_cores: u64,
    /// The memory system's windowed charge rollup.
    pub windows: &'a WindowRollup,
    /// The machine counter totals the rollup must conserve against.
    pub counters: &'a CounterSnapshot,
    /// Effective per-tier parameters (for utilization and repricing).
    pub params: &'a [TierParams; NUM_TIERS],
    /// The run's critical-path profile (for what-if repricing).
    pub profile: &'a RunProfile,
    /// The profiler log: task spans, stage activations, eviction records.
    pub log: &'a ProfileLog,
    /// Per-object attribution (for blast radius and promotion what-ifs).
    pub hotness: &'a HotnessReport,
    /// Block-cache statistics.
    pub cache: &'a CacheStats,
    /// Placement-engine rollup.
    pub migrations: MigrationStats,
    /// Fault/recovery rollup.
    pub recovery: RecoveryStats,
    /// Occupancy spans of failed / killed attempts (sum = `wasted_time`).
    pub waste_spans: &'a [(SimTime, SimTime)],
    /// The ledger's per-batch object series (for the migration timeline).
    pub object_series: &'a [ObjectSample],
    /// Aggregated network-plane rollup (all-zero under loopback wiring).
    pub network: NetReport,
    /// Completed network transfers, completion order (empty under loopback).
    pub net_records: &'a [TransferRecord],
}

/// Split the half-open span `[a, b)` across the uniform grid, charging each
/// window its exact integer-ps overlap. The last window absorbs any tail,
/// so the charged total is always exactly `b − a`.
fn add_span(series: &mut [SimTime], width_ps: u64, a: SimTime, b: SimTime) {
    if b <= a || series.is_empty() {
        return;
    }
    let (a, b) = (a.as_ps(), b.as_ps());
    let n = series.len() as u64;
    let mut idx = (a / width_ps).min(n - 1);
    loop {
        let w_start = idx * width_ps;
        let lo = a.max(w_start);
        let hi = if idx == n - 1 {
            b
        } else {
            b.min(w_start + width_ps)
        };
        if hi > lo {
            series[idx as usize] += SimTime::from_ps(hi - lo);
        }
        if idx == n - 1 || b <= w_start + width_ps {
            break;
        }
        idx += 1;
    }
}

/// The grid index of a point event, clamped into the grid.
fn slot(n: usize, width_ps: u64, at: SimTime) -> usize {
    ((at.as_ps() / width_ps) as usize).min(n - 1)
}

/// The top `k` window indices by `value`, descending, nonzero only, ties
/// broken by index (deterministic).
fn top_windows(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).filter(|&i| values[i] > 0.0).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Build evidence rows for the given window indices.
fn evidence(
    series: &DoctorSeries,
    width: SimTime,
    elapsed: SimTime,
    what: &str,
    values: &[f64],
    idx: &[usize],
) -> Vec<EvidenceWindow> {
    idx.iter()
        .map(|&i| {
            let start = series.starts[i];
            let nominal_end = start + width;
            EvidenceWindow {
                start,
                end: if i == series.starts.len() - 1 {
                    elapsed.max(nominal_end)
                } else {
                    nominal_end
                },
                what: what.to_string(),
                value: values[i],
            }
        })
        .collect()
}

/// Run the doctor: build the conserved windowed series, check the
/// conservation contract, and run every detector. Pure and deterministic —
/// the same inputs produce a byte-identical report.
pub fn diagnose(inputs: &DoctorInputs<'_>) -> DoctorReport {
    let elapsed_ps = inputs.elapsed.as_ps().max(1);
    let base_ps = inputs.windows.width().as_ps().max(1);
    let mult = elapsed_ps
        .div_ceil(base_ps)
        .div_ceil(DOCTOR_MAX_WINDOWS)
        .max(1);
    let width_ps = base_ps * mult;
    let width = SimTime::from_ps(width_ps);
    let n = elapsed_ps.div_ceil(width_ps) as usize;

    let mut s = DoctorSeries {
        starts: (0..n as u64)
            .map(|i| SimTime::from_ps(i * width_ps))
            .collect(),
        tier_bytes: vec![[0u64; NUM_TIERS]; n],
        tier_stall: vec![[SimTime::ZERO; NUM_TIERS]; n],
        tier_utilization: vec![[0.0f64; NUM_TIERS]; n],
        busy: vec![SimTime::ZERO; n],
        queue: vec![SimTime::ZERO; n],
        waste: vec![SimTime::ZERO; n],
        evictions: vec![0u64; n],
        evict_bytes: vec![0u64; n],
        migration_bytes: vec![0u64; n],
        cross_rack_bytes: Vec::new(),
    };

    // Re-bin the rollup onto the doctor grid. The doctor width is an
    // integer multiple of the rollup width and both grids start at zero, so
    // every rollup window lands wholly inside one doctor window — exact.
    for (idx, w) in inputs.windows.indexed() {
        let di = slot(n, width_ps, inputs.windows.window_start(idx));
        for t in 0..NUM_TIERS {
            s.tier_bytes[di][t] += w.tiers[t].bytes();
            s.tier_stall[di][t] = s.tier_stall[di][t] + w.tiers[t].stall();
        }
    }
    let width_s = width.as_secs_f64();
    for i in 0..n {
        for t in 0..NUM_TIERS {
            let cap = width_s * inputs.params[t].bandwidth_bytes_per_s;
            s.tier_utilization[i][t] = if cap > 0.0 {
                s.tier_bytes[i][t] as f64 / cap
            } else {
                0.0
            };
        }
    }

    // Executor occupancy: successful task spans plus wasted attempt spans.
    for t in &inputs.log.tasks {
        add_span(&mut s.busy, width_ps, t.started, t.end);
    }
    for &(a, b) in inputs.waste_spans {
        add_span(&mut s.busy, width_ps, a, b);
        add_span(&mut s.waste, width_ps, a, b);
    }

    // Runnable-queue wait: each task waits from its stage's activation to
    // its own dispatch.
    let submitted: BTreeMap<(u64, u32), SimTime> = inputs
        .log
        .stages
        .iter()
        .map(|st| ((st.job, st.stage), st.submitted))
        .collect();
    let mut queue_total = SimTime::ZERO;
    for t in &inputs.log.tasks {
        if let Some(&sub) = submitted.get(&(t.job, t.stage)) {
            if t.started > sub {
                queue_total += t.started - sub;
                add_span(&mut s.queue, width_ps, sub, t.started);
            }
        }
    }

    // Point events: evictions and migration batches.
    for ev in &inputs.log.evictions {
        let i = slot(n, width_ps, ev.at);
        s.evictions[i] += 1;
        s.evict_bytes[i] += ev.bytes;
    }
    for os in inputs.object_series {
        if os.object == ObjectId::Migration {
            s.migration_bytes[slot(n, width_ps, os.at)] += os.delta_bytes;
        }
    }

    // Cross-rack transfer completions, binned at their completion instant.
    // The series stays empty (and off the wire) when nothing crossed racks.
    for r in inputs.net_records {
        if r.locality == Locality::Remote {
            if s.cross_rack_bytes.is_empty() {
                s.cross_rack_bytes = vec![0u64; n];
            }
            s.cross_rack_bytes[slot(n, width_ps, r.at)] += r.bytes;
        }
    }

    // The conservation contract, in exact integers.
    let conserved = check_conservation(inputs, &s, queue_total);

    let mut report = DoctorReport {
        elapsed: inputs.elapsed,
        window_width: width,
        total_cores: inputs.total_cores,
        series: s,
        conserved,
        findings: Vec::new(),
    };
    report.findings = run_detectors(inputs, &report);
    report.findings.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.kind.order().cmp(&b.kind.order()))
            .then_with(|| a.summary.cmp(&b.summary))
    });
    report
}

/// Re-sum every windowed series against its total. Exact integers only.
fn check_conservation(inputs: &DoctorInputs<'_>, s: &DoctorSeries, queue_total: SimTime) -> bool {
    // 1. The rollup itself partitions the machine counters …
    let mut ok = inputs.windows.conserves(inputs.counters);
    // … and the re-binned grid preserves the per-tier byte totals.
    for t in TierId::all() {
        let c = inputs.counters.tier(t);
        let bytes: u64 = s.tier_bytes.iter().map(|w| w[t.index()]).sum();
        ok &= bytes == c.bytes_read + c.bytes_written;
    }
    // 2. Re-binned stall telescopes to the rollup's running stall total.
    let stall: SimTime = s.tier_stall.iter().flat_map(|w| w.iter().copied()).sum();
    ok &= stall == inputs.windows.total().stall();
    // 3. Busy = useful + wasted occupancy, waste = wasted, both exact.
    let busy: SimTime = s.busy.iter().copied().sum();
    ok &= busy == inputs.recovery.useful_time + inputs.recovery.wasted_time;
    let waste: SimTime = s.waste.iter().copied().sum();
    ok &= waste == inputs.recovery.wasted_time;
    // 4. Queue windows partition the total queue wait.
    let queue: SimTime = s.queue.iter().copied().sum();
    ok &= queue == queue_total;
    // 5. Evictions: the windows partition the profiler's records, and the
    //    record count matches the block manager's counter.
    let ev_n: u64 = s.evictions.iter().sum();
    let ev_b: u64 = s.evict_bytes.iter().sum();
    ok &= ev_n == inputs.log.evictions.len() as u64;
    ok &= ev_b == inputs.log.evictions.iter().map(|e| e.bytes).sum::<u64>();
    ok &= ev_n == inputs.cache.evictions;
    // 6. Migration bytes partition the ledger's migration-object series.
    let mig: u64 = s.migration_bytes.iter().sum();
    let ledger_mig: u64 = inputs
        .object_series
        .iter()
        .filter(|o| o.object == ObjectId::Migration)
        .map(|o| o.delta_bytes)
        .sum();
    ok &= mig == ledger_mig;
    // 7. Cross-rack windows partition the network report's cross-rack total
    //    (both zero under loopback wiring).
    let xrack: u64 = s.cross_rack_bytes.iter().sum();
    ok &= xrack == inputs.network.cross_rack_bytes;
    ok
}

/// Run the detector catalogue over the built series.
fn run_detectors(inputs: &DoctorInputs<'_>, report: &DoctorReport) -> Vec<Finding> {
    let mut findings = Vec::new();
    let s = &report.series;
    let elapsed_s = inputs.elapsed.as_secs_f64().max(1e-12);
    let width = report.window_width;
    let total_bytes: u64 = TierId::all()
        .iter()
        .map(|&t| {
            let c = inputs.counters.tier(t);
            c.bytes_read + c.bytes_written
        })
        .sum();

    // --- tier-bandwidth-saturation -------------------------------------
    // A slow tier saturates the run when repricing its traffic at Tier-0
    // latency recovers a visible slice of the runtime. The recovery is the
    // finding's headline number (validated against an actual DRAM-bound
    // re-run in core/tests/doctor.rs); the top-k promotion what-if gives
    // the "promote just these objects" secondary narrative.
    let t0 = &inputs.params[TierId::LOCAL_DRAM.index()];
    for t in 1..NUM_TIERS {
        let p = &inputs.params[t];
        let mut w = WhatIf::identity();
        if p.effective_read_ns() > 0.0 {
            w.read_scale[t] = t0.effective_read_ns() / p.effective_read_ns();
        }
        if p.effective_write_ns() > 0.0 {
            w.write_scale[t] = t0.effective_write_ns() / p.effective_write_ns();
        }
        let rep = reprice(inputs.profile, &w);
        let recovery_s = rep.baseline_s - rep.predicted_s;
        if recovery_s < SATURATION_MIN_RECOVERY_FRAC * elapsed_s {
            continue;
        }
        let promo = reprice(
            inputs.profile,
            &hotness_promotion_whatif(inputs.hotness, PROMOTE_K),
        );
        let promo_recovery_s = promo.baseline_s - promo.predicted_s;
        let promo_pct = if recovery_s > 0.0 {
            (promo_recovery_s / recovery_s * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        let util: Vec<f64> = s.tier_utilization.iter().map(|u| u[t]).collect();
        let peak_util = util.iter().cloned().fold(0.0, f64::max);
        let tier = TierId::from_index(t);
        let mut objects: Vec<(&str, SimTime)> = inputs
            .hotness
            .objects
            .iter()
            .filter(|o| !o.tiers[t].stall().is_zero())
            .map(|o| (o.label.as_str(), o.tiers[t].stall()))
            .collect();
        objects.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut stages: Vec<((u64, u32), SimTime)> = {
            let mut m: BTreeMap<(u64, u32), SimTime> = BTreeMap::new();
            for task in &inputs.log.tasks {
                let stall = task.breakdown.mem_read[t] + task.breakdown.mem_write[t];
                if !stall.is_zero() {
                    *m.entry((task.job, task.stage)).or_default() += stall;
                }
            }
            m.into_iter().collect()
        };
        stages.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        findings.push(Finding {
            kind: FindingKind::TierBandwidthSaturation,
            severity: if recovery_s >= SATURATION_CRITICAL_FRAC * elapsed_s {
                Severity::Critical
            } else {
                Severity::Warning
            },
            score: recovery_s / elapsed_s,
            summary: format!(
                "{tier} stall dominates: repricing its traffic at Tier-0 latency \
                 recovers ~{recovery_s:.4}s ({:.1}% of the run; peak window \
                 utilization {:.0}%); promoting the top-{PROMOTE_K} hot objects \
                 alone recovers ~{promo_pct:.0}% of that gap",
                recovery_s / elapsed_s * 100.0,
                peak_util * 100.0,
            ),
            evidence: evidence(
                s,
                width,
                inputs.elapsed,
                "channel utilization",
                &util,
                &top_windows(&util, EVIDENCE_TOP_K),
            ),
            stages: stages
                .iter()
                .take(3)
                .map(|((j, st), _)| format!("job{j}/stage{st}"))
                .collect(),
            objects: objects.iter().take(3).map(|(l, _)| l.to_string()).collect(),
            estimated_recovery_s: recovery_s,
        });
    }

    // --- eviction-thrash ------------------------------------------------
    let ev_bytes: u64 = inputs.log.evictions.iter().map(|e| e.bytes).sum();
    let ev_frac = ev_bytes as f64 / total_bytes.max(1) as f64;
    if !inputs.log.evictions.is_empty()
        && (ev_frac >= THRASH_MIN_BYTE_FRAC || inputs.cache.disk_reads > 0)
    {
        let evb: Vec<f64> = s.evict_bytes.iter().map(|&b| b as f64).collect();
        let mut by_rdd: BTreeMap<u32, u64> = BTreeMap::new();
        for ev in &inputs.log.evictions {
            *by_rdd.entry(ev.rdd).or_default() += ev.bytes;
        }
        let mut rdds: Vec<(u32, u64)> = by_rdd.into_iter().collect();
        rdds.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        findings.push(Finding {
            kind: FindingKind::EvictionThrash,
            severity: if inputs.cache.disk_reads > 0 {
                Severity::Critical
            } else {
                Severity::Warning
            },
            score: ev_frac,
            summary: format!(
                "cache churns under capacity pressure: {} evictions displaced \
                 {:.1} MB ({:.1}% of all traffic), {} spills, {} disk reads — \
                 the working set fell off the DRAM capacity cliff",
                inputs.log.evictions.len(),
                ev_bytes as f64 / 1e6,
                ev_frac * 100.0,
                inputs.cache.spills,
                inputs.cache.disk_reads,
            ),
            evidence: evidence(
                s,
                width,
                inputs.elapsed,
                "evicted bytes",
                &evb,
                &top_windows(&evb, EVIDENCE_TOP_K),
            ),
            stages: Vec::new(),
            objects: rdds
                .iter()
                .take(3)
                .map(|(rdd, _)| format!("rdd{rdd}:cache"))
                .collect(),
            estimated_recovery_s: 0.0,
        });
    }

    // --- migration-ping-pong ---------------------------------------------
    let m = inputs.migrations;
    if m.migrations > 0 && m.promotions > 0 && m.demotions > 0 {
        let frac = m.bytes_moved as f64 / total_bytes.max(1) as f64;
        let reversal =
            m.promotions.min(m.demotions) as f64 / m.promotions.max(m.demotions).max(1) as f64;
        if frac >= PINGPONG_MIN_BYTE_FRAC && reversal >= PINGPONG_MIN_REVERSAL {
            let mig: Vec<f64> = s.migration_bytes.iter().map(|&b| b as f64).collect();
            let copy_stall_s = inputs
                .hotness
                .objects
                .iter()
                .find(|o| o.object == ObjectId::Migration)
                .map(|o| o.stall.as_secs_f64())
                .unwrap_or(0.0);
            findings.push(Finding {
                kind: FindingKind::MigrationPingPong,
                severity: Severity::Warning,
                score: frac,
                summary: format!(
                    "placement churns without settling: {} migrations \
                     ({} promotions / {} demotions) copied {:.1} MB \
                     ({:.1}% of all traffic) across {} epochs",
                    m.migrations,
                    m.promotions,
                    m.demotions,
                    m.bytes_moved as f64 / 1e6,
                    frac * 100.0,
                    m.epochs,
                ),
                evidence: evidence(
                    s,
                    width,
                    inputs.elapsed,
                    "migrated bytes",
                    &mig,
                    &top_windows(&mig, EVIDENCE_TOP_K),
                ),
                stages: Vec::new(),
                objects: vec![ObjectId::Migration.label()],
                estimated_recovery_s: copy_stall_s,
            });
        }
    }

    // --- straggler-skew ----------------------------------------------------
    let mut by_stage: BTreeMap<(u64, u32), Vec<&crate::profile::TaskRecord>> = BTreeMap::new();
    for t in &inputs.log.tasks {
        by_stage.entry((t.job, t.stage)).or_default().push(t);
    }
    let mut skews: Vec<((u64, u32), f64, f64, SimTime, SimTime)> = Vec::new();
    for (&key, tasks) in &by_stage {
        if tasks.len() < STRAGGLER_MIN_TASKS {
            continue;
        }
        let mut durs: Vec<f64> = tasks
            .iter()
            .map(|t| (t.end - t.started).as_secs_f64())
            .collect();
        durs.sort_by(f64::total_cmp);
        let median = durs[durs.len() / 2];
        let worst = tasks
            .iter()
            .max_by(|a, b| {
                (a.end - a.started)
                    .cmp(&(b.end - b.started))
                    .then_with(|| b.task_id.cmp(&a.task_id))
            })
            .expect("non-empty stage");
        let max = (worst.end - worst.started).as_secs_f64();
        if median > 0.0 && max >= STRAGGLER_RATIO * median {
            skews.push((key, max, median, worst.started, worst.end));
        }
    }
    if !skews.is_empty() {
        skews.sort_by(|a, b| {
            (b.1 - b.2)
                .total_cmp(&(a.1 - a.2))
                .then_with(|| a.0.cmp(&b.0))
        });
        let ((job, stage), max, median, w_start, w_end) = skews[0];
        let gap = max - median;
        findings.push(Finding {
            kind: FindingKind::StragglerSkew,
            severity: if gap >= 0.10 * elapsed_s {
                Severity::Warning
            } else {
                Severity::Info
            },
            score: gap / elapsed_s,
            summary: format!(
                "{} stage(s) skewed: worst is job{job}/stage{stage}, slowest task \
                 {max:.4}s vs median {median:.4}s ({:.1}x) — its tail holds the \
                 stage open ~{gap:.4}s",
                skews.len(),
                max / median,
            ),
            evidence: vec![EvidenceWindow {
                start: w_start,
                end: w_end,
                what: "straggling task span".to_string(),
                value: max / median,
            }],
            stages: skews
                .iter()
                .take(3)
                .map(|((j, st), ..)| format!("job{j}/stage{st}"))
                .collect(),
            objects: Vec::new(),
            estimated_recovery_s: gap,
        });
    }

    // --- executor-idle-bubble ----------------------------------------------
    if inputs.total_cores > 0 && !s.busy.is_empty() {
        let cap_ps = width.as_ps().saturating_mul(inputs.total_cores);
        let busy_frac: Vec<f64> = s
            .busy
            .iter()
            .map(|b| b.as_ps() as f64 / cap_ps.max(1) as f64)
            .collect();
        // Longest run of idle windows.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let (mut cur_start, mut cur_len) = (0usize, 0usize);
        for (i, &f) in busy_frac.iter().enumerate() {
            if f < IDLE_BUBBLE_UTIL {
                if cur_len == 0 {
                    cur_start = i;
                }
                cur_len += 1;
                if cur_len > best_len {
                    best_start = cur_start;
                    best_len = cur_len;
                }
            } else {
                cur_len = 0;
            }
        }
        let bubble_s = best_len as f64 * width.as_secs_f64();
        if best_len > 0 && bubble_s >= IDLE_BUBBLE_MIN_FRAC * elapsed_s {
            let avg_busy: f64 = busy_frac[best_start..best_start + best_len]
                .iter()
                .sum::<f64>()
                / best_len as f64;
            let idle_s = bubble_s * (1.0 - avg_busy);
            let inv: Vec<f64> = busy_frac.iter().map(|&f| (1.0 - f).max(0.0)).collect();
            findings.push(Finding {
                kind: FindingKind::ExecutorIdleBubble,
                severity: if bubble_s >= 0.25 * elapsed_s {
                    Severity::Warning
                } else {
                    Severity::Info
                },
                score: idle_s / elapsed_s,
                summary: format!(
                    "executors under {:.0}% busy for {bubble_s:.4}s starting at \
                     {:.4}s ({:.1}% of the run) — scheduling or driver bubble, \
                     ~{idle_s:.4}s of core time unused there",
                    IDLE_BUBBLE_UTIL * 100.0,
                    s.starts[best_start].as_secs_f64(),
                    bubble_s / elapsed_s * 100.0,
                ),
                evidence: evidence(
                    s,
                    width,
                    inputs.elapsed,
                    "idle fraction",
                    &inv,
                    &top_windows(&inv, EVIDENCE_TOP_K),
                ),
                stages: Vec::new(),
                objects: Vec::new(),
                estimated_recovery_s: idle_s,
            });
        }
    }

    // --- nvm-write-wear -----------------------------------------------------
    let total_nvm_writes: u64 = inputs
        .hotness
        .objects
        .iter()
        .map(|o| o.nvm_media_writes)
        .sum();
    if total_nvm_writes > 0 {
        let top = inputs
            .hotness
            .objects
            .iter()
            .max_by(|a, b| {
                a.nvm_media_writes
                    .cmp(&b.nvm_media_writes)
                    .then_with(|| b.object.cmp(&a.object))
            })
            .expect("non-empty hotness");
        let share = top.nvm_media_writes as f64 / total_nvm_writes as f64;
        if share >= WEAR_MIN_SHARE {
            let nvm_wb: Vec<f64> = s
                .tier_bytes
                .iter()
                .map(|w| (w[TierId::NVM_NEAR.index()] + w[TierId::NVM_FAR.index()]) as f64)
                .collect();
            findings.push(Finding {
                kind: FindingKind::NvmWriteWear,
                severity: Severity::Info,
                score: share * (total_nvm_writes as f64 / total_bytes.max(1) as f64).min(1.0),
                summary: format!(
                    "NVM media writes concentrate on {}: {} of {} media writes \
                     ({:.0}%) — the endurance budget burns on one object",
                    top.label,
                    top.nvm_media_writes,
                    total_nvm_writes,
                    share * 100.0,
                ),
                evidence: evidence(
                    s,
                    width,
                    inputs.elapsed,
                    "NVM bytes",
                    &nvm_wb,
                    &top_windows(&nvm_wb, EVIDENCE_TOP_K),
                ),
                stages: Vec::new(),
                objects: vec![top.label.clone()],
                estimated_recovery_s: 0.0,
            });
        }
    }

    // --- fault-waste-concentration ------------------------------------------
    if !inputs.recovery.wasted_time.is_zero() {
        let frac = inputs.recovery.waste_fraction();
        if frac >= WASTE_MIN_FRAC {
            let waste: Vec<f64> = s.waste.iter().map(|w| w.as_secs_f64()).collect();
            let peaks = top_windows(&waste, EVIDENCE_TOP_K);
            let peak_share = peaks
                .first()
                .map(|&i| waste[i] / inputs.recovery.wasted_time.as_secs_f64().max(1e-12))
                .unwrap_or(0.0);
            findings.push(Finding {
                kind: FindingKind::FaultWasteConcentration,
                severity: if frac >= 0.10 {
                    Severity::Warning
                } else {
                    Severity::Info
                },
                score: frac,
                summary: format!(
                    "{:.4}s of executor occupancy wasted on failed/killed attempts \
                     ({:.1}% of occupancy; {:.0}% of the waste lands in one window) — \
                     up to that much recoverable without the faults",
                    inputs.recovery.wasted_time.as_secs_f64(),
                    frac * 100.0,
                    peak_share * 100.0,
                ),
                evidence: evidence(s, width, inputs.elapsed, "wasted time (s)", &waste, &peaks),
                stages: Vec::new(),
                objects: Vec::new(),
                estimated_recovery_s: inputs.recovery.wasted_time.as_secs_f64(),
            });
        }
    }

    // --- cross-rack-saturation ----------------------------------------------
    // The oversubscribed rack uplinks dominate the network plane when most
    // completed bytes crossed racks. Recovery is priced as "make that
    // traffic node-local": node-local transfers are free loopback, so the
    // surviving network time scales with the byte share left on the wire —
    // the net_scale what-if axis prices exactly that.
    let netr = &inputs.network;
    if netr.total_bytes > 0 && netr.cross_rack_bytes > 0 {
        let frac = netr.cross_rack_bytes as f64 / netr.total_bytes as f64;
        if frac >= CROSS_RACK_MIN_BYTE_FRAC {
            let mut w = WhatIf::identity();
            w.net_scale = 1.0 - frac;
            let rep = reprice(inputs.profile, &w);
            let recovery_s = rep.baseline_s - rep.predicted_s;
            let xrack: Vec<f64> = s.cross_rack_bytes.iter().map(|&b| b as f64).collect();
            let mut uplinks: Vec<(&str, u64)> = netr
                .links
                .iter()
                .filter(|l| l.bytes > 0 && l.label.starts_with("rack"))
                .map(|l| (l.label.as_str(), l.bytes))
                .collect();
            uplinks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let worst = uplinks.first().map(|&(l, _)| l).unwrap_or("rack links");
            let mut stages: Vec<((u64, u32), SimTime)> = {
                let mut m: BTreeMap<(u64, u32), SimTime> = BTreeMap::new();
                for task in &inputs.log.tasks {
                    if !task.breakdown.net.is_zero() {
                        *m.entry((task.job, task.stage)).or_default() += task.breakdown.net;
                    }
                }
                m.into_iter().collect()
            };
            stages.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            findings.push(Finding {
                kind: FindingKind::CrossRackSaturation,
                severity: if recovery_s >= SATURATION_CRITICAL_FRAC * elapsed_s {
                    Severity::Critical
                } else if recovery_s >= SATURATION_MIN_RECOVERY_FRAC * elapsed_s {
                    Severity::Warning
                } else {
                    Severity::Info
                },
                score: (recovery_s / elapsed_s).max(frac * SATURATION_MIN_RECOVERY_FRAC),
                summary: format!(
                    "cross-rack traffic dominates the network plane: {:.1} MB of \
                     {:.1} MB completed bytes crossed racks ({:.1}%, busiest uplink \
                     {worst}) — scheduling that traffic node-local recovers \
                     ~{recovery_s:.4}s",
                    netr.cross_rack_bytes as f64 / 1e6,
                    netr.total_bytes as f64 / 1e6,
                    frac * 100.0,
                ),
                evidence: evidence(
                    s,
                    width,
                    inputs.elapsed,
                    "cross-rack bytes",
                    &xrack,
                    &top_windows(&xrack, EVIDENCE_TOP_K),
                ),
                stages: stages
                    .iter()
                    .take(3)
                    .map(|((j, st), _)| format!("job{j}/stage{st}"))
                    .collect(),
                objects: Vec::new(),
                estimated_recovery_s: recovery_s,
            });
        }
    }

    findings
}

impl DoctorReport {
    /// Render the ranked narrative: a headline, per-tier utilization and
    /// occupancy sparklines, and the top-`k` findings table — the shared
    /// [`AsciiTable`]/[`sparkline`] machinery the explainer renders with.
    pub fn render(&self, k: usize) -> String {
        let n = self.series.starts.len();
        let mut out = format!(
            "run doctor: {:.6}s over {} windows x {:.6}s; conservation {}; {} finding(s)\n",
            self.elapsed.as_secs_f64(),
            n,
            self.window_width.as_secs_f64(),
            if self.conserved { "exact" } else { "BROKEN" },
            self.findings.len(),
        );
        for t in TierId::all() {
            let util: Vec<f64> = self
                .series
                .tier_utilization
                .iter()
                .map(|u| u[t.index()])
                .collect();
            let bytes: u64 = self.series.tier_bytes.iter().map(|w| w[t.index()]).sum();
            if bytes == 0 {
                continue;
            }
            let peak = util.iter().cloned().fold(0.0, f64::max);
            out.push_str(&format!(
                "{t} utilization (peak {:.0}%): {}\n",
                peak * 100.0,
                sparkline(&util)
            ));
        }
        if self.total_cores > 0 {
            let cap = self
                .window_width
                .as_ps()
                .saturating_mul(self.total_cores)
                .max(1) as f64;
            let busy: Vec<f64> = self
                .series
                .busy
                .iter()
                .map(|b| b.as_ps() as f64 / cap)
                .collect();
            out.push_str(&format!("executor busy: {}\n", sparkline(&busy)));
            let queue: Vec<f64> = self
                .series
                .queue
                .iter()
                .map(|q| q.as_ps() as f64 / self.window_width.as_ps().max(1) as f64)
                .collect();
            if queue.iter().any(|&q| q > 0.0) {
                out.push_str(&format!("runnable queue depth: {}\n", sparkline(&queue)));
            }
        }
        if self.findings.is_empty() {
            out.push_str("no findings: nothing crossed a detector threshold\n");
            return out;
        }
        let mut t = AsciiTable::new(vec![
            "#",
            "finding",
            "severity",
            "score",
            "recovery (s)",
            "summary",
        ])
        .title("Findings (ranked)");
        for (i, f) in self.findings.iter().take(k).enumerate() {
            t.row(vec![
                format!("{}", i + 1),
                f.kind.label().to_string(),
                f.severity.label().to_string(),
                fmt_f64(f.score, 4),
                fmt_f64(f.estimated_recovery_s, 4),
                f.summary.clone(),
            ]);
        }
        out.push_str(&t.render());
        for f in self.findings.iter().take(k) {
            for e in &f.evidence {
                out.push_str(&format!(
                    "  {}: [{:.6}s, {:.6}s) {} = {}\n",
                    f.kind.label(),
                    e.start.as_secs_f64(),
                    e.end.as_secs_f64(),
                    e.what,
                    fmt_f64(e.value, 4),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::build_profile;
    use memtier_memsim::MemSimConfig;

    fn params() -> [TierParams; NUM_TIERS] {
        let conf = MemSimConfig::paper_default();
        TierId::all().map(|t| conf.effective_tier_params(t))
    }

    fn empty_inputs<'a>(
        elapsed: SimTime,
        windows: &'a WindowRollup,
        counters: &'a CounterSnapshot,
        params: &'a [TierParams; NUM_TIERS],
        profile: &'a RunProfile,
        log: &'a ProfileLog,
        hotness: &'a HotnessReport,
        cache: &'a CacheStats,
    ) -> DoctorInputs<'a> {
        DoctorInputs {
            elapsed,
            total_cores: 4,
            windows,
            counters,
            params,
            profile,
            log,
            hotness,
            cache,
            migrations: MigrationStats::default(),
            recovery: RecoveryStats::default(),
            waste_spans: &[],
            object_series: &[],
            network: NetReport::default(),
            net_records: &[],
        }
    }

    #[test]
    fn add_span_partitions_exactly_across_windows() {
        let width_ps = SimTime::from_us(100).as_ps();
        let mut series = vec![SimTime::ZERO; 10];
        // Straddles three windows with ragged edges.
        let (a, b) = (SimTime::from_us(150), SimTime::from_us(420));
        add_span(&mut series, width_ps, a, b);
        let total: SimTime = series.iter().copied().sum();
        assert_eq!(total, b - a);
        assert_eq!(series[1], SimTime::from_us(50));
        assert_eq!(series[2], SimTime::from_us(100));
        assert_eq!(series[3], SimTime::from_us(100));
        assert_eq!(series[4], SimTime::from_us(20));
        // A span past the grid end lands in the last window (tail absorb).
        let mut short = vec![SimTime::ZERO; 2];
        add_span(
            &mut short,
            width_ps,
            SimTime::from_us(150),
            SimTime::from_us(900),
        );
        let total: SimTime = short.iter().copied().sum();
        assert_eq!(total, SimTime::from_us(750));
        // Zero-length spans contribute nothing.
        add_span(
            &mut short,
            width_ps,
            SimTime::from_us(5),
            SimTime::from_us(5),
        );
        let still: SimTime = short.iter().copied().sum();
        assert_eq!(still, SimTime::from_us(750));
    }

    #[test]
    fn empty_run_diagnoses_clean_and_conserves() {
        let windows = WindowRollup::default();
        let counters = CounterSnapshot::zero();
        let params = params();
        let log = ProfileLog::default();
        let profile = build_profile(&log, SimTime::from_ms(1));
        let hotness = HotnessReport::default();
        let cache = CacheStats::default();
        let inputs = empty_inputs(
            SimTime::from_ms(1),
            &windows,
            &counters,
            &params,
            &profile,
            &log,
            &hotness,
            &cache,
        );
        let r = diagnose(&inputs);
        assert!(r.conserved, "an empty run trivially conserves");
        assert!(!r.series.starts.is_empty());
        // An all-driver run is one big idle bubble; nothing else fires.
        for f in &r.findings {
            assert_eq!(f.kind, FindingKind::ExecutorIdleBubble);
        }
        let text = r.render(5);
        assert!(text.contains("run doctor"));
        assert!(text.contains("conservation exact"));
    }

    #[test]
    fn doctor_grid_respects_the_window_cap() {
        let windows = WindowRollup::default(); // 100 us base width
        let counters = CounterSnapshot::zero();
        let params = params();
        let log = ProfileLog::default();
        // A long run: 10 s over 100 us windows would be 100k windows.
        let elapsed = SimTime::from_ms(10_000);
        let profile = build_profile(&log, elapsed);
        let hotness = HotnessReport::default();
        let cache = CacheStats::default();
        let inputs = empty_inputs(
            elapsed, &windows, &counters, &params, &profile, &log, &hotness, &cache,
        );
        let r = diagnose(&inputs);
        assert!(r.series.starts.len() as u64 <= DOCTOR_MAX_WINDOWS);
        assert_eq!(
            r.window_width.as_ps() % windows.width().as_ps(),
            0,
            "doctor width must stay an exact multiple of the rollup width"
        );
    }

    #[test]
    fn waste_spans_surface_and_conserve() {
        let windows = WindowRollup::default();
        let counters = CounterSnapshot::zero();
        let params = params();
        let log = ProfileLog::default();
        let elapsed = SimTime::from_ms(10);
        let profile = build_profile(&log, elapsed);
        let hotness = HotnessReport::default();
        let cache = CacheStats::default();
        let mut inputs = empty_inputs(
            elapsed, &windows, &counters, &params, &profile, &log, &hotness, &cache,
        );
        let spans = vec![(SimTime::from_ms(1), SimTime::from_ms(3))];
        inputs.recovery = RecoveryStats {
            useful_time: SimTime::from_ms(5),
            wasted_time: SimTime::from_ms(2),
            ..RecoveryStats::default()
        };
        inputs.waste_spans = &spans;
        // Busy must cover useful + wasted; there is no task log here, so
        // only the waste spans land — conservation must flag the mismatch.
        let r = diagnose(&inputs);
        assert!(
            !r.conserved,
            "missing useful-occupancy spans must be caught"
        );
        let waste_total: SimTime = r.series.waste.iter().copied().sum();
        assert_eq!(waste_total, SimTime::from_ms(2));
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::FaultWasteConcentration)
            .expect("waste above threshold must surface");
        assert!(f.estimated_recovery_s > 0.0);
        assert!(!f.evidence.is_empty());
    }

    #[test]
    fn cross_rack_saturation_fires_and_conserves() {
        use crate::net::NetChargeKind;

        let windows = WindowRollup::default();
        let counters = CounterSnapshot::zero();
        let params = params();
        let log = ProfileLog::default();
        let elapsed = SimTime::from_ms(10);
        let profile = build_profile(&log, elapsed);
        let hotness = HotnessReport::default();
        let cache = CacheStats::default();
        let mut inputs = empty_inputs(
            elapsed, &windows, &counters, &params, &profile, &log, &hotness, &cache,
        );
        let rec = |at_ms: u64, bytes: u64, locality: Locality| TransferRecord {
            at: SimTime::from_ms(at_ms),
            task: Some(1),
            kind: NetChargeKind::ShuffleFetch,
            src: 0,
            dst: 2,
            bytes,
            locality,
            links: vec![0],
            refetch: false,
        };
        let records = vec![
            rec(2, 3_000_000, Locality::Remote),
            rec(4, 1_000_000, Locality::RackLocal),
        ];
        inputs.network = NetReport {
            transfers: 2,
            total_bytes: 4_000_000,
            rack_local_bytes: 1_000_000,
            cross_rack_bytes: 3_000_000,
            shuffle_bytes: 4_000_000,
            links: vec![crate::net::LinkReport {
                label: "rack0:up".into(),
                bytes: 3_000_000,
                busy_s: 0.001,
            }],
            ..NetReport::default()
        };
        inputs.net_records = &records;
        let r = diagnose(&inputs);
        assert!(r.conserved, "cross-rack windows must re-sum to the report");
        let binned: u64 = r.series.cross_rack_bytes.iter().sum();
        assert_eq!(binned, 3_000_000);
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::CrossRackSaturation)
            .expect("75% cross-rack share must surface");
        assert!(f.summary.contains("rack0:up"));
        assert!(!f.evidence.is_empty());
        // With no network time in the profile the what-if recovers nothing,
        // but the byte-share score still ranks the finding.
        assert!(f.score > 0.0);
    }

    #[test]
    fn mismatched_cross_rack_totals_break_conservation() {
        let windows = WindowRollup::default();
        let counters = CounterSnapshot::zero();
        let params = params();
        let log = ProfileLog::default();
        let elapsed = SimTime::from_ms(10);
        let profile = build_profile(&log, elapsed);
        let hotness = HotnessReport::default();
        let cache = CacheStats::default();
        let mut inputs = empty_inputs(
            elapsed, &windows, &counters, &params, &profile, &log, &hotness, &cache,
        );
        // The report claims cross-rack bytes, but no records back them.
        inputs.network.total_bytes = 1_000_000;
        inputs.network.cross_rack_bytes = 1_000_000;
        let r = diagnose(&inputs);
        assert!(!r.conserved);
    }

    #[test]
    fn findings_rank_deterministically() {
        let a = Finding {
            kind: FindingKind::StragglerSkew,
            severity: Severity::Info,
            score: 0.1,
            summary: "a".into(),
            evidence: vec![],
            stages: vec![],
            objects: vec![],
            estimated_recovery_s: 0.0,
        };
        let mut b = a.clone();
        b.kind = FindingKind::TierBandwidthSaturation;
        b.score = 0.5;
        let mut r = DoctorReport {
            findings: vec![a, b],
            ..DoctorReport::default()
        };
        r.findings.sort_by(|x, y| {
            y.score
                .total_cmp(&x.score)
                .then_with(|| x.kind.order().cmp(&y.kind.order()))
                .then_with(|| x.summary.cmp(&y.summary))
        });
        assert_eq!(r.findings[0].kind, FindingKind::TierBandwidthSaturation);
    }
}
