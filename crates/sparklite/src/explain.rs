//! Regression explainer: hierarchical run-diff attribution.
//!
//! The zero-tolerance `compare` gate answers *which* scenario's virtual
//! runtime drifted; this module answers *why*. Every run already carries an
//! exact-integer decomposition of its runtime — the critical-path profile
//! ([`RunProfile`], conserving in integer picoseconds), the per-object ×
//! per-tier attribution ledger ([`HotnessReport`], conserving against the
//! machine counters), the migration rollup ([`MigrationStats`]) and the
//! fault/recovery rollup ([`RecoveryStats`]). [`build_digest`] condenses all
//! of them into a compact [`RunDigest`] carried on every
//! [`RunReport`](crate::context::RunReport), and [`explain`] diffs two
//! digests of the same scenario into an [`ExplainReport`]: the end-to-end
//! virtual-runtime delta attributed down a hierarchy of
//!
//! 1. **phases** — the critical-path components (compute, shuffle fetch,
//!    scheduler queue, driver, per-tier read/write stall);
//! 2. **stages** — the same components sliced per `(job, stage)` along the
//!    critical path, plus a `driver` bucket;
//! 3. **objects** — per-object × per-tier nominal-stall and traffic deltas
//!    (a *side* decomposition: it conserves the total nominal-stall delta,
//!    not the runtime delta — stall off the critical path is invisible to
//!    the end-to-end time);
//! 4. **migration and fault waste** — what the placement engine and the
//!    recovery machinery did differently.
//!
//! The central invariant is the same **conservation** discipline as the
//! decompositions it diffs: at the phase level and again at the stage
//! level, attributed deltas sum to the end-to-end delta in exact integer
//! picoseconds ([`ExplainReport::conserves`]), and explaining a run against
//! itself yields an all-zero report that serializes byte-identically across
//! regenerations. On top of the exact hierarchy sits a ranked top-k
//! **contributors** view ([`ExplainReport::render`], a
//! [`memtier_metrics::AsciiTable`] narrative) — the table CI prints when a
//! gate trips, so red CI is self-diagnosing instead of a manual bisect
//! through Perfetto traces.

use crate::faultsim::RecoveryStats;
use crate::profile::{Attribution, ProfileLog, RunProfile, SegmentKind};
use memtier_des::SimTime;
use memtier_memsim::{HotnessReport, MigrationStats, ObjectId, NUM_TIERS};
use memtier_metrics::table::{pct_of_ps, signed_seconds};
use memtier_metrics::AsciiTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One executed stage's slice of the critical path: the time the path spent
/// inside the stage, decomposed into the same components as the global
/// [`Attribution`] (the `driver` component is always zero here — driver
/// time belongs to no stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSlice {
    /// Owning job (context-wide sequence number).
    pub job: u64,
    /// Stage id within the job's plan.
    pub stage: u32,
    /// Critical-path components inside this stage.
    pub phases: Attribution,
}

impl StageSlice {
    /// Display key, e.g. `job0/stage2`.
    pub fn key(&self) -> String {
        format!("job{}/stage{}", self.job, self.stage)
    }
}

/// One object's compact footprint in a digest: per-tier bytes moved and
/// nominal stall, in exact integers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectDigest {
    /// The object.
    pub object: ObjectId,
    /// `object.label()`, denormalized for JSON consumers.
    pub label: String,
    /// Bytes moved per tier (reads + writes), indexed by `TierId::index()`.
    pub bytes: [u64; NUM_TIERS],
    /// Nominal stall per tier (read + write), integer picoseconds.
    pub stall: [SimTime; NUM_TIERS],
}

impl ObjectDigest {
    /// Total bytes across tiers.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total nominal stall across tiers.
    pub fn total_stall(&self) -> SimTime {
        self.stall.iter().copied().sum()
    }
}

/// A compact, conserved decomposition of one run — everything the explainer
/// needs to attribute a runtime delta, in exact integers, small enough to
/// ride on every `BENCH_*` baseline row.
///
/// Invariants (inherited from the decompositions it condenses, checked by
/// [`RunDigest::conserves`]):
/// * `phases` sums to `elapsed` in integer picoseconds;
/// * the stage slices plus `phases.driver` sum to `elapsed`, component by
///   component;
/// * `objects` partitions the run's total nominal memory stall.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunDigest {
    /// End-to-end virtual runtime the digest accounts for.
    pub elapsed: SimTime,
    /// Global critical-path component rollup (conserves to `elapsed`).
    pub phases: Attribution,
    /// Per-stage slices of the critical path, sorted by `(job, stage)`.
    pub stages: Vec<StageSlice>,
    /// Per-object footprint, in the ledger's deterministic `ObjectId` order.
    pub objects: Vec<ObjectDigest>,
    /// What the placement engine did (all zeros under static placement).
    pub migration: MigrationStats,
    /// What the recovery machinery did (quiet without a fault plan).
    pub recovery: RecoveryStats,
}

impl RunDigest {
    /// Total nominal stall across all objects and tiers.
    pub fn total_stall(&self) -> SimTime {
        self.objects.iter().map(ObjectDigest::total_stall).sum()
    }

    /// True iff the digest's own conservation invariants hold: phases sum
    /// to `elapsed`, and the stage slices plus the driver component re-sum
    /// to the global phase rollup component by component.
    pub fn conserves(&self) -> bool {
        if self.phases.total() != self.elapsed {
            return false;
        }
        let mut resum = Attribution {
            driver: self.phases.driver,
            ..Attribution::default()
        };
        for s in &self.stages {
            if !s.phases.driver.is_zero() {
                return false; // driver time belongs to no stage
            }
            resum.compute += s.phases.compute;
            resum.shuffle_fetch += s.phases.shuffle_fetch;
            resum.sched_queue += s.phases.sched_queue;
            for i in 0..NUM_TIERS {
                resum.mem_read[i] += s.phases.mem_read[i];
                resum.mem_write[i] += s.phases.mem_write[i];
            }
        }
        resum == self.phases
    }
}

/// Condense one run's conserved decompositions into a [`RunDigest`].
///
/// The per-stage slices are re-derived from the critical path: every task
/// segment contributes its [`TaskBreakdown`](crate::TaskBreakdown) to its
/// stage, every queue segment contributes its gap to the gated task's
/// stage, and driver segments stay global. Because the path segments tile
/// `[0, elapsed]` and each breakdown conserves its span, the slices plus
/// driver time re-sum to `elapsed` exactly.
pub fn build_digest(
    profile: &RunProfile,
    log: &ProfileLog,
    hotness: &HotnessReport,
    migration: MigrationStats,
    recovery: RecoveryStats,
) -> RunDigest {
    let by_id: BTreeMap<(u64, u64), &crate::profile::TaskRecord> =
        log.tasks.iter().map(|t| ((t.job, t.task_id), t)).collect();
    let mut stages: BTreeMap<(u64, u32), Attribution> = BTreeMap::new();
    for seg in &profile.segments {
        let (Some(job), Some(task_id)) = (seg.job, seg.task_id) else {
            continue; // driver segment — accounted globally
        };
        let task = by_id
            .get(&(job, task_id))
            .expect("critical-path segment references an unrecorded task");
        let slot = stages.entry((task.job, task.stage)).or_default();
        match seg.kind {
            SegmentKind::Task => slot.add_breakdown(&task.breakdown),
            SegmentKind::Queue => slot.sched_queue += seg.duration(),
            SegmentKind::Driver => unreachable!("driver segments carry no task"),
        }
    }
    let digest = RunDigest {
        elapsed: profile.elapsed,
        phases: profile.attribution,
        stages: stages
            .into_iter()
            .map(|((job, stage), phases)| StageSlice { job, stage, phases })
            .collect(),
        objects: hotness
            .objects
            .iter()
            .map(|o| ObjectDigest {
                object: o.object,
                label: o.label.clone(),
                bytes: std::array::from_fn(|i| o.tiers[i].bytes()),
                stall: std::array::from_fn(|i| o.tiers[i].stall()),
            })
            .collect(),
        migration,
        recovery,
    };
    debug_assert!(
        digest.conserves(),
        "digest must inherit the profile's conservation"
    );
    digest
}

/// Signed picosecond difference of two instants (`candidate − baseline`).
fn delta_ps(baseline: SimTime, candidate: SimTime) -> i64 {
    candidate.0 as i64 - baseline.0 as i64
}

/// One named component's baseline/candidate/delta triple. The atom of every
/// level of the explain hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaRow {
    /// Component name (phase names follow [`Attribution::named_seconds`]).
    pub name: String,
    /// Baseline value, integer picoseconds.
    pub baseline: SimTime,
    /// Candidate value, integer picoseconds.
    pub candidate: SimTime,
    /// `candidate − baseline`, signed picoseconds.
    pub delta_ps: i64,
}

impl DeltaRow {
    fn new(name: String, baseline: SimTime, candidate: SimTime) -> DeltaRow {
        DeltaRow {
            name,
            baseline,
            candidate,
            delta_ps: delta_ps(baseline, candidate),
        }
    }
}

/// One stage's slice of the runtime delta, with its per-phase breakdown.
/// The synthetic `driver` row (job/stage `None`) absorbs driver time so the
/// stage level re-sums to the total exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageDelta {
    /// Display key (`job0/stage2`, or `driver` for the synthetic row).
    pub key: String,
    /// Owning job (`None` for the driver row).
    pub job: Option<u64>,
    /// Stage id (`None` for the driver row).
    pub stage: Option<u32>,
    /// Critical-path time inside the stage, baseline.
    pub baseline: SimTime,
    /// Critical-path time inside the stage, candidate.
    pub candidate: SimTime,
    /// `candidate − baseline`, signed picoseconds.
    pub delta_ps: i64,
    /// Per-phase rows (components that are zero on both sides are elided).
    pub phases: Vec<DeltaRow>,
}

/// One object's contribution to the nominal-stall delta.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectDelta {
    /// The object.
    pub object: ObjectId,
    /// Human-readable label.
    pub label: String,
    /// Total bytes moved, baseline.
    pub baseline_bytes: u64,
    /// Total bytes moved, candidate.
    pub candidate_bytes: u64,
    /// `candidate − baseline` bytes, signed.
    pub delta_bytes: i64,
    /// Total nominal stall, baseline.
    pub baseline_stall: SimTime,
    /// Total nominal stall, candidate.
    pub candidate_stall: SimTime,
    /// `candidate − baseline` stall, signed picoseconds.
    pub delta_stall_ps: i64,
    /// Per-tier stall delta, signed picoseconds.
    pub tier_stall_delta_ps: [i64; NUM_TIERS],
}

/// One ranked leaf contributor to the runtime delta: a `(stage, phase)`
/// cell of the conserving hierarchy. Summed over all contributors (zero
/// rows included — they are elided from the report but contribute nothing),
/// the deltas equal the end-to-end delta exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contributor {
    /// Where on the path (`job0/stage2`, or `driver`).
    pub scope: String,
    /// Which component (`compute`, `tier2_write`, `sched_queue`, ...).
    pub component: String,
    /// `candidate − baseline`, signed picoseconds.
    pub delta_ps: i64,
    /// Share of the total delta (signed; 0 when the total delta is zero).
    pub share: f64,
}

/// Migration-activity diff between two runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationDelta {
    /// Baseline rollup.
    pub baseline: MigrationStats,
    /// Candidate rollup.
    pub candidate: MigrationStats,
    /// `candidate − baseline` migrations, signed.
    pub delta_migrations: i64,
    /// `candidate − baseline` bytes copied, signed.
    pub delta_bytes_moved: i64,
}

impl MigrationDelta {
    fn new(baseline: MigrationStats, candidate: MigrationStats) -> MigrationDelta {
        MigrationDelta {
            baseline,
            candidate,
            delta_migrations: candidate.migrations as i64 - baseline.migrations as i64,
            delta_bytes_moved: candidate.bytes_moved as i64 - baseline.bytes_moved as i64,
        }
    }

    /// Whether both sides were migration-free and equal.
    pub fn is_zero(&self) -> bool {
        self.baseline == self.candidate
    }
}

/// Fault/recovery-waste diff between two runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryDelta {
    /// Baseline rollup.
    pub baseline: RecoveryStats,
    /// Candidate rollup.
    pub candidate: RecoveryStats,
    /// `candidate − baseline` wasted virtual time, signed picoseconds.
    pub delta_wasted_ps: i64,
    /// `candidate − baseline` useful virtual time, signed picoseconds.
    pub delta_useful_ps: i64,
    /// `candidate − baseline` injected failures (task + fetch + crash).
    pub delta_failures: i64,
    /// `candidate − baseline` retry attempts.
    pub delta_retries: i64,
}

impl RecoveryDelta {
    fn new(baseline: RecoveryStats, candidate: RecoveryStats) -> RecoveryDelta {
        let failures = |r: &RecoveryStats| r.task_failures + r.fetch_failures + r.executor_crashes;
        RecoveryDelta {
            baseline,
            candidate,
            delta_wasted_ps: delta_ps(baseline.wasted_time, candidate.wasted_time),
            delta_useful_ps: delta_ps(baseline.useful_time, candidate.useful_time),
            delta_failures: failures(&candidate) as i64 - failures(&baseline) as i64,
            delta_retries: candidate.retries as i64 - baseline.retries as i64,
        }
    }

    /// Whether both sides saw identical recovery activity.
    pub fn is_zero(&self) -> bool {
        self.baseline == self.candidate
    }
}

/// The explainer's product: a hierarchical, conserved diff of two
/// [`RunDigest`]s of the same scenario. See the module docs for the levels
/// and their conservation rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Baseline end-to-end virtual runtime.
    pub baseline_elapsed: SimTime,
    /// Candidate end-to-end virtual runtime.
    pub candidate_elapsed: SimTime,
    /// `candidate − baseline`, signed picoseconds — the quantity every
    /// conserving level of the hierarchy re-sums to exactly.
    pub delta_ps: i64,
    /// Level 1: critical-path phase deltas, in the fixed
    /// [`Attribution::named_seconds`] order. Sums to `delta_ps` exactly.
    pub phases: Vec<DeltaRow>,
    /// Level 2: per-stage deltas (plus the synthetic `driver` row), sorted
    /// by `(job, stage)` with `driver` last. Sums to `delta_ps` exactly.
    pub stages: Vec<StageDelta>,
    /// Side decomposition: per-object nominal-stall deltas, ranked by
    /// `|delta_stall_ps|` descending (object id breaks ties). Sums to
    /// `stall_delta_ps` exactly — *not* to `delta_ps`: stall off the
    /// critical path does not move the end-to-end time.
    pub objects: Vec<ObjectDelta>,
    /// Total nominal-stall delta the object rows partition.
    pub stall_delta_ps: i64,
    /// Migration-traffic diff.
    pub migration: MigrationDelta,
    /// Fault/recovery-waste diff.
    pub recovery: RecoveryDelta,
    /// Ranked leaf contributors (nonzero `(stage, phase)` cells), by
    /// `|delta_ps|` descending, ties broken by `(scope, component)`.
    pub contributors: Vec<Contributor>,
}

impl ExplainReport {
    /// True iff every conserving level re-sums to the end-to-end delta in
    /// exact integer picoseconds, and the object rows re-sum to the total
    /// nominal-stall delta.
    pub fn conserves(&self) -> bool {
        let phase_sum: i64 = self.phases.iter().map(|r| r.delta_ps).sum();
        let stage_sum: i64 = self.stages.iter().map(|r| r.delta_ps).sum();
        let contrib_sum: i64 = self.contributors.iter().map(|c| c.delta_ps).sum();
        let object_sum: i64 = self.objects.iter().map(|o| o.delta_stall_ps).sum();
        phase_sum == self.delta_ps
            && stage_sum == self.delta_ps
            && contrib_sum == self.delta_ps
            && object_sum == self.stall_delta_ps
    }

    /// True iff nothing moved: the runtime delta, every attributed delta,
    /// and the migration/recovery diffs are all zero.
    pub fn is_zero(&self) -> bool {
        self.delta_ps == 0
            && self.stall_delta_ps == 0
            && self.contributors.is_empty()
            && self.phases.iter().all(|r| r.delta_ps == 0)
            && self.stages.iter().all(|s| s.delta_ps == 0)
            && self
                .objects
                .iter()
                .all(|o| o.delta_stall_ps == 0 && o.delta_bytes == 0)
            && self.migration.is_zero()
            && self.recovery.is_zero()
    }

    /// The `k` largest leaf contributors by `|delta_ps|`.
    pub fn top_contributors(&self, k: usize) -> &[Contributor] {
        &self.contributors[..k.min(self.contributors.len())]
    }

    /// Render the ranked narrative: a headline, the top-`k` contributor
    /// table, the top object movers, and one-line migration/recovery notes
    /// when they moved. This is what `compare --explain` prints on a gate
    /// breach.
    pub fn render(&self, k: usize) -> String {
        let sign_s = signed_seconds;
        let mut out = format!(
            "runtime {:.6}s -> {:.6}s ({}, {})\n",
            self.baseline_elapsed.as_secs_f64(),
            self.candidate_elapsed.as_secs_f64(),
            sign_s(self.delta_ps),
            pct_of_ps(self.delta_ps, self.baseline_elapsed.0)
        );
        if self.contributors.is_empty() {
            out.push_str("no contributor moved: the critical paths are identical\n");
        } else {
            let mut t = AsciiTable::new(vec!["#", "where", "component", "delta", "share"])
                .title("Top contributors (stage x phase cells of the conserved delta)");
            for (i, c) in self.top_contributors(k).iter().enumerate() {
                t.row(vec![
                    format!("{}", i + 1),
                    c.scope.clone(),
                    c.component.clone(),
                    sign_s(c.delta_ps),
                    format!("{:+.1}%", c.share * 100.0),
                ]);
            }
            out.push_str(&t.render());
        }
        let movers: Vec<&ObjectDelta> = self
            .objects
            .iter()
            .filter(|o| o.delta_stall_ps != 0 || o.delta_bytes != 0)
            .take(k)
            .collect();
        if !movers.is_empty() {
            let mut t = AsciiTable::new(vec!["object", "stall delta", "bytes delta"])
                .title("Object movers (nominal stall, all tiers; side decomposition)");
            for o in movers {
                t.row(vec![
                    o.label.clone(),
                    sign_s(o.delta_stall_ps),
                    format!("{:+}", o.delta_bytes),
                ]);
            }
            out.push('\n');
            out.push_str(&t.render());
        }
        if !self.migration.is_zero() {
            out.push_str(&format!(
                "\nmigration: {:+} migrations, {:+} bytes moved\n",
                self.migration.delta_migrations, self.migration.delta_bytes_moved
            ));
        }
        if !self.recovery.is_zero() {
            out.push_str(&format!(
                "\nfault waste: wasted {} / useful {}, {:+} failures, {:+} retries\n",
                sign_s(self.recovery.delta_wasted_ps),
                sign_s(self.recovery.delta_useful_ps),
                self.recovery.delta_failures,
                self.recovery.delta_retries
            ));
        }
        out
    }
}

/// Phase-level delta rows between two attributions, in the fixed component
/// order (every component is kept, zero or not, so the level always sums
/// to the total delta).
fn phase_rows(a: &Attribution, b: &Attribution) -> Vec<DeltaRow> {
    a.named_ps()
        .into_iter()
        .zip(b.named_ps())
        .map(|((name, av), (_, bv))| DeltaRow::new(name, av, bv))
        .collect()
}

/// Diff two digests of the same scenario into an [`ExplainReport`].
///
/// Stages and objects are joined on their identity (`(job, stage)` /
/// [`ObjectId`]); one present on only one side diffs against zero, so a
/// changed plan shape (an extra stage, a new object) is attributed rather
/// than dropped. The output is a pure function of the two digests — every
/// ordering is deterministic, so the same pair explains to byte-identical
/// JSON on every regeneration.
pub fn explain(baseline: &RunDigest, candidate: &RunDigest) -> ExplainReport {
    let total = delta_ps(baseline.elapsed, candidate.elapsed);

    // Level 1: phases.
    let phases = phase_rows(&baseline.phases, &candidate.phases);

    // Level 2: stages, joined on (job, stage), driver bucket last.
    let mut keys: std::collections::BTreeSet<(u64, u32)> = std::collections::BTreeSet::new();
    let slice_map = |d: &RunDigest| -> BTreeMap<(u64, u32), Attribution> {
        d.stages
            .iter()
            .map(|s| ((s.job, s.stage), s.phases))
            .collect()
    };
    let (ba, ca) = (slice_map(baseline), slice_map(candidate));
    keys.extend(ba.keys());
    keys.extend(ca.keys());
    let zero = Attribution::default();
    let mut stages: Vec<StageDelta> = Vec::new();
    let mut contributors: Vec<Contributor> = Vec::new();
    for (job, stage) in keys {
        let a = ba.get(&(job, stage)).unwrap_or(&zero);
        let b = ca.get(&(job, stage)).unwrap_or(&zero);
        let key = format!("job{job}/stage{stage}");
        let rows: Vec<DeltaRow> = phase_rows(a, b)
            .into_iter()
            .filter(|r| !(r.baseline.is_zero() && r.candidate.is_zero()))
            .collect();
        for r in &rows {
            if r.delta_ps != 0 {
                contributors.push(Contributor {
                    scope: key.clone(),
                    component: r.name.clone(),
                    delta_ps: r.delta_ps,
                    share: share_of(r.delta_ps, total),
                });
            }
        }
        stages.push(StageDelta {
            key,
            job: Some(job),
            stage: Some(stage),
            baseline: a.total(),
            candidate: b.total(),
            delta_ps: delta_ps(a.total(), b.total()),
            phases: rows,
        });
    }
    let driver = StageDelta {
        key: "driver".to_string(),
        job: None,
        stage: None,
        baseline: baseline.phases.driver,
        candidate: candidate.phases.driver,
        delta_ps: delta_ps(baseline.phases.driver, candidate.phases.driver),
        phases: vec![DeltaRow::new(
            "driver".to_string(),
            baseline.phases.driver,
            candidate.phases.driver,
        )],
    };
    if driver.delta_ps != 0 {
        contributors.push(Contributor {
            scope: "driver".to_string(),
            component: "driver".to_string(),
            delta_ps: driver.delta_ps,
            share: share_of(driver.delta_ps, total),
        });
    }
    stages.push(driver);
    contributors.sort_by(|x, y| {
        y.delta_ps
            .abs()
            .cmp(&x.delta_ps.abs())
            .then_with(|| x.scope.cmp(&y.scope))
            .then_with(|| x.component.cmp(&y.component))
    });

    // Side decomposition: objects, joined on ObjectId.
    let obj_map = |d: &RunDigest| -> BTreeMap<ObjectId, &ObjectDigest> {
        d.objects.iter().map(|o| (o.object, o)).collect()
    };
    let (bo, co) = (obj_map(baseline), obj_map(candidate));
    let mut ids: std::collections::BTreeSet<ObjectId> = std::collections::BTreeSet::new();
    ids.extend(bo.keys());
    ids.extend(co.keys());
    let side = |m: &BTreeMap<ObjectId, &ObjectDigest>,
                id: ObjectId|
     -> ([u64; NUM_TIERS], [SimTime; NUM_TIERS]) {
        match m.get(&id) {
            Some(o) => (o.bytes, o.stall),
            None => ([0; NUM_TIERS], [SimTime::ZERO; NUM_TIERS]),
        }
    };
    let mut objects: Vec<ObjectDelta> = ids
        .into_iter()
        .map(|id| {
            let (ab, asl) = side(&bo, id);
            let (cb, csl) = side(&co, id);
            let b_stall: SimTime = asl.iter().copied().sum();
            let c_stall: SimTime = csl.iter().copied().sum();
            ObjectDelta {
                object: id,
                label: id.label(),
                baseline_bytes: ab.iter().sum(),
                candidate_bytes: cb.iter().sum(),
                delta_bytes: cb.iter().sum::<u64>() as i64 - ab.iter().sum::<u64>() as i64,
                baseline_stall: b_stall,
                candidate_stall: c_stall,
                delta_stall_ps: delta_ps(b_stall, c_stall),
                tier_stall_delta_ps: std::array::from_fn(|i| delta_ps(asl[i], csl[i])),
            }
        })
        .collect();
    objects.sort_by(|x, y| {
        y.delta_stall_ps
            .abs()
            .cmp(&x.delta_stall_ps.abs())
            .then_with(|| x.object.cmp(&y.object))
    });
    let stall_delta = delta_ps(baseline.total_stall(), candidate.total_stall());

    let report = ExplainReport {
        baseline_elapsed: baseline.elapsed,
        candidate_elapsed: candidate.elapsed,
        delta_ps: total,
        phases,
        stages,
        objects,
        stall_delta_ps: stall_delta,
        migration: MigrationDelta::new(baseline.migration, candidate.migration),
        recovery: RecoveryDelta::new(baseline.recovery, candidate.recovery),
        contributors,
    };
    debug_assert!(
        report.conserves(),
        "explain must conserve by construction over conserving digests"
    );
    report
}

fn share_of(delta: i64, total: i64) -> f64 {
    if total == 0 {
        0.0
    } else {
        delta as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{build_profile, JobRecord, StageRecord, TaskBreakdown, TaskRecord};

    fn breakdown(compute_us: u64, t2_read_us: u64, t2_write_us: u64) -> TaskBreakdown {
        let mut b = TaskBreakdown {
            compute: SimTime::from_us(compute_us),
            ..TaskBreakdown::default()
        };
        b.mem_read[2] = SimTime::from_us(t2_read_us);
        b.mem_write[2] = SimTime::from_us(t2_write_us);
        b
    }

    /// Two stages; task 0 gates stage 1's task 1; queue gap + driver pads.
    fn log(compute1_us: u64) -> ProfileLog {
        ProfileLog {
            tasks: vec![
                TaskRecord {
                    task_id: 0,
                    job: 0,
                    stage: 0,
                    partition: 0,
                    started: SimTime::from_us(10),
                    end: SimTime::from_us(40),
                    breakdown: breakdown(10, 15, 5),
                },
                TaskRecord {
                    task_id: 1,
                    job: 0,
                    stage: 1,
                    partition: 0,
                    started: SimTime::from_us(45),
                    end: SimTime::from_us(45 + compute1_us + 25),
                    breakdown: breakdown(compute1_us, 20, 5),
                },
            ],
            stages: vec![
                StageRecord {
                    job: 0,
                    stage: 0,
                    submitted: SimTime::from_us(10),
                    activated_by: None,
                },
                StageRecord {
                    job: 0,
                    stage: 1,
                    submitted: SimTime::from_us(40),
                    activated_by: Some(0),
                },
            ],
            jobs: vec![JobRecord {
                job: 0,
                submitted: SimTime::from_us(10),
                completed: SimTime::from_us(45 + compute1_us + 25),
            }],
            evictions: Vec::new(),
        }
    }

    fn digest(compute1_us: u64) -> RunDigest {
        let l = log(compute1_us);
        let elapsed = SimTime::from_us(45 + compute1_us + 25 + 20);
        let profile = build_profile(&l, elapsed);
        build_digest(
            &profile,
            &l,
            &HotnessReport::default(),
            MigrationStats::default(),
            RecoveryStats::default(),
        )
    }

    #[test]
    fn digest_slices_the_path_per_stage_and_conserves() {
        let d = digest(30);
        assert!(d.conserves());
        assert_eq!(d.stages.len(), 2);
        assert_eq!((d.stages[0].job, d.stages[0].stage), (0, 0));
        assert_eq!(d.stages[0].phases.compute, SimTime::from_us(10));
        assert!(d.stages[0].phases.sched_queue.is_zero());
        // Stage 1 carries the 5 us queue gap behind its activation.
        assert_eq!(d.stages[1].phases.sched_queue, SimTime::from_us(5));
        assert_eq!(d.stages[1].phases.compute, SimTime::from_us(30));
        let stage_sum: SimTime = d.stages.iter().map(|s| s.phases.total()).sum();
        assert_eq!(stage_sum + d.phases.driver, d.elapsed);
    }

    #[test]
    fn self_explain_is_zero_and_conserves() {
        let d = digest(30);
        let r = explain(&d, &d);
        assert!(r.conserves());
        assert!(r.is_zero());
        assert_eq!(r.delta_ps, 0);
        assert!(r.contributors.is_empty());
        // Byte-identical across regenerations.
        let j1 = serde_json::to_string(&explain(&d, &d)).unwrap();
        let j2 = serde_json::to_string(&explain(&d, &d)).unwrap();
        assert_eq!(j1, j2);
        assert!(r.render(5).contains("identical"));
    }

    #[test]
    fn explain_attributes_a_compute_regression_to_its_stage() {
        let a = digest(30);
        let b = digest(50); // stage 1's compute grew by 20 us
        let r = explain(&a, &b);
        assert!(r.conserves());
        assert!(!r.is_zero());
        assert_eq!(r.delta_ps, delta_ps(a.elapsed, b.elapsed));
        assert_eq!(r.delta_ps, SimTime::from_us(20).0 as i64);
        // The single nonzero contributor is stage 1's compute, share 100%.
        assert_eq!(r.contributors.len(), 1);
        let c = &r.contributors[0];
        assert_eq!(
            (c.scope.as_str(), c.component.as_str()),
            ("job0/stage1", "compute")
        );
        assert_eq!(c.delta_ps, SimTime::from_us(20).0 as i64);
        assert!((c.share - 1.0).abs() < 1e-12);
        // The phase level agrees.
        let compute = r.phases.iter().find(|p| p.name == "compute").unwrap();
        assert_eq!(compute.delta_ps, r.delta_ps);
        // Rendering mentions the culprit.
        let text = r.render(3);
        assert!(text.contains("job0/stage1"));
        assert!(text.contains("compute"));
    }

    #[test]
    fn stage_join_handles_one_sided_stages() {
        let a = digest(30);
        let mut b = digest(30);
        // Candidate grew an extra stage worth 7 us of compute.
        let extra = StageSlice {
            job: 0,
            stage: 2,
            phases: Attribution {
                compute: SimTime::from_us(7),
                ..Attribution::default()
            },
        };
        b.stages.push(extra);
        b.phases.compute += SimTime::from_us(7);
        b.elapsed += SimTime::from_us(7);
        assert!(b.conserves());
        let r = explain(&a, &b);
        assert!(r.conserves());
        let row = r.stages.iter().find(|s| s.key == "job0/stage2").unwrap();
        assert_eq!(row.baseline, SimTime::ZERO);
        assert_eq!(row.delta_ps, SimTime::from_us(7).0 as i64);
    }

    #[test]
    fn object_deltas_partition_the_stall_delta() {
        let mk = |stall_us: u64, bytes: u64| -> RunDigest {
            let mut d = digest(30);
            let mut stall = [SimTime::ZERO; NUM_TIERS];
            stall[2] = SimTime::from_us(stall_us);
            let mut tier_bytes = [0u64; NUM_TIERS];
            tier_bytes[2] = bytes;
            d.objects = vec![
                ObjectDigest {
                    object: ObjectId::Scratch,
                    label: ObjectId::Scratch.label(),
                    bytes: tier_bytes,
                    stall,
                },
                ObjectDigest {
                    object: ObjectId::Broadcast,
                    label: ObjectId::Broadcast.label(),
                    bytes: [1; NUM_TIERS],
                    stall: [SimTime::from_ns(1); NUM_TIERS],
                },
            ];
            d
        };
        let a = mk(100, 1000);
        let b = mk(150, 1600);
        let r = explain(&a, &b);
        assert!(r.conserves());
        assert_eq!(r.stall_delta_ps, SimTime::from_us(50).0 as i64);
        let sum: i64 = r.objects.iter().map(|o| o.delta_stall_ps).sum();
        assert_eq!(sum, r.stall_delta_ps);
        // Scratch moved; broadcast did not; ranking puts the mover first.
        assert_eq!(r.objects[0].object, ObjectId::Scratch);
        assert_eq!(r.objects[0].delta_bytes, 600);
        assert_eq!(r.objects[1].delta_stall_ps, 0);
    }

    #[test]
    fn recovery_and_migration_deltas_surface() {
        let a = digest(30);
        let mut b = digest(30);
        b.recovery.task_failures = 3;
        b.recovery.retries = 3;
        b.recovery.wasted_time = SimTime::from_us(9);
        b.migration.migrations = 2;
        b.migration.bytes_moved = 4096;
        let r = explain(&a, &b);
        assert_eq!(r.recovery.delta_failures, 3);
        assert_eq!(r.recovery.delta_wasted_ps, SimTime::from_us(9).0 as i64);
        assert!(!r.recovery.is_zero());
        assert_eq!(r.migration.delta_bytes_moved, 4096);
        let text = r.render(3);
        assert!(text.contains("fault waste"));
        assert!(text.contains("migration"));
    }

    #[test]
    fn report_json_round_trips() {
        let r = explain(&digest(30), &digest(44));
        let json = serde_json::to_string(&r).unwrap();
        let back: ExplainReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
