//! Stage construction: split lineage at shuffle boundaries.
//!
//! This is Spark's `DAGScheduler::getOrCreateParentStages` in miniature:
//! walking back from the action's RDD, every [`ShuffleDep`] becomes a
//! shuffle-map stage whose terminal is the dependency's map-side parent;
//! narrow chains stay inside a stage and are pipelined per task. Two pieces
//! of Spark's skipping logic are reproduced because the iterative workloads
//! depend on them:
//!
//! * traversal stops at an RDD whose partitions are all resident in the
//!   block cache (`cacheLocs` pruning) — a cached `links.partition_by(...)`
//!   does not re-run its upstream generator every pagerank iteration;
//! * a shuffle whose map outputs are all present is not re-executed — its
//!   stage is planned but marked *skippable* (Spark's greyed-out "skipped
//!   stages").

use crate::rdd::{Dep, RddBase, ShuffleDep};
use crate::runtime::Runtime;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a stage within one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

/// What a stage produces.
#[derive(Clone)]
pub enum StageKind {
    /// Writes shuffle buckets for this dependency.
    ShuffleMap(Arc<ShuffleDep>),
    /// Computes the action's partitions.
    Result,
}

/// One stage: a terminal RDD plus everything reachable through narrow deps.
#[derive(Clone)]
pub struct Stage {
    /// Stage id (topological: parents have smaller ids).
    pub id: StageId,
    /// The stage's terminal RDD (for a map stage, the shuffle's parent).
    pub terminal: Arc<dyn RddBase>,
    /// Map or result.
    pub kind: StageKind,
    /// Direct parent stages.
    pub parents: Vec<StageId>,
    /// Task count (terminal's partitions).
    pub num_tasks: usize,
    /// True if the stage's outputs already exist (complete shuffle) and it
    /// need not run.
    pub skippable: bool,
}

/// A compiled job: stages in topological order, last one the result stage.
pub struct StagePlan {
    /// Stages; `stages[i].id == StageId(i)`.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// The result stage id.
    pub fn result_stage(&self) -> StageId {
        StageId((self.stages.len() - 1) as u32)
    }

    /// Stages that will actually execute (not skippable, and needed).
    pub fn runnable(&self) -> impl Iterator<Item = &Stage> {
        self.stages.iter().filter(|s| !s.skippable)
    }
}

/// Is every partition of `rdd` resident in the block cache?
fn fully_cached(rdd: &Arc<dyn RddBase>, rt: &Runtime) -> bool {
    rdd.storage_level().is_cached()
        && (0..rdd.num_partitions()).all(|p| rt.cache.contains((rdd.id().0, p)))
}

/// Shuffle dependencies reachable from `rdd` without crossing a shuffle
/// boundary or a fully-cached RDD.
fn direct_shuffle_deps(rdd: &Arc<dyn RddBase>, rt: &Runtime) -> Vec<Arc<ShuffleDep>> {
    let mut out = Vec::new();
    let mut queue = vec![Arc::clone(rdd)];
    let mut seen = std::collections::HashSet::new();
    while let Some(node) = queue.pop() {
        if !seen.insert(node.id()) {
            continue;
        }
        for dep in node.deps() {
            match dep {
                Dep::Shuffle(sd) => out.push(sd),
                Dep::Narrow(parent) => {
                    if !fully_cached(&parent, rt) {
                        queue.push(parent);
                    }
                }
            }
        }
    }
    // Deterministic order regardless of traversal.
    out.sort_by_key(|d| d.shuffle_id);
    out.dedup_by_key(|d| d.shuffle_id);
    out
}

/// Build the stage plan for a job on `final_rdd`.
pub fn build_plan(final_rdd: &Arc<dyn RddBase>, rt: &Runtime) -> StagePlan {
    let mut stages: Vec<Stage> = Vec::new();
    let mut by_shuffle: HashMap<u32, StageId> = HashMap::new();

    // Recursion via explicit helper because stages must be created
    // parents-first (topological ids).
    fn stage_for(
        dep: &Arc<ShuffleDep>,
        rt: &Runtime,
        stages: &mut Vec<Stage>,
        by_shuffle: &mut HashMap<u32, StageId>,
    ) -> StageId {
        if let Some(&id) = by_shuffle.get(&dep.shuffle_id.0) {
            return id;
        }
        let skippable = rt.shuffle.is_complete(dep.shuffle_id);
        let parents = if skippable {
            // Outputs exist: upstream lineage is not needed.
            Vec::new()
        } else {
            direct_shuffle_deps(&dep.parent, rt)
                .iter()
                .map(|p| stage_for(p, rt, stages, by_shuffle))
                .collect()
        };
        let id = StageId(stages.len() as u32);
        stages.push(Stage {
            id,
            terminal: Arc::clone(&dep.parent),
            kind: StageKind::ShuffleMap(Arc::clone(dep)),
            parents,
            num_tasks: dep.parent.num_partitions(),
            skippable,
        });
        by_shuffle.insert(dep.shuffle_id.0, id);
        id
    }

    let parents = direct_shuffle_deps(final_rdd, rt)
        .iter()
        .map(|p| stage_for(p, rt, &mut stages, &mut by_shuffle))
        .collect();
    let id = StageId(stages.len() as u32);
    stages.push(Stage {
        id,
        terminal: Arc::clone(final_rdd),
        kind: StageKind::Result,
        parents,
        num_tasks: final_rdd.num_partitions(),
        skippable: false,
    });
    StagePlan { stages }
}
