//! The DAG scheduler and the discrete-event task execution simulation.

pub mod dag;
pub mod executor;
pub mod sim;

pub use dag::{build_plan, Stage, StageId, StageKind, StagePlan};
pub use executor::ExecutorSpec;
pub use sim::JobRunner;
