//! Executor placement: the `numactl`-pinned workers of the standalone
//! cluster.

use crate::config::SparkConf;
use memtier_memsim::{TierId, Topology};

/// One executor's resolved placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorSpec {
    /// Executor index.
    pub id: usize,
    /// Socket its threads are pinned to.
    pub socket: u8,
    /// Task slots (cores).
    pub cores: usize,
    /// Memory tiers its allocations land on, with traffic weights summing
    /// to 1.
    pub placement: Vec<(TierId, f64)>,
    /// The tier carrying the largest traffic share.
    pub primary_tier: TierId,
}

/// Resolve the configuration's executor grid against the topology.
pub fn build_executors(conf: &SparkConf, topo: &Topology) -> Vec<ExecutorSpec> {
    let sockets = topo.sockets.len();
    (0..conf.num_executors)
        .map(|i| {
            let socket = conf.placement.cpu.socket_for(i, sockets);
            let placement = conf.placement.mem.placement(topo, socket);
            let primary_tier = conf.placement.mem.primary_tier(topo, socket);
            ExecutorSpec {
                id: i,
                socket,
                cores: conf.cores_per_executor,
                placement,
                primary_tier,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtier_memsim::{CpuBindPolicy, MemBindPolicy};

    #[test]
    fn default_conf_builds_one_fat_executor() {
        let conf = SparkConf::default();
        let topo = Topology::paper_testbed();
        let execs = build_executors(&conf, &topo);
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].cores, 40);
        assert_eq!(execs[0].socket, 0);
        assert_eq!(execs[0].primary_tier, TierId::LOCAL_DRAM);
        assert_eq!(execs[0].placement, vec![(TierId::LOCAL_DRAM, 1.0)]);
    }

    #[test]
    fn round_robin_spreads_sockets() {
        let mut conf = SparkConf::default().with_executors(4, 10);
        conf.placement.cpu = CpuBindPolicy::RoundRobin;
        conf.placement.mem = MemBindPolicy::Tier(TierId::NVM_NEAR);
        let execs = build_executors(&conf, &Topology::paper_testbed());
        let sockets: Vec<u8> = execs.iter().map(|e| e.socket).collect();
        assert_eq!(sockets, vec![0, 1, 0, 1]);
        assert!(execs.iter().all(|e| e.primary_tier == TierId::NVM_NEAR));
    }
}
