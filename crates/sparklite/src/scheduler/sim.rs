//! The discrete-event execution simulation (the time plane).
//!
//! A [`JobRunner`] takes a compiled [`StagePlan`] and plays it out on the
//! executor grid and the simulated [`MemorySystem`]:
//!
//! * each executor is a pool of task slots (cores);
//! * a dispatched task first runs its **data plane** (really computing the
//!   partition, accumulating [`TaskMetrics`]), then occupies its slot for a
//!   modeled CPU phase followed by a memory phase whose traffic drains
//!   through the per-tier fair-share bandwidth resources;
//! * the CPU phase is inflated by intra-executor contention
//!   (`jvm_contention_alpha × co-running tasks`) and every task pays a
//!   dispatch overhead plus cross-executor coordination traffic — the
//!   Takeaway-6 mechanisms.
//!
//! Everything is deterministic: ties in the event queue resolve FIFO, the
//! executor choice rotates round-robin, and no wall-clock value is read.

use crate::error::{Result, SparkError};
use crate::events::{Event, EventBus};
use crate::faultsim::{
    FaultState, SALT_FETCH_FAIL, SALT_FETCH_VICTIM, SALT_STRAGGLER, SALT_TASK_FAIL,
};
use crate::metrics::{AppMetrics, StageRollup, TaskMetrics};
use crate::net::{NetChargeKind, NetState};
use crate::profile::{
    EvictionRecord, JobRecord, ProfileLog, StageRecord, TaskBreakdown, TaskRecord,
};
use crate::rdd::{Dep, RddBase, TaskEnv};
use crate::runtime::Runtime;
use crate::scheduler::dag::{StageId, StageKind, StagePlan};
use crate::scheduler::executor::ExecutorSpec;
use crate::shuffle::ShuffleId;
use crate::storage::BlockKey;
use crate::trace::{SpanKind, TaskSpan};
use memtier_des::{EngineProf, EventClass, EventQueue, ProfPhase, SimTime};
use memtier_memsim::{
    AccessBatch, MemorySystem, Migration, ObjectId, PlacementEngine, TierId, MIGRATION_FLOW_BASE,
};
use memtier_netsim::Locality;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The outcome of one job.
pub struct JobOutcome<U> {
    /// Per-partition results of the result stage, in partition order.
    pub results: Vec<U>,
    /// Virtual time at which the job finished.
    pub finished_at: SimTime,
    /// Stages that actually executed (excludes skipped ones).
    pub stages_run: u64,
}

struct ExecState {
    spec: ExecutorSpec,
    running: usize,
}

struct StageState {
    remaining: usize,
    unmet: usize,
    children: Vec<StageId>,
    done: bool,
    /// Virtual instant the stage became runnable.
    submitted: SimTime,
    /// Tasks the stage will run (rollup bookkeeping).
    tasks_total: u64,
    /// Running sum of the stage's task metrics.
    agg: TaskMetrics,
    /// Per-partition completion (guards speculation races and lets a
    /// resubmitted map partition run again without re-completing others).
    completed: Vec<bool>,
    /// True once the stage completed for the first time — re-completions
    /// after a fetch-failure resubmission must not re-activate children or
    /// push a second rollup.
    first_completed: bool,
    /// Durations of successfully finished tasks (speculation's median).
    finished_durations: Vec<SimTime>,
}

/// The fate fault injection decided for one attempt at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailKind {
    /// The attempt succeeds.
    None,
    /// The attempt fails at its completion instant.
    Task,
    /// The attempt hits a fetch failure blaming `victim` of map stage
    /// `parent` at its completion instant.
    Fetch { parent: StageId, victim: usize },
}

struct RunningTask<U> {
    exec: usize,
    stage: StageId,
    partition: usize,
    slot: usize,
    started: SimTime,
    /// Modeled CPU span (dispatch overhead + data-plane CPU, inflated by
    /// JVM contention) — the compute part of the task's breakdown.
    cpu: SimTime,
    /// The contention inflation factor applied to `cpu`, kept so the
    /// shuffle-fetch share of the CPU phase inflates consistently.
    cpu_factor: f64,
    outstanding: usize,
    metrics: TaskMetrics,
    /// (tier, flow id, batch, per-object parts of the batch) for each
    /// in-flight memory flow. The parts partition the batch exactly, so the
    /// attribution ledger conserves against the machine counters.
    flows: Vec<(TierId, u64, AccessBatch, Vec<(ObjectId, AccessBatch)>)>,
    /// Result-stage output parked until completion (already computed on the
    /// data plane; stored at completion purely for bookkeeping symmetry).
    result: Option<(usize, U)>,
    /// Zero-based attempt number of this dispatch.
    attempt: u32,
    /// The fate fault injection rolled for this attempt at dispatch.
    fail: FailKind,
    /// True for speculative clones of stragglers.
    speculative: bool,
    /// Transfer ids of the task's in-flight network flows.
    transfers: Vec<u64>,
    /// Transfers still draining; the task completes only when both its
    /// memory flows and its transfers are done.
    net_outstanding: usize,
    /// Nominal (uncontended) network time — the breakdown's net share is
    /// apportioned against this alongside the per-tier stall nominals.
    net_nominal: SimTime,
}

enum Ev {
    CpuDone(u64),
    /// A failed attempt's backoff expired: re-queue (stage, partition).
    Retry(StageId, usize),
    /// Re-evaluate speculation for a stage (scheduled for the instant a
    /// running task's age crosses the straggler threshold).
    SpecCheck(StageId),
    /// Delay scheduling: a waiting task's locality level relaxes at this
    /// instant — wake the dispatcher to re-evaluate placements.
    LocalityRelax,
}

/// Runs one job's stage plan through the DES. `U` is the per-partition
/// result type of the action.
pub struct JobRunner<'a, U> {
    rt: &'a Runtime,
    mem: &'a mut MemorySystem,
    /// The placement engine: routes each object's traffic (static engines
    /// pass the executor split through untouched) and decides migrations
    /// at epoch boundaries.
    engine: &'a mut PlacementEngine,
    app: &'a mut AppMetrics,
    plan: StagePlan,
    result_fn: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> U + Send + Sync>,
    executors: Vec<ExecState>,
    stage_state: Vec<StageState>,
    ready: VecDeque<(StageId, usize)>,
    queue: EventQueue<Ev>,
    now: SimTime,
    running: HashMap<u64, RunningTask<U>>,
    flow_owner: HashMap<u64, u64>,
    /// In-flight migration copies: flow id → (tier, batch). Migration
    /// flows live in the [`MIGRATION_FLOW_BASE`] namespace, disjoint from
    /// task flows, and are attributed to [`ObjectId::Migration`].
    migration_flows: HashMap<u64, (TierId, AccessBatch)>,
    migration_seq: u64,
    results: Vec<Option<(usize, U)>>,
    next_task: u64,
    rr_exec: usize,
    stages_run: u64,
    job_seq: u64,
    /// Virtual instant the job entered the scheduler (for the profiler's
    /// job record).
    submitted_at: SimTime,
    trace: Option<&'a mut Vec<TaskSpan>>,
    events: &'a mut EventBus,
    rollups: &'a mut Vec<StageRollup>,
    profile: &'a mut ProfileLog,
    /// Fault-injection state shared across the context's jobs: executor
    /// liveness, the crash schedule, cache-block ownership, recovery stats.
    faults: &'a mut FaultState,
    /// The network plane shared across the context's jobs: topology, link
    /// resources, transfer ledger, and cached-block residency. Inert (all
    /// methods no-ops) under the default loopback mode.
    net: &'a mut NetState,
    /// Instants (in ps) with a LocalityRelax wake-up already queued, so a
    /// stalled dispatch round schedules each relax boundary only once.
    relax_scheduled: HashSet<u64>,
    /// Failed attempts per (stage, partition) — the retry budget's counter
    /// and the coordinate that de-correlates each retry's fault rolls.
    attempts: HashMap<(u32, usize), u32>,
    /// Reduce tasks parked on a fetch failure, each awaiting a parent map
    /// stage to become whole again.
    parked: Vec<(StageId, usize, StageId)>,
    /// Map partitions already queued for fetch-failure recompute (avoid
    /// resubmitting the same victim twice).
    resubmit_pending: HashSet<(u32, usize)>,
    /// Speculative clones awaiting a slot: (stage, partition, original).
    spec_ready: VecDeque<(StageId, usize, u64)>,
    /// Partitions already cloned once (Spark speculates each task at most
    /// once at a time; we keep it to once per run for determinism).
    speculated: HashSet<(u32, usize)>,
    /// A structured error that must abort the job (retry exhaustion,
    /// cluster death): checked at the top of the run loop.
    fatal: Option<SparkError>,
    /// Engine self-profiler, cloned from the memory system's handle (shared
    /// collector). Disabled unless the run enabled profiling; wall-clock
    /// only, never consulted by simulation logic.
    prof: EngineProf,
}

impl<'a, U> JobRunner<'a, U> {
    /// Prepare a runner starting at virtual time `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rt: &'a Runtime,
        mem: &'a mut MemorySystem,
        engine: &'a mut PlacementEngine,
        app: &'a mut AppMetrics,
        executors: &[ExecutorSpec],
        plan: StagePlan,
        result_fn: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> U + Send + Sync>,
        start: SimTime,
        job_seq: u64,
        trace: Option<&'a mut Vec<TaskSpan>>,
        events: &'a mut EventBus,
        rollups: &'a mut Vec<StageRollup>,
        profile: &'a mut ProfileLog,
        faults: &'a mut FaultState,
        net: &'a mut NetState,
    ) -> Self {
        let n = plan.stages.len();
        let result_tasks = plan.stages[n - 1].num_tasks;
        let prof = mem.engine_prof().clone();
        let mut queue = EventQueue::new();
        queue.set_prof(prof.clone());
        let mut runner = JobRunner {
            rt,
            mem,
            engine,
            app,
            plan,
            result_fn,
            executors: executors
                .iter()
                .map(|s| ExecState {
                    spec: s.clone(),
                    running: 0,
                })
                .collect(),
            stage_state: Vec::new(),
            ready: VecDeque::new(),
            queue,
            now: start,
            running: HashMap::new(),
            flow_owner: HashMap::new(),
            migration_flows: HashMap::new(),
            migration_seq: 0,
            results: (0..result_tasks).map(|_| None).collect(),
            next_task: 0,
            rr_exec: 0,
            stages_run: 0,
            job_seq,
            submitted_at: start,
            trace,
            events,
            rollups,
            profile,
            faults,
            net,
            relax_scheduled: HashSet::new(),
            attempts: HashMap::new(),
            parked: Vec::new(),
            resubmit_pending: HashSet::new(),
            spec_ready: VecDeque::new(),
            speculated: HashSet::new(),
            fatal: None,
            prof,
        };
        if runner.events.is_active() {
            runner.events.emit(
                runner.now,
                Event::JobSubmitted {
                    job: runner.job_seq,
                    stages: runner.plan.stages.len() as u64,
                },
            );
        }
        runner.init_stages();
        runner
    }

    fn init_stages(&mut self) {
        let n = self.plan.stages.len();
        // A stage is needed iff reachable from the result stage through
        // parents of non-skippable stages.
        let mut needed = vec![false; n];
        let mut stack = vec![n - 1];
        while let Some(i) = stack.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            if !self.plan.stages[i].skippable {
                for p in &self.plan.stages[i].parents {
                    stack.push(p.0 as usize);
                }
            }
        }

        self.stage_state = (0..n)
            .map(|i| StageState {
                remaining: self.plan.stages[i].num_tasks,
                unmet: 0,
                children: Vec::new(),
                done: self.plan.stages[i].skippable || !needed[i],
                submitted: SimTime::ZERO,
                tasks_total: self.plan.stages[i].num_tasks as u64,
                agg: TaskMetrics::default(),
                completed: vec![false; self.plan.stages[i].num_tasks],
                first_completed: false,
                finished_durations: Vec::new(),
            })
            .collect();
        for i in 0..n {
            if self.stage_state[i].done {
                continue;
            }
            let parents: Vec<StageId> = self.plan.stages[i].parents.clone();
            for p in parents {
                let pi = p.0 as usize;
                if !self.stage_state[pi].done {
                    self.stage_state[i].unmet += 1;
                    self.stage_state[pi].children.push(StageId(i as u32));
                }
            }
        }
        for i in 0..n {
            if !self.stage_state[i].done && self.stage_state[i].unmet == 0 {
                self.activate_stage(StageId(i as u32), None);
            }
        }
    }

    /// Make a stage's tasks runnable. `activated_by` is the task whose
    /// completion met the stage's last dependency (`None` when the stage was
    /// runnable at job submission) — the DAG edge the critical-path walk in
    /// [`crate::profile`] follows backwards.
    fn activate_stage(&mut self, id: StageId, activated_by: Option<u64>) {
        let stage = &self.plan.stages[id.0 as usize];
        self.stages_run += 1;
        let num_tasks = stage.num_tasks;
        for part in 0..num_tasks {
            self.ready.push_back((id, part));
        }
        self.stage_state[id.0 as usize].submitted = self.now;
        self.profile.stages.push(StageRecord {
            job: self.job_seq,
            stage: id.0,
            submitted: self.now,
            activated_by,
        });
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::StageSubmitted {
                    job: self.job_seq,
                    stage: id.0,
                    tasks: num_tasks as u64,
                },
            );
        }
    }

    /// Split a task's traffic across its executor's tier placement, giving
    /// rounding remainders to the first (primary) tier.
    fn split_traffic(
        batch: &AccessBatch,
        placement: &[(TierId, f64)],
    ) -> Vec<(TierId, AccessBatch)> {
        if placement.len() == 1 {
            return vec![(placement[0].0, *batch)];
        }
        let mut out = Vec::with_capacity(placement.len());
        let mut assigned = AccessBatch::EMPTY;
        for &(tier, w) in placement.iter().skip(1) {
            let sub = AccessBatch {
                reads: (batch.reads as f64 * w).floor() as u64,
                writes: (batch.writes as f64 * w).floor() as u64,
                bytes_read: (batch.bytes_read as f64 * w).floor() as u64,
                bytes_written: (batch.bytes_written as f64 * w).floor() as u64,
                random_reads: (batch.random_reads as f64 * w).floor() as u64,
                random_writes: (batch.random_writes as f64 * w).floor() as u64,
            };
            assigned += sub;
            out.push((tier, sub));
        }
        let first = AccessBatch {
            reads: batch.reads - assigned.reads,
            writes: batch.writes - assigned.writes,
            bytes_read: batch.bytes_read - assigned.bytes_read,
            bytes_written: batch.bytes_written - assigned.bytes_written,
            random_reads: batch.random_reads - assigned.random_reads,
            random_writes: batch.random_writes - assigned.random_writes,
        };
        out.insert(0, (placement[0].0, first));
        out
    }

    fn dispatch(&mut self) {
        // Delay scheduling only engages on a real multi-node topology: on a
        // single node (or under loopback) every placement is node-local, so
        // the round-robin path below runs unchanged and stays byte-identical
        // to pre-network-plane runs.
        let delay = if self.net.topology().is_some_and(|t| t.nodes > 1) {
            self.net.delay_wait()
        } else {
            None
        };
        loop {
            if self.fatal.is_some() {
                return;
            }
            // Drop work whose partition already completed: speculative
            // clones queued behind an original that finished first, retries
            // obsoleted by a rival attempt.
            while let Some(&(s, p)) = self.ready.front() {
                if self.stage_state[s.0 as usize].completed[p] {
                    self.ready.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&(s, p, _)) = self.spec_ready.front() {
                if self.stage_state[s.0 as usize].completed[p] {
                    self.spec_ready.pop_front();
                } else {
                    break;
                }
            }
            let mut from_spec = self.ready.is_empty();
            if from_spec && self.spec_ready.is_empty() {
                return;
            }
            if let (Some(wait), false) = (delay, from_spec) {
                if self.dispatch_local(wait) {
                    continue;
                }
                if self.spec_ready.is_empty() {
                    return;
                }
                // Every ready task is holding out for a better-placed slot;
                // let a waiting speculative clone use the idle capacity.
                from_spec = true;
            }
            // Rotate over live executors looking for a free slot.
            let n = self.executors.len();
            let mut chosen = None;
            for off in 0..n {
                let i = (self.rr_exec + off) % n;
                if self.faults.alive[i] && self.executors[i].running < self.executors[i].spec.cores
                {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(exec_idx) = chosen else { return };
            self.rr_exec = (exec_idx + 1) % n;
            if from_spec {
                let (stage_id, part, original) =
                    self.spec_ready.pop_front().expect("checked non-empty");
                self.launch_task(stage_id, part, exec_idx, Some(original));
            } else {
                let (stage_id, part) = self.ready.pop_front().expect("checked non-empty");
                self.launch_task(stage_id, part, exec_idx, None);
            }
        }
    }

    /// One locality-aware dispatch round (delay scheduling): scan the ready
    /// queue in order and launch the first task with an admissible
    /// placement. A task with preferred nodes may only take a slot whose
    /// locality level (node-local 0, rack-local 1, remote 2) is within the
    /// level its wait has unlocked — `(now - submitted) / wait` levels, in
    /// integer picoseconds. Tasks with no residency anywhere place exactly
    /// like the round-robin path. Returns true when a task launched; false
    /// when nothing is admissible right now (after queueing a
    /// [`Ev::LocalityRelax`] wake-up for the earliest unlock instant).
    fn dispatch_local(&mut self, wait: SimTime) -> bool {
        let n = self.executors.len();
        let free: Vec<usize> = (0..n)
            .map(|off| (self.rr_exec + off) % n)
            .filter(|&i| {
                self.faults.alive[i] && self.executors[i].running < self.executors[i].spec.cores
            })
            .collect();
        if free.is_empty() {
            return false;
        }
        let topo = self
            .net
            .topology()
            .expect("delay scheduling without a topology")
            .clone();
        let wait_ps = wait.as_ps().max(1);
        let mut relax_at: Option<SimTime> = None;
        let mut chosen: Option<(usize, usize)> = None; // (queue index, executor)
        for (qi, &(stage, part)) in self.ready.iter().enumerate() {
            if self.stage_state[stage.0 as usize].completed[part] {
                continue;
            }
            let prefs = self.preferred_nodes(stage, part);
            if prefs.is_empty() {
                // No residency anywhere: first free slot in rotation order,
                // exactly the executor round-robin would have picked.
                chosen = Some((qi, free[0]));
                break;
            }
            let submitted = self.stage_state[stage.0 as usize].submitted;
            let allowed = ((self.now - submitted).as_ps() / wait_ps).min(2);
            // Best locality among free executors; the first hit in rotation
            // order wins ties, keeping the choice deterministic.
            let (best_exec, best_rank) = free
                .iter()
                .map(|&e| {
                    let node = topo.node_of_executor(e);
                    let rank = prefs
                        .iter()
                        .map(|&p| locality_rank(topo.locality(node, p)))
                        .min()
                        .expect("non-empty preference list");
                    (e, rank)
                })
                .min_by_key(|&(_, rank)| rank)
                .expect("non-empty free list");
            if best_rank <= allowed {
                chosen = Some((qi, best_exec));
                break;
            }
            // Not admissible yet: note when its next level unlocks.
            let next = submitted + SimTime::from_ps(wait_ps.saturating_mul(allowed + 1));
            relax_at = Some(relax_at.map_or(next, |r| r.min(next)));
        }
        match chosen {
            Some((qi, exec_idx)) => {
                let (stage, part) = self.ready.remove(qi).expect("indexed task vanished");
                self.rr_exec = (exec_idx + 1) % n;
                self.launch_task(stage, part, exec_idx, None);
                true
            }
            None => {
                if let Some(at) = relax_at {
                    if self.relax_scheduled.insert(at.as_ps()) {
                        self.queue.schedule(at, Ev::LocalityRelax);
                    }
                }
                false
            }
        }
    }

    /// Preferred topology nodes for (stage, partition), in priority order: a
    /// cached block along the task's narrow lineage (the node of the
    /// executor that produced it), else the map executor contributing the
    /// most shuffle bytes to this reduce, else the datanodes holding the
    /// partition's DFS input blocks. The narrow walk assumes partition
    /// indices line up parent-to-child, which holds for the one-to-one
    /// narrow ops; unions and coalesces only weaken the hint, never
    /// correctness. Empty when the plane is off or nothing is resident.
    fn preferred_nodes(&self, stage: StageId, part: usize) -> Vec<u32> {
        let Some(topo) = self.net.topology() else {
            return Vec::new();
        };
        let mut shuffles: Vec<ShuffleId> = Vec::new();
        let mut replicas: Vec<u32> = Vec::new();
        let mut stack: Vec<Arc<dyn RddBase>> =
            vec![Arc::clone(&self.plan.stages[stage.0 as usize].terminal)];
        let mut seen: HashSet<u32> = HashSet::new();
        while let Some(node) = stack.pop() {
            if !seen.insert(node.id().0) {
                continue;
            }
            if node.storage_level().is_cached() {
                if let Some(&exec) = self.net.block_owner.get(&(node.id().0, part)) {
                    return vec![topo.node_of_executor(exec)];
                }
            }
            for r in node.preferred_replicas(part) {
                replicas.push(topo.node_of_datanode(r));
            }
            for dep in node.deps() {
                match dep {
                    Dep::Narrow(p) => stack.push(p),
                    Dep::Shuffle(d) => shuffles.push(d.shuffle_id),
                }
            }
        }
        let mut best: Option<(u64, usize)> = None;
        for sid in shuffles {
            for (exec, bytes) in self.rt.shuffle.reduce_sources(sid, part) {
                if bytes == 0 {
                    continue;
                }
                let better = match best {
                    Some((bb, be)) => bytes > bb || (bytes == bb && exec < be),
                    None => true,
                };
                if better {
                    best = Some((bytes, exec));
                }
            }
        }
        if let Some((_, exec)) = best {
            return vec![topo.node_of_executor(exec)];
        }
        replicas.sort_unstable();
        replicas.dedup();
        replicas
    }

    /// Dispatch one attempt of (stage, partition) onto a free slot of
    /// `exec_idx`. `spec_of` marks a speculative clone of the given
    /// original task: clones re-run the data plane (idempotently — shuffle
    /// bucket writes overwrite with identical bytes, cache puts replace)
    /// but never roll fault injection, since re-rolling the straggling
    /// original's coordinates would just straggle identically.
    fn launch_task(
        &mut self,
        stage_id: StageId,
        part: usize,
        exec_idx: usize,
        spec_of: Option<u64>,
    ) {
        self.prof.count_event(EventClass::TaskDispatch);
        // Data plane: really compute the partition.
        let cache_before = self
            .events
            .is_active()
            .then(|| self.rt.cache.stats())
            .unwrap_or_default();
        let mut env = TaskEnv::new(self.rt);
        env.net_ctx = self.net.task_ctx(exec_idx);
        let mut result = None;
        match &self.plan.stages[stage_id.0 as usize].kind {
            StageKind::ShuffleMap(dep) => {
                dep.writer.write_partition(part, &mut env);
                self.rt.shuffle.mark_map_done(dep.shuffle_id, part);
                // Residency bookkeeping for the network plane: the latest
                // writer of a map output is where a reduce fetches it from.
                self.rt
                    .shuffle
                    .record_map_exec(dep.shuffle_id, part, exec_idx);
            }
            StageKind::Result => {
                let out = (self.result_fn)(part, &mut env);
                result = Some((part, out));
            }
        }
        let mut metrics = env.metrics;
        let mut object_traffic = env.object_traffic;
        let net_charges = env.net_charges;
        let evicted_blocks = self.rt.cache.take_evictions();
        // Always-on profiler records (like tasks/stages/jobs): the doctor's
        // eviction-churn series must exist inside the byte-identity domain,
        // unlike the opt-in event-bus mirror further down.
        for ev in &evicted_blocks {
            self.profile.evictions.push(EvictionRecord {
                at: self.now,
                rdd: ev.key.0,
                partition: ev.key.1,
                bytes: ev.bytes,
                spilled: ev.spilled,
            });
        }
        // Lineage bookkeeping: remember which executor produced each
        // newly cached block, so a crash can drop exactly its blocks.
        let inserted = self.rt.cache.take_insertions();
        if self.faults.plan.is_some() {
            for (key, _) in &inserted {
                self.faults.block_owner.insert(*key, exec_idx);
            }
        }
        if self.net.active() {
            for (key, _) in &inserted {
                self.net.block_owner.insert(*key, exec_idx);
            }
        }

        // Time plane: dispatch overhead, coordination traffic, JVM
        // contention.
        metrics.cpu_ns += self.rt.cost.task_dispatch_ns;
        let n_exec = self.executors.len() as u64;
        if n_exec > 1 {
            let coord = self.rt.cost.coord_bytes_per_task * (n_exec - 1);
            let coord_batch = AccessBatch::sequential_write(coord);
            metrics.traffic += coord_batch;
            metrics.output_bytes += coord;
            *object_traffic.entry(ObjectId::Scratch).or_default() += coord_batch;
        }
        let co_running = self.executors[exec_idx].running;
        let factor = 1.0 + self.rt.cost.jvm_contention_alpha * co_running as f64;
        let cpu = SimTime::from_ns_f64(metrics.cpu_ns * factor);

        // Fault injection: decide this attempt's fate up front with
        // counter-based rolls, so the outcome depends only on the plan
        // seed and the task's coordinates — never on event-queue order.
        // Speculative clones skip the rolls: re-rolling the straggling
        // original's coordinates would just straggle identically.
        let attempt = self.attempts.get(&(stage_id.0, part)).copied().unwrap_or(0);
        let mut cpu = cpu;
        let mut fail = FailKind::None;
        if spec_of.is_none() {
            if let Some(plan) = self.faults.plan.clone() {
                let job = self.job_seq;
                let sid = stage_id.0;
                if plan.straggler_prob > 0.0
                    && plan.roll(SALT_STRAGGLER, job, sid, part, attempt) < plan.straggler_prob
                {
                    cpu = cpu.mul_f64(plan.straggler_factor);
                }
                if plan.task_failure_prob > 0.0
                    && plan.roll(SALT_TASK_FAIL, job, sid, part, attempt) < plan.task_failure_prob
                {
                    fail = FailKind::Task;
                } else if plan.fetch_failure_prob > 0.0
                    && metrics.shuffle_read_bytes > 0
                    && plan.roll(SALT_FETCH_FAIL, job, sid, part, attempt) < plan.fetch_failure_prob
                {
                    // A fetch failure implicates one map output of a
                    // shuffle parent that actually ran in this plan.
                    // Skippable parents stay in the plan (their stage
                    // entries carry the cached shuffle's metadata) but
                    // never launch tasks, so resubmitting one could never
                    // complete; their outputs are treated as durable.
                    let parent = self.plan.stages[stage_id.0 as usize]
                        .parents
                        .iter()
                        .copied()
                        .find(|p| {
                            let s = &self.plan.stages[p.0 as usize];
                            matches!(s.kind, StageKind::ShuffleMap(_)) && !s.skippable
                        });
                    if let Some(parent) = parent {
                        let maps = self.plan.stages[parent.0 as usize].num_tasks;
                        let victim = ((plan.roll(SALT_FETCH_VICTIM, job, sid, part, attempt)
                            * maps as f64) as usize)
                            .min(maps.saturating_sub(1));
                        fail = FailKind::Fetch { parent, victim };
                    }
                }
            }
        }

        self.executors[exec_idx].running += 1;
        let task_id = self.next_task;
        self.next_task += 1;

        let placement = self.executors[exec_idx].spec.placement.clone();
        let socket = self.executors[exec_idx].spec.socket;
        // Route each object's traffic through the placement engine and
        // split it across the returned tiers, accumulating per-tier
        // aggregates alongside their per-object parts. The parts
        // partition each flow's batch exactly, which is what lets the
        // attribution ledger conserve against the machine counters.
        //
        // Slots are seeded from the executor's static split and grown
        // by first appearance for tiers only the engine routes to. A
        // static engine returns the executor split for every object, so
        // every per-object split lands on the seeded slots in order and
        // the aggregate flows — and therefore all timing — are
        // byte-identical to the pre-engine behaviour of splitting the
        // task total.
        let dynamic = self.engine.is_dynamic();
        let mut per_tier: Vec<(TierId, AccessBatch, Vec<(ObjectId, AccessBatch)>)> = placement
            .iter()
            .map(|&(tier, _)| (tier, AccessBatch::EMPTY, Vec::new()))
            .collect();
        for (&object, obj_batch) in &object_traffic {
            let routed: Vec<(TierId, f64)>;
            let split = if dynamic {
                routed = self
                    .engine
                    .placement_for(object, self.mem.topology(), socket, &placement);
                &routed[..]
            } else {
                &placement[..]
            };
            for (tier, part) in Self::split_traffic(obj_batch, split) {
                if part.is_empty() {
                    continue;
                }
                let slot = match per_tier.iter().position(|(t, _, _)| *t == tier) {
                    Some(i) => i,
                    None => {
                        per_tier.push((tier, AccessBatch::EMPTY, Vec::new()));
                        per_tier.len() - 1
                    }
                };
                per_tier[slot].1 += part;
                per_tier[slot].2.push((object, part));
            }
        }
        debug_assert_eq!(
            per_tier.iter().map(|(_, b, _)| *b).sum::<AccessBatch>(),
            metrics.traffic,
            "per-object splits must partition the task's traffic"
        );
        let flows: Vec<(TierId, u64, AccessBatch, Vec<(ObjectId, AccessBatch)>)> = per_tier
            .into_iter()
            .enumerate()
            .filter(|(_, (_, b, _))| !b.is_empty())
            .map(|(i, (tier, b, parts))| (tier, task_id * 8 + i as u64, b, parts))
            .collect();

        // Any attempt after the first is recovery work: its memory
        // traffic is lineage recompute, tallied per tier so reports can
        // price recovery by where the recomputed bytes landed.
        if attempt > 0 {
            for (tier, _, batch, _) in &flows {
                self.faults.stats.recompute_bytes[tier.index()] += batch.total_bytes();
            }
        }

        // The task's memory demand is presented at its CPU-interleaved
        // *average* rate: each tier's flow drains over (its share of the
        // CPU time) + (its nominal memory time), so a compute-heavy task
        // asks for few bytes/s even on a fast device. Tasks without
        // traffic are pure timers.
        // A task's stalls are serial: misses to different tiers
        // interleave in one instruction stream, so the task's nominal
        // duration is CPU plus the SUM of its per-tier memory times.
        // Every flow spans that full duration (they all belong to the
        // same task and drain together), which keeps mixed placements
        // strictly between the pure tiers.
        let total_mem: SimTime = flows
            .iter()
            .map(|(tier, _, batch, _)| self.mem.nominal_mem_time(*tier, batch))
            .fold(SimTime::ZERO, |acc, t| acc + t);
        // Resolve the data plane's network charges against the topology.
        // Same-node transfers ride the loopback fast path (no link, no
        // time); cross-node ones contribute their nominal (uncontended)
        // time to the task's duration, serial with CPU and memory stalls
        // like everything else in the instruction stream.
        let mut net_plan: Vec<(NetChargeKind, u32, u32, u64)> = Vec::new();
        let mut total_net = SimTime::ZERO;
        if self.net.active() {
            for c in &net_charges {
                let (src, dst) = self.net.resolve(exec_idx, c);
                if src == dst {
                    self.net.note_node_local(c.bytes);
                    continue;
                }
                let topo = self.net.topology().expect("active plane has a topology");
                total_net += topo.nominal_time(src, dst, c.bytes);
                net_plan.push((c.kind, src, dst, c.bytes));
            }
        }
        let duration = cpu + total_mem + total_net;
        let mut outstanding = 0;
        for (tier, flow, batch, _) in &flows {
            // Demand is in channel bytes: random accesses mostly leave
            // the channel idle while they wait on latency.
            let rate = self.mem.channel_demand(batch).max(1.0) / duration.as_secs_f64().max(1e-12);
            if self
                .mem
                .begin_access_with_rate(self.now, *tier, *flow, batch, rate)
            {
                outstanding += 1;
                self.flow_owner.insert(*flow, task_id);
            }
        }

        // Start the task's cross-node transfers. Each is paced to the
        // task's whole span (like memory flows), so its links see the
        // transfer's average demand and concurrent tasks fair-share
        // bandwidth over their overlap.
        let mut transfers: Vec<u64> = Vec::with_capacity(net_plan.len());
        for (kind, src, dst, bytes) in net_plan {
            let rate = bytes as f64 / duration.as_secs_f64().max(1e-12);
            let (id, links, locality) = self.net.begin(
                self.now,
                Some(task_id),
                kind,
                src,
                dst,
                bytes,
                rate,
                attempt > 0,
            );
            if self.events.is_active() {
                let labels: Vec<String> = {
                    let topo = self.net.topology().expect("transfer without a plane");
                    links.iter().map(|&l| topo.link_at(l).label()).collect()
                };
                for link in labels {
                    self.events.emit(
                        self.now,
                        Event::FlowStarted {
                            task_id: Some(task_id),
                            link,
                            bytes,
                            locality: locality.label().to_string(),
                        },
                    );
                }
            }
            transfers.push(id);
        }
        let net_outstanding = transfers.len();

        self.running.insert(
            task_id,
            RunningTask {
                exec: exec_idx,
                stage: stage_id,
                partition: part,
                slot: co_running,
                started: self.now,
                cpu,
                cpu_factor: factor,
                outstanding,
                metrics,
                flows,
                result,
                attempt,
                fail,
                speculative: spec_of.is_some(),
                transfers,
                net_outstanding,
                net_nominal: total_net,
            },
        );
        if spec_of.is_some() {
            self.faults.stats.speculative_launched += 1;
        }
        if self.events.is_active() {
            if let Some(original) = spec_of {
                self.events.emit(
                    self.now,
                    Event::SpeculativeLaunched {
                        task_id,
                        original,
                        job: self.job_seq,
                        stage: stage_id.0,
                        partition: part,
                    },
                );
            }
            self.events.emit(
                self.now,
                Event::TaskStarted {
                    task_id,
                    job: self.job_seq,
                    stage: stage_id.0,
                    partition: part,
                    executor: exec_idx,
                    slot: co_running,
                },
            );
            let cache_after = self.rt.cache.stats();
            let evictions = cache_after.evictions - cache_before.evictions;
            let spills = cache_after.spills - cache_before.spills;
            if evictions > 0 || spills > 0 {
                self.events
                    .emit(self.now, Event::CacheEviction { evictions, spills });
            }
            for ev in &evicted_blocks {
                // Under dynamic placement the freed bytes lived where
                // the engine last placed the RDD's blocks, not on the
                // executor's primary tier.
                let tier = self
                    .engine
                    .residency(ObjectId::CacheBlock { rdd: ev.key.0 })
                    .unwrap_or(placement[0].0);
                self.events.emit(
                    self.now,
                    Event::BlockEvicted {
                        rdd: ev.key.0,
                        partition: ev.key.1,
                        bytes: ev.bytes,
                        spilled: ev.spilled,
                        tier,
                    },
                );
            }
        }
        if outstanding == 0 && net_outstanding == 0 {
            self.queue.schedule(self.now + cpu, Ev::CpuDone(task_id));
        }
    }

    /// Decompose a finished task's span into named components, conserving
    /// it exactly (integer picoseconds).
    ///
    /// The CPU phase splits into shuffle-fetch processing (the fetch/scan
    /// costs [`TaskEnv`](crate::rdd::TaskEnv) charged, inflated by the same
    /// contention factor) and the compute remainder. The memory phase —
    /// everything past the CPU span, i.e. nominal stall time plus the
    /// task's share of bandwidth-contention stretch — is apportioned over
    /// the per-(tier, read/write) nominal stall times, with the integer
    /// rounding remainder absorbed by the largest component.
    fn breakdown_for(&self, task: &RunningTask<U>, end: SimTime) -> TaskBreakdown {
        let span = end - task.started;
        let cpu = task.cpu.min(span);
        let shuffle_fetch =
            SimTime::from_ns_f64(task.metrics.shuffle_fetch_ns * task.cpu_factor).min(cpu);
        let mut b = TaskBreakdown {
            compute: cpu - shuffle_fetch,
            shuffle_fetch,
            ..TaskBreakdown::default()
        };
        let mem_actual = span - cpu;
        if mem_actual.is_zero() {
            return b;
        }
        // (kind, tier index, nominal ps) for every non-zero component:
        // kind 0 = tier read, 1 = tier write, 2 = network. The stall past
        // the CPU span — nominal time plus contention stretch — is
        // apportioned over all three proportionally.
        let mut parts: Vec<(u8, usize, u64)> = Vec::with_capacity(task.flows.len() * 2 + 1);
        for (tier, _, batch, _) in &task.flows {
            let (r, w) = self.mem.nominal_mem_time_rw(*tier, batch);
            if !r.is_zero() {
                parts.push((0, tier.index(), r.as_ps()));
            }
            if !w.is_zero() {
                parts.push((1, tier.index(), w.as_ps()));
            }
        }
        if !task.net_nominal.is_zero() {
            parts.push((2, 0, task.net_nominal.as_ps()));
        }
        let nominal_total: u64 = parts.iter().map(|&(_, _, ps)| ps).sum();
        if nominal_total == 0 {
            // No nominal stall to apportion against (flows were dropped or
            // rounding erased them): keep conservation by folding the
            // residual into compute.
            b.compute += mem_actual;
            return b;
        }
        let mut assigned = 0u64;
        let mut largest = 0usize;
        for (i, &(kind, tier, ps)) in parts.iter().enumerate() {
            // Widen to u128: ps values × mem_actual can exceed u64.
            let share = (ps as u128 * mem_actual.as_ps() as u128 / nominal_total as u128) as u64;
            assigned += share;
            let slot = match kind {
                0 => &mut b.mem_read[tier],
                1 => &mut b.mem_write[tier],
                _ => &mut b.net,
            };
            *slot += SimTime::from_ps(share);
            if ps > parts[largest].2 {
                largest = i;
            }
        }
        let (kind, tier, _) = parts[largest];
        let remainder = SimTime::from_ps(mem_actual.as_ps() - assigned);
        match kind {
            0 => b.mem_read[tier] += remainder,
            1 => b.mem_write[tier] += remainder,
            _ => b.net += remainder,
        }
        debug_assert_eq!(b.total(), span, "task breakdown must conserve its span");
        b
    }

    /// A task's timer (or last memory flow) fired: route it to success or
    /// to the failure it rolled at launch.
    fn complete_task(&mut self, task_id: u64) {
        let task = self.running.remove(&task_id).expect("unknown task");
        self.executors[task.exec].running -= 1;
        match task.fail {
            FailKind::None => self.finish_task(task_id, task),
            _ => self.fail_task(task_id, task),
        }
    }

    fn finish_task(&mut self, task_id: u64, task: RunningTask<U>) {
        let si = task.stage.0 as usize;
        let span = self.now - task.started;
        self.faults.stats.useful_time += span;
        self.resubmit_pending
            .remove(&(task.stage.0, task.partition));
        debug_assert!(
            !self.stage_state[si].completed[task.partition],
            "partition completed twice"
        );
        self.stage_state[si].completed[task.partition] = true;
        self.stage_state[si].finished_durations.push(span);
        // First finisher wins: tear down rival attempts of this partition
        // (speculation losers), in task-id order for determinism.
        let mut rivals: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, t)| t.stage == task.stage && t.partition == task.partition)
            .map(|(&id, _)| id)
            .collect();
        rivals.sort_unstable();
        for id in rivals {
            self.kill_task(id, true);
        }
        if task.speculative {
            self.faults.stats.speculative_won += 1;
            if self.events.is_active() {
                self.events.emit(
                    self.now,
                    Event::SpeculativeWon {
                        task_id,
                        job: self.job_seq,
                        stage: task.stage.0,
                        partition: task.partition,
                    },
                );
            }
        }
        let breakdown = self.breakdown_for(&task, self.now);
        self.profile.tasks.push(TaskRecord {
            task_id,
            job: self.job_seq,
            stage: task.stage.0,
            partition: task.partition,
            started: task.started,
            end: self.now,
            breakdown,
        });
        self.app.record_task(&task.metrics);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TaskSpan {
                task_id,
                job: self.job_seq,
                stage: task.stage.0,
                partition: task.partition,
                executor: task.exec,
                slot: task.slot,
                start: task.started,
                end: self.now,
                kind: if task.speculative {
                    SpanKind::Speculative
                } else {
                    SpanKind::Normal
                },
            });
        }
        if self.events.is_active() {
            let m = &task.metrics;
            if m.shuffle_write_bytes > 0 {
                self.events.emit(
                    self.now,
                    Event::ShuffleWrite {
                        task_id,
                        bytes: m.shuffle_write_bytes,
                    },
                );
            }
            if m.shuffle_read_bytes > 0 {
                self.events.emit(
                    self.now,
                    Event::ShuffleFetch {
                        task_id,
                        bytes: m.shuffle_read_bytes,
                        buckets: m.shuffle_buckets_read,
                    },
                );
            }
            if m.cache_hits + m.cache_misses > 0 {
                self.events.emit(
                    self.now,
                    Event::CacheAccess {
                        task_id,
                        hits: m.cache_hits,
                        misses: m.cache_misses,
                    },
                );
            }
            self.events.emit(
                self.now,
                Event::TaskFinished {
                    task_id,
                    job: self.job_seq,
                    stage: task.stage.0,
                    partition: task.partition,
                    metrics: task.metrics,
                    breakdown,
                },
            );
        }
        if let Some((part, out)) = task.result {
            self.results[part] = Some((part, out));
        }
        self.stage_state[si].agg.merge(&task.metrics);
        self.stage_state[si].remaining -= 1;
        if self.stage_state[si].remaining == 0 {
            self.stage_state[si].done = true;
            if !self.stage_state[si].first_completed {
                self.stage_state[si].first_completed = true;
                let state = &self.stage_state[si];
                self.rollups.push(StageRollup {
                    job: self.job_seq,
                    stage: task.stage.0,
                    tasks: state.tasks_total,
                    submitted: state.submitted,
                    completed: self.now,
                    metrics: state.agg,
                });
                if self.events.is_active() {
                    self.events.emit(
                        self.now,
                        Event::StageCompleted {
                            job: self.job_seq,
                            stage: task.stage.0,
                            tasks: self.stage_state[si].tasks_total,
                        },
                    );
                }
                let children = self.stage_state[si].children.clone();
                for child in children {
                    let ci = child.0 as usize;
                    self.stage_state[ci].unmet -= 1;
                    if self.stage_state[ci].unmet == 0 {
                        self.activate_stage(child, Some(task_id));
                    }
                }
            } else {
                // Re-completion after a fetch-failure resubmission: the
                // children were already activated the first time round, so
                // only the reduce tasks parked on this map output wake up.
                let mut unparked = Vec::new();
                self.parked.retain(|&(s, p, awaiting)| {
                    if awaiting == task.stage {
                        unparked.push((s, p));
                        false
                    } else {
                        true
                    }
                });
                for (s, p) in unparked {
                    self.ready.push_back((s, p));
                }
            }
        }
        self.maybe_speculate(task.stage);
    }

    /// A task reached its completion instant but was fated to fail: charge
    /// its whole span (its memory flows drained for real) as waste, then
    /// retry it — or, on a fetch failure, park it and resubmit the map task
    /// whose output it lost.
    fn fail_task(&mut self, task_id: u64, task: RunningTask<U>) {
        let plan = self
            .faults
            .plan
            .clone()
            .expect("failure injected without a plan");
        self.faults.record_waste(task.started, self.now);
        let reason = match task.fail {
            FailKind::Task => {
                self.faults.stats.task_failures += 1;
                "task"
            }
            FailKind::Fetch { .. } => {
                self.faults.stats.fetch_failures += 1;
                "fetch"
            }
            FailKind::None => unreachable!("finish_task handles successes"),
        };
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TaskSpan {
                task_id,
                job: self.job_seq,
                stage: task.stage.0,
                partition: task.partition,
                executor: task.exec,
                slot: task.slot,
                start: task.started,
                end: self.now,
                kind: SpanKind::Failed,
            });
        }
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::TaskFailed {
                    task_id,
                    job: self.job_seq,
                    stage: task.stage.0,
                    partition: task.partition,
                    attempt: task.attempt,
                    reason: reason.into(),
                },
            );
        }
        let attempts = {
            let e = self
                .attempts
                .entry((task.stage.0, task.partition))
                .or_insert(0);
            *e += 1;
            *e
        };
        if attempts > plan.max_task_retries {
            if self.fatal.is_none() {
                self.fatal = Some(SparkError::TaskRetriesExhausted {
                    job: self.job_seq,
                    stage: task.stage.0,
                    partition: task.partition,
                    attempts,
                });
            }
            return;
        }
        self.faults.stats.retries += 1;
        match task.fail {
            FailKind::Task => {
                self.queue.schedule(
                    self.now + plan.retry_backoff,
                    Ev::Retry(task.stage, task.partition),
                );
            }
            FailKind::Fetch { parent, victim } => {
                // The lost map output must be regenerated before this reduce
                // task can retry: park the reduce on its parent and resubmit
                // the victim map task. Concurrent fetch failures against the
                // same map share one resubmission.
                if let StageKind::ShuffleMap(dep) = &self.plan.stages[parent.0 as usize].kind {
                    self.rt.shuffle.mark_map_lost(dep.shuffle_id, victim);
                }
                self.parked.push((task.stage, task.partition, parent));
                if self.resubmit_pending.insert((parent.0, victim)) {
                    self.faults.stats.stage_resubmissions += 1;
                    let pi = parent.0 as usize;
                    self.stage_state[pi].done = false;
                    self.stage_state[pi].remaining += 1;
                    self.stage_state[pi].completed[victim] = false;
                    self.ready.push_back((parent, victim));
                    if self.events.is_active() {
                        self.events.emit(
                            self.now,
                            Event::StageResubmitted {
                                job: self.job_seq,
                                stage: parent.0,
                                partition: victim,
                            },
                        );
                    }
                }
            }
            FailKind::None => unreachable!("finish_task handles successes"),
        }
    }

    /// Tear down a running attempt without letting it complete: cancel its
    /// in-flight memory flows — the partial traffic served so far is
    /// charged to [`ObjectId::Recovery`] so the attribution ledger keeps
    /// conserving against the machine counters — free the executor slot,
    /// and account the elapsed span as waste. `spec_loser` marks an attempt
    /// killed because a rival copy of the same partition finished first;
    /// otherwise the kill is an executor crash and the attempt reschedules
    /// unless a rival is still running or the partition already completed.
    fn kill_task(&mut self, task_id: u64, spec_loser: bool) {
        let Some(task) = self.running.remove(&task_id) else {
            return;
        };
        self.executors[task.exec].running -= 1;
        for (tier, flow, batch, _) in &task.flows {
            // Flows that already drained were fully charged on completion;
            // cancelling them again would double-count.
            if self.flow_owner.remove(flow).is_none() {
                continue;
            }
            let partial = self.mem.cancel_access_attributed(
                self.now,
                *tier,
                *flow,
                batch,
                ObjectId::Recovery,
            );
            self.faults.stats.cancelled_bytes += partial.total_bytes();
        }
        // Cancelled transfers never credit their links — the conservation
        // invariant counts completed transfers only.
        for &tid in &task.transfers {
            self.net.cancel(self.now, tid);
        }
        self.faults.record_waste(task.started, self.now);
        if spec_loser {
            self.faults.stats.speculative_killed += 1;
        } else {
            self.faults.stats.tasks_killed += 1;
        }
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TaskSpan {
                task_id,
                job: self.job_seq,
                stage: task.stage.0,
                partition: task.partition,
                executor: task.exec,
                slot: task.slot,
                start: task.started,
                end: self.now,
                kind: if spec_loser {
                    SpanKind::SpeculativeKilled
                } else {
                    SpanKind::Failed
                },
            });
        }
        if spec_loser {
            return;
        }
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::TaskFailed {
                    task_id,
                    job: self.job_seq,
                    stage: task.stage.0,
                    partition: task.partition,
                    attempt: task.attempt,
                    reason: "crash".into(),
                },
            );
        }
        // Reschedule the partition unless someone else is still on it.
        let si = task.stage.0 as usize;
        let rival_running = self
            .running
            .values()
            .any(|t| t.stage == task.stage && t.partition == task.partition);
        if rival_running || self.stage_state[si].completed[task.partition] || self.fatal.is_some() {
            return;
        }
        let Some(plan) = self.faults.plan.clone() else {
            return;
        };
        let attempts = {
            let e = self
                .attempts
                .entry((task.stage.0, task.partition))
                .or_insert(0);
            *e += 1;
            *e
        };
        if attempts > plan.max_task_retries {
            self.fatal = Some(SparkError::TaskRetriesExhausted {
                job: self.job_seq,
                stage: task.stage.0,
                partition: task.partition,
                attempts,
            });
        } else {
            self.faults.stats.retries += 1;
            self.queue.schedule(
                self.now + plan.retry_backoff,
                Ev::Retry(task.stage, task.partition),
            );
        }
    }

    /// Fire every executor crash due at or before `at`: mark the executor
    /// dead, kill its running attempts, and drop the cached blocks it
    /// produced — their next read misses and recomputes through lineage.
    fn apply_crashes(&mut self, at: SimTime) {
        let t = at.max(self.now);
        self.now = t;
        self.mem.advance(t);
        for crash in self.faults.pop_crashes_due(t) {
            if !self.faults.alive[crash.executor] {
                continue;
            }
            self.faults.alive[crash.executor] = false;
            self.faults.stats.executor_crashes += 1;
            self.prof.count_event(EventClass::FaultCrash);
            let mut victims: Vec<u64> = self
                .running
                .iter()
                .filter(|(_, task)| task.exec == crash.executor)
                .map(|(&id, _)| id)
                .collect();
            victims.sort_unstable();
            let killed = victims.len() as u64;
            for id in victims {
                self.kill_task(id, false);
            }
            let mut lost: Vec<BlockKey> = self
                .faults
                .block_owner
                .iter()
                .filter(|&(_, &owner)| owner == crash.executor)
                .map(|(&k, _)| k)
                .collect();
            lost.sort_unstable();
            for k in &lost {
                self.faults.block_owner.remove(k);
            }
            let (lost_blocks, lost_bytes) = self.rt.cache.drop_blocks(&lost);
            self.faults.stats.lost_blocks += lost_blocks;
            self.faults.stats.lost_bytes += lost_bytes;
            // The plane's residency map follows the crash: blocks the dead
            // executor produced no longer pin preferred locations there.
            if self.net.active() {
                self.net
                    .block_owner
                    .retain(|_, owner| *owner != crash.executor);
            }
            if self.events.is_active() {
                self.events.emit(
                    self.now,
                    Event::ExecutorLost {
                        executor: crash.executor,
                        killed_tasks: killed,
                        lost_blocks,
                        lost_bytes,
                    },
                );
            }
        }
        if self.faults.live_executors() == 0 && self.fatal.is_none() {
            let pending = self.stage_state.iter().filter(|s| !s.done).count() as u64;
            if pending > 0 {
                self.fatal = Some(SparkError::AllExecutorsLost {
                    job: self.job_seq,
                    stages_pending: pending,
                });
            }
        }
    }

    /// Launch speculative copies of stragglers: once `quantile` of a
    /// stage's tasks have finished, any non-speculated attempt running
    /// longer than `multiplier` × the median finished duration gets a
    /// clone; tasks still under the threshold schedule a re-check for the
    /// instant they would cross it.
    fn maybe_speculate(&mut self, stage: StageId) {
        let Some(spec) = self.faults.plan.as_ref().and_then(|p| p.speculation) else {
            return;
        };
        let si = stage.0 as usize;
        if self.stage_state[si].remaining == 0 {
            return;
        }
        let total = self.stage_state[si].tasks_total as usize;
        let finished = self.stage_state[si].finished_durations.len();
        if (finished as f64) < spec.quantile * total as f64 {
            return;
        }
        let mut durations = self.stage_state[si].finished_durations.clone();
        durations.sort_unstable();
        let median = durations[durations.len() / 2];
        let threshold = median.mul_f64(spec.multiplier);
        let mut clones: Vec<(u64, usize)> = Vec::new();
        let mut recheck: Vec<SimTime> = Vec::new();
        for (&id, t) in &self.running {
            if t.stage != stage
                || t.speculative
                || self.speculated.contains(&(stage.0, t.partition))
            {
                continue;
            }
            if self.now - t.started >= threshold {
                clones.push((id, t.partition));
            } else {
                recheck.push(t.started + threshold);
            }
        }
        clones.sort_unstable();
        recheck.sort_unstable();
        // One reservation for the whole re-check batch; scheduling order
        // (and therefore FIFO sequence numbers) is unchanged.
        self.queue
            .schedule_batch(recheck.into_iter().map(|at| (at, Ev::SpecCheck(stage))));
        for (orig, part) in clones {
            self.speculated.insert((stage.0, part));
            self.spec_ready.push_back((stage, part, orig));
        }
    }

    /// Run the job to completion; returns results in partition order.
    ///
    /// Fails with [`SparkError::Internal`] if the scheduler invariant breaks
    /// and a result partition never completes — a scheduler bug must surface
    /// as an error on the action, not a panic inside the engine.
    pub fn run(mut self) -> Result<JobOutcome<U>> {
        // Scratch buffer for same-instant CPU event batches: reused across
        // iterations so the steady-state loop pops without allocating.
        let mut cpu_batch: Vec<Ev> = Vec::new();
        loop {
            // One guard per iteration: dispatch + preemption checks + the
            // event handler all land in the EventDispatch phase (which
            // therefore contains the nested resource phases).
            let _dispatch = self.prof.phase(ProfPhase::EventDispatch);
            self.dispatch();
            if let Some(e) = self.fatal.take() {
                self.abort();
                return Err(e);
            }
            let queue_next = self.queue.peek_time();
            let mem_next = self.mem.next_completion();
            let net_next = self.net.next_event_time();
            let mem_t = mem_next.map(|(mt, _, _)| mt);
            let next_due = match [queue_next, mem_t, net_next].into_iter().flatten().min() {
                Some(t) => t,
                None => break,
            };
            // A scheduled executor crash preempts any event strictly after
            // it; ties go to the crash so work due at the same instant sees
            // the post-crash world deterministically.
            if let Some(ct) = self.faults.next_crash_at() {
                if ct <= next_due {
                    self.apply_crashes(ct);
                    continue;
                }
            }
            // A placement-epoch boundary preempts only when strictly
            // earlier than every pending event (ties defer to the work),
            // and never outlives the job: with nothing left to run the
            // loop exits above instead of idling through empty epochs.
            if let Some(et) = self.engine.next_epoch() {
                if et < next_due {
                    self.cross_epoch(et);
                    continue;
                }
            }
            // Tie arbitration: CPU events beat memory completions beat
            // network drains, preserving the pre-network-plane order (and
            // byte-identity whenever `net_next` is `None`).
            if queue_next == Some(next_due) {
                self.handle_cpu_events_at(next_due, &mut cpu_batch);
            } else if mem_t == Some(next_due) {
                // The memory completion peeked above is threaded through so
                // the handler never recomputes it — the double water-fill
                // per completion step is gone.
                let (mt, tier, flow) = mem_next.expect("peeked completion vanished");
                self.handle_mem_event(mt, tier, flow);
            } else {
                self.handle_net_event(next_due);
            }
            if let Some(e) = self.fatal.take() {
                self.abort();
                return Err(e);
            }
        }
        if self.stage_state.iter().any(|s| !s.done) {
            let pending = self.stage_state.iter().filter(|s| !s.done).count() as u64;
            self.abort();
            return Err(if self.faults.live_executors() == 0 {
                SparkError::AllExecutorsLost {
                    job: self.job_seq,
                    stages_pending: pending,
                }
            } else {
                SparkError::Internal(format!(
                    "job {}: event queue drained with {pending} stages incomplete",
                    self.job_seq
                ))
            });
        }
        let mut results = Vec::with_capacity(self.results.len());
        for (part, r) in self.results.into_iter().enumerate() {
            match r {
                Some((_, out)) => results.push(out),
                None => {
                    return Err(SparkError::Internal(format!(
                        "job {}: result partition {part} never completed",
                        self.job_seq
                    )))
                }
            }
        }
        self.profile.jobs.push(JobRecord {
            job: self.job_seq,
            submitted: self.submitted_at,
            completed: self.now,
        });
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::JobCompleted {
                    job: self.job_seq,
                    stages_run: self.stages_run,
                    tasks_run: self.next_task,
                },
            );
        }
        Ok(JobOutcome {
            results,
            finished_at: self.now,
            stages_run: self.stages_run,
        })
    }

    /// Drain and handle every CPU event due at `at` in one coalesced heap
    /// drain ([`EventQueue::pop_at`]).
    ///
    /// Byte-identical to the old pop-one-per-iteration loop: between two
    /// same-instant CPU events the main loop's crash check (no crash `<= at`
    /// exists once the first event was chosen — ties go to the crash *before*
    /// any pop), epoch check (none strictly earlier than `at`), and memory
    /// arbitration (a completion due at `at` loses the tie to the CPU event
    /// anyway, and handling CPU work never creates an earlier one) were all
    /// no-ops. Only `dispatch` could act between events — a completion can
    /// free an executor slot — so it is interleaved here exactly where the
    /// loop top would have run it.
    fn handle_cpu_events_at(&mut self, at: SimTime, batch: &mut Vec<Ev>) {
        self.queue.pop_at(at, batch);
        debug_assert!(!batch.is_empty(), "peeked event vanished");
        for (i, ev) in batch.drain(..).enumerate() {
            if i > 0 {
                self.dispatch();
                // A fatal error aborts from the main loop; the rest of the
                // batch is dropped exactly as it would have stayed queued.
                if self.fatal.is_some() {
                    return;
                }
            }
            self.handle_cpu_event(at, ev);
            if self.fatal.is_some() {
                return;
            }
        }
    }

    fn handle_cpu_event(&mut self, t: SimTime, ev: Ev) {
        self.prof.count_event(match &ev {
            Ev::CpuDone(_) => EventClass::CpuTimer,
            Ev::Retry(..) => EventClass::Retry,
            Ev::SpecCheck(_) => EventClass::SpecCheck,
            Ev::LocalityRelax => EventClass::NetRelax,
        });
        // Stale events return WITHOUT advancing the clock: a dropped timer
        // must not stretch the job's elapsed time.
        match ev {
            // Pure-compute task (no memory traffic) finished its timer.
            Ev::CpuDone(task) => {
                if !self.running.contains_key(&task) {
                    return; // task was killed; its timer is moot
                }
                self.now = t;
                self.mem.advance(t);
                self.complete_task(task);
            }
            Ev::Retry(stage, part) => {
                // Stale if a rival attempt already finished — or is still
                // in flight (a speculative clone of the failed original):
                // launching anyway would duplicate the partition, and the
                // first finisher's rival sweep covers the survivor.
                if self.stage_state[stage.0 as usize].completed[part]
                    || self
                        .running
                        .values()
                        .any(|t| t.stage == stage && t.partition == part)
                {
                    return;
                }
                self.now = t;
                self.mem.advance(t);
                self.ready.push_back((stage, part));
            }
            Ev::SpecCheck(stage) => {
                if self.stage_state[stage.0 as usize].remaining == 0 {
                    return; // stage finished before the re-check fired
                }
                self.now = t;
                self.mem.advance(t);
                self.maybe_speculate(stage);
            }
            Ev::LocalityRelax => {
                self.relax_scheduled.remove(&t.as_ps());
                if self.ready.is_empty() {
                    return; // nothing is waiting on locality any more
                }
                // Purely a dispatch wake-up: the loop-top dispatch (or the
                // batch interleave) re-evaluates placements at the new
                // allowance.
                self.now = t;
                self.mem.advance(t);
            }
        }
    }

    /// Tear down every in-flight attempt after a fatal recovery error so
    /// the shared memory system carries no orphan flows into later jobs.
    /// Partial traffic is charged to [`ObjectId::Recovery`], like any
    /// other killed attempt, so the ledger still conserves.
    fn abort(&mut self) {
        let mut ids: Vec<u64> = self.running.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let task = self.running.remove(&id).expect("listed task vanished");
            self.executors[task.exec].running -= 1;
            for (tier, flow, batch, _) in &task.flows {
                if self.flow_owner.remove(flow).is_none() {
                    continue;
                }
                let partial = self.mem.cancel_access_attributed(
                    self.now,
                    *tier,
                    *flow,
                    batch,
                    ObjectId::Recovery,
                );
                self.faults.stats.cancelled_bytes += partial.total_bytes();
            }
            for &tid in &task.transfers {
                self.net.cancel(self.now, tid);
            }
            self.faults.record_waste(task.started, self.now);
            self.faults.stats.tasks_killed += 1;
        }
        // Migration copies share the same MemorySystem: an in-flight one
        // left behind would surface from next_completion() in a later job
        // that knows nothing about it. Cancel them like task flows, with
        // the partial traffic kept on the migration object.
        let mut flows: Vec<u64> = self.migration_flows.keys().copied().collect();
        flows.sort_unstable();
        for flow in flows {
            let (tier, batch) = self
                .migration_flows
                .remove(&flow)
                .expect("listed migration flow vanished");
            self.mem
                .cancel_access_attributed(self.now, tier, flow, &batch, ObjectId::Migration);
        }
    }

    /// Cross one placement-epoch boundary: feed the engine fresh cache
    /// footprints, let the policy rebalance off the live attribution
    /// ledger, and start charging the resulting migration copies.
    fn cross_epoch(&mut self, at: SimTime) {
        self.prof.count_event(EventClass::PlacementEpoch);
        // A boundary scheduled before idle driver time advanced the clock
        // fires "now" — virtual time never runs backwards.
        let t = at.max(self.now);
        self.now = t;
        self.mem.advance(t);
        // Cached RDDs have a real footprint (their blocks' bytes); report
        // it so migrations copy what is actually resident instead of the
        // traffic-derived estimate.
        let cached: Vec<(ObjectId, u64)> = self
            .mem
            .ledger()
            .object_stats()
            .keys()
            .filter_map(|&o| match o {
                ObjectId::CacheBlock { rdd } => Some((o, self.rt.cache.rdd_bytes(rdd))),
                _ => None,
            })
            .collect();
        for (object, bytes) in cached {
            self.engine.set_footprint(object, bytes);
        }
        let migrations = self.engine.rebalance(t, self.mem.ledger());
        for m in migrations {
            self.start_migration(m);
        }
    }

    /// Charge one migration: a read flow on the source tier plus a write
    /// flow on the destination, both attributed to [`ObjectId::Migration`]
    /// when they complete. The copy contends with task flows for channel
    /// bandwidth, so its cost lands on the critical path like any other
    /// traffic. Cached-RDD residency in the block manager follows the move.
    fn start_migration(&mut self, m: Migration) {
        if let ObjectId::CacheBlock { rdd } = m.object {
            self.rt.cache.set_rdd_tier(rdd, m.to);
        }
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::ObjectMigrated {
                    object: m.object,
                    from: m.from,
                    to: m.to,
                    bytes: m.bytes,
                },
            );
        }
        for (tier, batch) in [(m.from, m.read_batch()), (m.to, m.write_batch())] {
            let flow = MIGRATION_FLOW_BASE | self.migration_seq;
            self.migration_seq += 1;
            if self.mem.begin_access(self.now, tier, flow, &batch) {
                self.migration_flows.insert(flow, (tier, batch));
            }
        }
    }

    /// Retire the memory completion the main loop peeked at `(t, tier,
    /// flow)`, then keep draining further completions due at exactly `t`.
    ///
    /// The coalesced drain is byte-identical to returning to the main loop
    /// per completion: a retirement that does not finish a task frees no
    /// executor slot and queues no work, so the loop-top `dispatch` was a
    /// no-op; no crash `<= t` or epoch `< t` can exist once the first
    /// completion at `t` was chosen; and a CPU event due at `t` wins the
    /// tie, so the drain defers to it. The loop stops (a) when a task
    /// completes — a slot frees and `dispatch` has real work — (b) when a
    /// same-instant CPU event must interleave, or (c) when the earliest
    /// remaining completion is later than `t`. Re-querying
    /// [`next_completion`](memtier_memsim::MemorySystem::next_completion)
    /// per retirement is required for correctness (removing a flow re-shares
    /// bandwidth, which can surface new same-instant completions) and cheap
    /// against the rate cache.
    fn handle_mem_event(&mut self, t: SimTime, tier: TierId, flow: u64) {
        self.now = t;
        self.mem.advance(t);
        let (mut tier, mut flow) = (tier, flow);
        loop {
            if let Some((migration_tier, batch)) = self.migration_flows.remove(&flow) {
                self.prof.count_event(EventClass::Migration);
                debug_assert_eq!(migration_tier, tier, "migration flow completed off-tier");
                // The whole batch is the migration's: a one-part partition,
                // so the ledger's conservation against the machine counters
                // stays exact.
                self.mem.finish_access_attributed(
                    t,
                    tier,
                    flow,
                    &batch,
                    &[(ObjectId::Migration, batch)],
                );
            } else {
                self.prof.count_event(EventClass::MemCompletion);
                let task_id = self
                    .flow_owner
                    .remove(&flow)
                    .expect("completion for unowned flow");
                let (batch, parts) = {
                    let task = self.running.get_mut(&task_id).expect("unknown task");
                    task.outstanding -= 1;
                    task.flows
                        .iter()
                        .find(|fl| fl.0 == tier && fl.1 == flow)
                        .map(|fl| (fl.2, fl.3.clone()))
                        .expect("flow not registered on task")
                };
                self.mem
                    .finish_access_attributed(t, tier, flow, &batch, &parts);
                let done = {
                    let task = &self.running[&task_id];
                    task.outstanding == 0 && task.net_outstanding == 0
                };
                if done {
                    self.complete_task(task_id);
                    return;
                }
            }
            match self.mem.next_completion() {
                Some((t2, tier2, flow2))
                    if t2 == t && self.queue.peek_time().is_none_or(|qt| qt > t) =>
                {
                    tier = tier2;
                    flow = flow2;
                }
                _ => return,
            }
        }
    }

    /// Retire one network-plane link drain at `t`. A drain that completes
    /// its whole transfer (the last link of the path) appends the
    /// conservation record, mirrors per-link [`Event::FlowCompleted`]
    /// events, and decrements the owning task's outstanding-transfer count;
    /// the task completes once both its memory flows and its transfers have
    /// drained.
    fn handle_net_event(&mut self, t: SimTime) {
        self.prof.count_event(EventClass::NetCompletion);
        self.now = t;
        self.mem.advance(t);
        let Some(rec) = self.net.step(t) else {
            return; // a link drained without completing its transfer
        };
        let owner = rec.task;
        let bytes = rec.bytes;
        let locality = rec.locality;
        let links = rec.links.clone();
        if self.events.is_active() {
            let labels: Vec<String> = {
                let topo = self.net.topology().expect("net event without a plane");
                links.iter().map(|&l| topo.link_at(l).label()).collect()
            };
            for link in labels {
                self.events.emit(
                    self.now,
                    Event::FlowCompleted {
                        task_id: owner,
                        link,
                        bytes,
                        locality: locality.label().to_string(),
                    },
                );
            }
        }
        if let Some(task_id) = owner {
            if let Some(task) = self.running.get_mut(&task_id) {
                task.net_outstanding -= 1;
                if task.outstanding == 0 && task.net_outstanding == 0 {
                    self.complete_task(task_id);
                }
            }
        }
    }
}

/// Delay scheduling's level ordering: lower is better.
fn locality_rank(l: Locality) -> u64 {
    match l {
        Locality::NodeLocal => 0,
        Locality::RackLocal => 1,
        Locality::Remote => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Runner = JobRunner<'static, ()>;

    fn batch() -> AccessBatch {
        AccessBatch::sequential(1_000_003, 499_999)
            + AccessBatch::random_reads(12_345)
            + AccessBatch::random_writes(6_789)
    }

    #[test]
    fn split_traffic_conserves_every_field() {
        let placement = vec![
            (TierId::LOCAL_DRAM, 0.5),
            (TierId::NVM_NEAR, 0.3),
            (TierId::NVM_FAR, 0.2),
        ];
        let b = batch();
        let parts = Runner::split_traffic(&b, &placement);
        assert_eq!(parts.len(), 3);
        let total: AccessBatch = parts.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, b, "splitting must conserve the batch exactly");
        // Each share is roughly proportional (primary absorbs remainders).
        let near = parts
            .iter()
            .find(|&&(t, _)| t == TierId::NVM_NEAR)
            .expect("NVM_NEAR share missing from split")
            .1;
        let frac = near.total_bytes() as f64 / b.total_bytes() as f64;
        assert!((frac - 0.3).abs() < 0.01, "share off: {frac}");
    }

    #[test]
    fn single_tier_split_is_identity() {
        let b = batch();
        let parts = Runner::split_traffic(&b, &[(TierId::NVM_FAR, 1.0)]);
        assert_eq!(parts, vec![(TierId::NVM_FAR, b)]);
    }

    #[test]
    fn split_traffic_handles_tiny_batches() {
        // Rounding on a 1-access batch must not lose the access.
        let b = AccessBatch::random_reads(1);
        let parts =
            Runner::split_traffic(&b, &[(TierId::LOCAL_DRAM, 0.5), (TierId::NVM_NEAR, 0.5)]);
        let total: AccessBatch = parts.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, b);
    }
}
