//! The discrete-event execution simulation (the time plane).
//!
//! A [`JobRunner`] takes a compiled [`StagePlan`] and plays it out on the
//! executor grid and the simulated [`MemorySystem`]:
//!
//! * each executor is a pool of task slots (cores);
//! * a dispatched task first runs its **data plane** (really computing the
//!   partition, accumulating [`TaskMetrics`]), then occupies its slot for a
//!   modeled CPU phase followed by a memory phase whose traffic drains
//!   through the per-tier fair-share bandwidth resources;
//! * the CPU phase is inflated by intra-executor contention
//!   (`jvm_contention_alpha × co-running tasks`) and every task pays a
//!   dispatch overhead plus cross-executor coordination traffic — the
//!   Takeaway-6 mechanisms.
//!
//! Everything is deterministic: ties in the event queue resolve FIFO, the
//! executor choice rotates round-robin, and no wall-clock value is read.

use crate::error::{Result, SparkError};
use crate::events::{Event, EventBus};
use crate::metrics::{AppMetrics, StageRollup, TaskMetrics};
use crate::profile::{JobRecord, ProfileLog, StageRecord, TaskBreakdown, TaskRecord};
use crate::rdd::TaskEnv;
use crate::runtime::Runtime;
use crate::scheduler::dag::{StageId, StageKind, StagePlan};
use crate::scheduler::executor::ExecutorSpec;
use crate::trace::TaskSpan;
use memtier_des::{EventQueue, SimTime};
use memtier_memsim::{
    AccessBatch, MemorySystem, Migration, ObjectId, PlacementEngine, TierId, MIGRATION_FLOW_BASE,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The outcome of one job.
pub struct JobOutcome<U> {
    /// Per-partition results of the result stage, in partition order.
    pub results: Vec<U>,
    /// Virtual time at which the job finished.
    pub finished_at: SimTime,
    /// Stages that actually executed (excludes skipped ones).
    pub stages_run: u64,
}

struct ExecState {
    spec: ExecutorSpec,
    running: usize,
}

struct StageState {
    remaining: usize,
    unmet: usize,
    children: Vec<StageId>,
    done: bool,
    /// Virtual instant the stage became runnable.
    submitted: SimTime,
    /// Tasks the stage will run (rollup bookkeeping).
    tasks_total: u64,
    /// Running sum of the stage's task metrics.
    agg: TaskMetrics,
}

struct RunningTask<U> {
    exec: usize,
    stage: StageId,
    partition: usize,
    slot: usize,
    started: SimTime,
    /// Modeled CPU span (dispatch overhead + data-plane CPU, inflated by
    /// JVM contention) — the compute part of the task's breakdown.
    cpu: SimTime,
    /// The contention inflation factor applied to `cpu`, kept so the
    /// shuffle-fetch share of the CPU phase inflates consistently.
    cpu_factor: f64,
    outstanding: usize,
    metrics: TaskMetrics,
    /// (tier, flow id, batch, per-object parts of the batch) for each
    /// in-flight memory flow. The parts partition the batch exactly, so the
    /// attribution ledger conserves against the machine counters.
    flows: Vec<(TierId, u64, AccessBatch, Vec<(ObjectId, AccessBatch)>)>,
    /// Result-stage output parked until completion (already computed on the
    /// data plane; stored at completion purely for bookkeeping symmetry).
    result: Option<(usize, U)>,
}

enum Ev {
    CpuDone(u64),
}

/// Runs one job's stage plan through the DES. `U` is the per-partition
/// result type of the action.
pub struct JobRunner<'a, U> {
    rt: &'a Runtime,
    mem: &'a mut MemorySystem,
    /// The placement engine: routes each object's traffic (static engines
    /// pass the executor split through untouched) and decides migrations
    /// at epoch boundaries.
    engine: &'a mut PlacementEngine,
    app: &'a mut AppMetrics,
    plan: StagePlan,
    result_fn: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> U + Send + Sync>,
    executors: Vec<ExecState>,
    stage_state: Vec<StageState>,
    ready: VecDeque<(StageId, usize)>,
    queue: EventQueue<Ev>,
    now: SimTime,
    running: HashMap<u64, RunningTask<U>>,
    flow_owner: HashMap<u64, u64>,
    /// In-flight migration copies: flow id → (tier, batch). Migration
    /// flows live in the [`MIGRATION_FLOW_BASE`] namespace, disjoint from
    /// task flows, and are attributed to [`ObjectId::Migration`].
    migration_flows: HashMap<u64, (TierId, AccessBatch)>,
    migration_seq: u64,
    results: Vec<Option<(usize, U)>>,
    next_task: u64,
    rr_exec: usize,
    stages_run: u64,
    job_seq: u64,
    /// Virtual instant the job entered the scheduler (for the profiler's
    /// job record).
    submitted_at: SimTime,
    trace: Option<&'a mut Vec<TaskSpan>>,
    events: &'a mut EventBus,
    rollups: &'a mut Vec<StageRollup>,
    profile: &'a mut ProfileLog,
}

impl<'a, U> JobRunner<'a, U> {
    /// Prepare a runner starting at virtual time `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rt: &'a Runtime,
        mem: &'a mut MemorySystem,
        engine: &'a mut PlacementEngine,
        app: &'a mut AppMetrics,
        executors: &[ExecutorSpec],
        plan: StagePlan,
        result_fn: Arc<dyn Fn(usize, &mut TaskEnv<'_>) -> U + Send + Sync>,
        start: SimTime,
        job_seq: u64,
        trace: Option<&'a mut Vec<TaskSpan>>,
        events: &'a mut EventBus,
        rollups: &'a mut Vec<StageRollup>,
        profile: &'a mut ProfileLog,
    ) -> Self {
        let n = plan.stages.len();
        let result_tasks = plan.stages[n - 1].num_tasks;
        let mut runner = JobRunner {
            rt,
            mem,
            engine,
            app,
            plan,
            result_fn,
            executors: executors
                .iter()
                .map(|s| ExecState {
                    spec: s.clone(),
                    running: 0,
                })
                .collect(),
            stage_state: Vec::new(),
            ready: VecDeque::new(),
            queue: EventQueue::new(),
            now: start,
            running: HashMap::new(),
            flow_owner: HashMap::new(),
            migration_flows: HashMap::new(),
            migration_seq: 0,
            results: (0..result_tasks).map(|_| None).collect(),
            next_task: 0,
            rr_exec: 0,
            stages_run: 0,
            job_seq,
            submitted_at: start,
            trace,
            events,
            rollups,
            profile,
        };
        if runner.events.is_active() {
            runner.events.emit(
                runner.now,
                Event::JobSubmitted {
                    job: runner.job_seq,
                    stages: runner.plan.stages.len() as u64,
                },
            );
        }
        runner.init_stages();
        runner
    }

    fn init_stages(&mut self) {
        let n = self.plan.stages.len();
        // A stage is needed iff reachable from the result stage through
        // parents of non-skippable stages.
        let mut needed = vec![false; n];
        let mut stack = vec![n - 1];
        while let Some(i) = stack.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            if !self.plan.stages[i].skippable {
                for p in &self.plan.stages[i].parents {
                    stack.push(p.0 as usize);
                }
            }
        }

        self.stage_state = (0..n)
            .map(|i| StageState {
                remaining: self.plan.stages[i].num_tasks,
                unmet: 0,
                children: Vec::new(),
                done: self.plan.stages[i].skippable || !needed[i],
                submitted: SimTime::ZERO,
                tasks_total: self.plan.stages[i].num_tasks as u64,
                agg: TaskMetrics::default(),
            })
            .collect();
        for i in 0..n {
            if self.stage_state[i].done {
                continue;
            }
            let parents: Vec<StageId> = self.plan.stages[i].parents.clone();
            for p in parents {
                let pi = p.0 as usize;
                if !self.stage_state[pi].done {
                    self.stage_state[i].unmet += 1;
                    self.stage_state[pi].children.push(StageId(i as u32));
                }
            }
        }
        for i in 0..n {
            if !self.stage_state[i].done && self.stage_state[i].unmet == 0 {
                self.activate_stage(StageId(i as u32), None);
            }
        }
    }

    /// Make a stage's tasks runnable. `activated_by` is the task whose
    /// completion met the stage's last dependency (`None` when the stage was
    /// runnable at job submission) — the DAG edge the critical-path walk in
    /// [`crate::profile`] follows backwards.
    fn activate_stage(&mut self, id: StageId, activated_by: Option<u64>) {
        let stage = &self.plan.stages[id.0 as usize];
        self.stages_run += 1;
        let num_tasks = stage.num_tasks;
        for part in 0..num_tasks {
            self.ready.push_back((id, part));
        }
        self.stage_state[id.0 as usize].submitted = self.now;
        self.profile.stages.push(StageRecord {
            job: self.job_seq,
            stage: id.0,
            submitted: self.now,
            activated_by,
        });
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::StageSubmitted {
                    job: self.job_seq,
                    stage: id.0,
                    tasks: num_tasks as u64,
                },
            );
        }
    }

    /// Split a task's traffic across its executor's tier placement, giving
    /// rounding remainders to the first (primary) tier.
    fn split_traffic(
        batch: &AccessBatch,
        placement: &[(TierId, f64)],
    ) -> Vec<(TierId, AccessBatch)> {
        if placement.len() == 1 {
            return vec![(placement[0].0, *batch)];
        }
        let mut out = Vec::with_capacity(placement.len());
        let mut assigned = AccessBatch::EMPTY;
        for &(tier, w) in placement.iter().skip(1) {
            let sub = AccessBatch {
                reads: (batch.reads as f64 * w).floor() as u64,
                writes: (batch.writes as f64 * w).floor() as u64,
                bytes_read: (batch.bytes_read as f64 * w).floor() as u64,
                bytes_written: (batch.bytes_written as f64 * w).floor() as u64,
                random_reads: (batch.random_reads as f64 * w).floor() as u64,
                random_writes: (batch.random_writes as f64 * w).floor() as u64,
            };
            assigned += sub;
            out.push((tier, sub));
        }
        let first = AccessBatch {
            reads: batch.reads - assigned.reads,
            writes: batch.writes - assigned.writes,
            bytes_read: batch.bytes_read - assigned.bytes_read,
            bytes_written: batch.bytes_written - assigned.bytes_written,
            random_reads: batch.random_reads - assigned.random_reads,
            random_writes: batch.random_writes - assigned.random_writes,
        };
        out.insert(0, (placement[0].0, first));
        out
    }

    fn dispatch(&mut self) {
        while !self.ready.is_empty() {
            // Rotate over executors looking for a free slot.
            let n = self.executors.len();
            let mut chosen = None;
            for off in 0..n {
                let i = (self.rr_exec + off) % n;
                if self.executors[i].running < self.executors[i].spec.cores {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(exec_idx) = chosen else { break };
            self.rr_exec = (exec_idx + 1) % n;
            let (stage_id, part) = self.ready.pop_front().expect("checked non-empty");

            // Data plane: really compute the partition.
            let cache_before = self
                .events
                .is_active()
                .then(|| self.rt.cache.stats())
                .unwrap_or_default();
            let mut env = TaskEnv::new(self.rt);
            let mut result = None;
            match &self.plan.stages[stage_id.0 as usize].kind {
                StageKind::ShuffleMap(dep) => {
                    dep.writer.write_partition(part, &mut env);
                    self.rt.shuffle.mark_map_done(dep.shuffle_id, part);
                }
                StageKind::Result => {
                    let out = (self.result_fn)(part, &mut env);
                    result = Some((part, out));
                }
            }
            let mut metrics = env.metrics;
            let mut object_traffic = env.object_traffic;
            let evicted_blocks = self.rt.cache.take_evictions();

            // Time plane: dispatch overhead, coordination traffic, JVM
            // contention.
            metrics.cpu_ns += self.rt.cost.task_dispatch_ns;
            let n_exec = self.executors.len() as u64;
            if n_exec > 1 {
                let coord = self.rt.cost.coord_bytes_per_task * (n_exec - 1);
                let coord_batch = AccessBatch::sequential_write(coord);
                metrics.traffic += coord_batch;
                metrics.output_bytes += coord;
                *object_traffic.entry(ObjectId::Scratch).or_default() += coord_batch;
            }
            let co_running = self.executors[exec_idx].running;
            let factor = 1.0 + self.rt.cost.jvm_contention_alpha * co_running as f64;
            let cpu = SimTime::from_ns_f64(metrics.cpu_ns * factor);

            self.executors[exec_idx].running += 1;
            let task_id = self.next_task;
            self.next_task += 1;

            let placement = self.executors[exec_idx].spec.placement.clone();
            let socket = self.executors[exec_idx].spec.socket;
            // Route each object's traffic through the placement engine and
            // split it across the returned tiers, accumulating per-tier
            // aggregates alongside their per-object parts. The parts
            // partition each flow's batch exactly, which is what lets the
            // attribution ledger conserve against the machine counters.
            //
            // Slots are seeded from the executor's static split and grown
            // by first appearance for tiers only the engine routes to. A
            // static engine returns the executor split for every object, so
            // every per-object split lands on the seeded slots in order and
            // the aggregate flows — and therefore all timing — are
            // byte-identical to the pre-engine behaviour of splitting the
            // task total.
            let dynamic = self.engine.is_dynamic();
            let mut per_tier: Vec<(TierId, AccessBatch, Vec<(ObjectId, AccessBatch)>)> = placement
                .iter()
                .map(|&(tier, _)| (tier, AccessBatch::EMPTY, Vec::new()))
                .collect();
            for (&object, obj_batch) in &object_traffic {
                let routed: Vec<(TierId, f64)>;
                let split = if dynamic {
                    routed =
                        self.engine
                            .placement_for(object, self.mem.topology(), socket, &placement);
                    &routed[..]
                } else {
                    &placement[..]
                };
                for (tier, part) in Self::split_traffic(obj_batch, split) {
                    if part.is_empty() {
                        continue;
                    }
                    let slot = match per_tier.iter().position(|(t, _, _)| *t == tier) {
                        Some(i) => i,
                        None => {
                            per_tier.push((tier, AccessBatch::EMPTY, Vec::new()));
                            per_tier.len() - 1
                        }
                    };
                    per_tier[slot].1 += part;
                    per_tier[slot].2.push((object, part));
                }
            }
            debug_assert_eq!(
                per_tier.iter().map(|(_, b, _)| *b).sum::<AccessBatch>(),
                metrics.traffic,
                "per-object splits must partition the task's traffic"
            );
            let flows: Vec<(TierId, u64, AccessBatch, Vec<(ObjectId, AccessBatch)>)> = per_tier
                .into_iter()
                .enumerate()
                .filter(|(_, (_, b, _))| !b.is_empty())
                .map(|(i, (tier, b, parts))| (tier, task_id * 8 + i as u64, b, parts))
                .collect();

            // The task's memory demand is presented at its CPU-interleaved
            // *average* rate: each tier's flow drains over (its share of the
            // CPU time) + (its nominal memory time), so a compute-heavy task
            // asks for few bytes/s even on a fast device. Tasks without
            // traffic are pure timers.
            // A task's stalls are serial: misses to different tiers
            // interleave in one instruction stream, so the task's nominal
            // duration is CPU plus the SUM of its per-tier memory times.
            // Every flow spans that full duration (they all belong to the
            // same task and drain together), which keeps mixed placements
            // strictly between the pure tiers.
            let total_mem: SimTime = flows
                .iter()
                .map(|(tier, _, batch, _)| self.mem.nominal_mem_time(*tier, batch))
                .fold(SimTime::ZERO, |acc, t| acc + t);
            let duration = cpu + total_mem;
            let mut outstanding = 0;
            for (tier, flow, batch, _) in &flows {
                // Demand is in channel bytes: random accesses mostly leave
                // the channel idle while they wait on latency.
                let rate =
                    self.mem.channel_demand(batch).max(1.0) / duration.as_secs_f64().max(1e-12);
                if self
                    .mem
                    .begin_access_with_rate(self.now, *tier, *flow, batch, rate)
                {
                    outstanding += 1;
                    self.flow_owner.insert(*flow, task_id);
                }
            }

            self.running.insert(
                task_id,
                RunningTask {
                    exec: exec_idx,
                    stage: stage_id,
                    partition: part,
                    slot: co_running,
                    started: self.now,
                    cpu,
                    cpu_factor: factor,
                    outstanding,
                    metrics,
                    flows,
                    result,
                },
            );
            if self.events.is_active() {
                self.events.emit(
                    self.now,
                    Event::TaskStarted {
                        task_id,
                        job: self.job_seq,
                        stage: stage_id.0,
                        partition: part,
                        executor: exec_idx,
                        slot: co_running,
                    },
                );
                let cache_after = self.rt.cache.stats();
                let evictions = cache_after.evictions - cache_before.evictions;
                let spills = cache_after.spills - cache_before.spills;
                if evictions > 0 || spills > 0 {
                    self.events
                        .emit(self.now, Event::CacheEviction { evictions, spills });
                }
                for ev in &evicted_blocks {
                    // Under dynamic placement the freed bytes lived where
                    // the engine last placed the RDD's blocks, not on the
                    // executor's primary tier.
                    let tier = self
                        .engine
                        .residency(ObjectId::CacheBlock { rdd: ev.key.0 })
                        .unwrap_or(placement[0].0);
                    self.events.emit(
                        self.now,
                        Event::BlockEvicted {
                            rdd: ev.key.0,
                            partition: ev.key.1,
                            bytes: ev.bytes,
                            spilled: ev.spilled,
                            tier,
                        },
                    );
                }
            }
            if outstanding == 0 {
                self.queue.schedule(self.now + cpu, Ev::CpuDone(task_id));
            }
        }
    }

    /// Decompose a finished task's span into named components, conserving
    /// it exactly (integer picoseconds).
    ///
    /// The CPU phase splits into shuffle-fetch processing (the fetch/scan
    /// costs [`TaskEnv`](crate::rdd::TaskEnv) charged, inflated by the same
    /// contention factor) and the compute remainder. The memory phase —
    /// everything past the CPU span, i.e. nominal stall time plus the
    /// task's share of bandwidth-contention stretch — is apportioned over
    /// the per-(tier, read/write) nominal stall times, with the integer
    /// rounding remainder absorbed by the largest component.
    fn breakdown_for(&self, task: &RunningTask<U>, end: SimTime) -> TaskBreakdown {
        let span = end - task.started;
        let cpu = task.cpu.min(span);
        let shuffle_fetch =
            SimTime::from_ns_f64(task.metrics.shuffle_fetch_ns * task.cpu_factor).min(cpu);
        let mut b = TaskBreakdown {
            compute: cpu - shuffle_fetch,
            shuffle_fetch,
            ..TaskBreakdown::default()
        };
        let mem_actual = span - cpu;
        if mem_actual.is_zero() {
            return b;
        }
        // (tier index, is_write, nominal ps) for every non-zero component.
        let mut parts: Vec<(usize, bool, u64)> = Vec::with_capacity(task.flows.len() * 2);
        for (tier, _, batch, _) in &task.flows {
            let (r, w) = self.mem.nominal_mem_time_rw(*tier, batch);
            if !r.is_zero() {
                parts.push((tier.index(), false, r.as_ps()));
            }
            if !w.is_zero() {
                parts.push((tier.index(), true, w.as_ps()));
            }
        }
        let nominal_total: u64 = parts.iter().map(|&(_, _, ps)| ps).sum();
        if nominal_total == 0 {
            // No nominal stall to apportion against (flows were dropped or
            // rounding erased them): keep conservation by folding the
            // residual into compute.
            b.compute += mem_actual;
            return b;
        }
        let mut assigned = 0u64;
        let mut largest = 0usize;
        for (i, &(tier, is_write, ps)) in parts.iter().enumerate() {
            // Widen to u128: ps values × mem_actual can exceed u64.
            let share = (ps as u128 * mem_actual.as_ps() as u128 / nominal_total as u128) as u64;
            assigned += share;
            let slot = if is_write {
                &mut b.mem_write[tier]
            } else {
                &mut b.mem_read[tier]
            };
            *slot += SimTime::from_ps(share);
            if ps > parts[largest].2 {
                largest = i;
            }
        }
        let (tier, is_write, _) = parts[largest];
        let remainder = SimTime::from_ps(mem_actual.as_ps() - assigned);
        if is_write {
            b.mem_write[tier] += remainder;
        } else {
            b.mem_read[tier] += remainder;
        }
        debug_assert_eq!(b.total(), span, "task breakdown must conserve its span");
        b
    }

    fn complete_task(&mut self, task_id: u64) {
        let task = self.running.remove(&task_id).expect("unknown task");
        self.executors[task.exec].running -= 1;
        let breakdown = self.breakdown_for(&task, self.now);
        self.profile.tasks.push(TaskRecord {
            task_id,
            job: self.job_seq,
            stage: task.stage.0,
            partition: task.partition,
            started: task.started,
            end: self.now,
            breakdown,
        });
        self.app.record_task(&task.metrics);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TaskSpan {
                task_id,
                job: self.job_seq,
                stage: task.stage.0,
                partition: task.partition,
                executor: task.exec,
                slot: task.slot,
                start: task.started,
                end: self.now,
            });
        }
        if self.events.is_active() {
            let m = &task.metrics;
            if m.shuffle_write_bytes > 0 {
                self.events.emit(
                    self.now,
                    Event::ShuffleWrite {
                        task_id,
                        bytes: m.shuffle_write_bytes,
                    },
                );
            }
            if m.shuffle_read_bytes > 0 {
                self.events.emit(
                    self.now,
                    Event::ShuffleFetch {
                        task_id,
                        bytes: m.shuffle_read_bytes,
                        buckets: m.shuffle_buckets_read,
                    },
                );
            }
            if m.cache_hits + m.cache_misses > 0 {
                self.events.emit(
                    self.now,
                    Event::CacheAccess {
                        task_id,
                        hits: m.cache_hits,
                        misses: m.cache_misses,
                    },
                );
            }
            self.events.emit(
                self.now,
                Event::TaskFinished {
                    task_id,
                    job: self.job_seq,
                    stage: task.stage.0,
                    partition: task.partition,
                    metrics: task.metrics,
                    breakdown,
                },
            );
        }
        if let Some((part, out)) = task.result {
            self.results[part] = Some((part, out));
        }
        let si = task.stage.0 as usize;
        self.stage_state[si].agg.merge(&task.metrics);
        self.stage_state[si].remaining -= 1;
        if self.stage_state[si].remaining == 0 {
            self.stage_state[si].done = true;
            let state = &self.stage_state[si];
            self.rollups.push(StageRollup {
                job: self.job_seq,
                stage: task.stage.0,
                tasks: state.tasks_total,
                submitted: state.submitted,
                completed: self.now,
                metrics: state.agg,
            });
            if self.events.is_active() {
                self.events.emit(
                    self.now,
                    Event::StageCompleted {
                        job: self.job_seq,
                        stage: task.stage.0,
                        tasks: self.stage_state[si].tasks_total,
                    },
                );
            }
            let children = self.stage_state[si].children.clone();
            for child in children {
                let ci = child.0 as usize;
                self.stage_state[ci].unmet -= 1;
                if self.stage_state[ci].unmet == 0 {
                    self.activate_stage(child, Some(task_id));
                }
            }
        }
    }

    /// Run the job to completion; returns results in partition order.
    ///
    /// Fails with [`SparkError::Internal`] if the scheduler invariant breaks
    /// and a result partition never completes — a scheduler bug must surface
    /// as an error on the action, not a panic inside the engine.
    pub fn run(mut self) -> Result<JobOutcome<U>> {
        loop {
            self.dispatch();
            let queue_next = self.queue.peek_time();
            let mem_next = self.mem.next_completion();
            let next_due = match (queue_next, mem_next) {
                (None, None) => break,
                (Some(qt), Some((mt, _, _))) => qt.min(mt),
                (Some(qt), None) => qt,
                (None, Some((mt, _, _))) => mt,
            };
            // A placement-epoch boundary preempts only when strictly
            // earlier than every pending event (ties defer to the work),
            // and never outlives the job: with nothing left to run the
            // loop exits above instead of idling through empty epochs.
            if let Some(et) = self.engine.next_epoch() {
                if et < next_due {
                    self.cross_epoch(et);
                    continue;
                }
            }
            match (queue_next, mem_next) {
                (Some(qt), Some((mt, _, _))) if qt <= mt => self.handle_cpu_event(),
                (Some(_), None) => self.handle_cpu_event(),
                (None, Some(_)) | (Some(_), Some(_)) => self.handle_mem_event(),
                (None, None) => unreachable!("loop breaks before the epoch check"),
            }
        }
        debug_assert!(
            self.stage_state.iter().all(|s| s.done),
            "job ended with unfinished stages"
        );
        let mut results = Vec::with_capacity(self.results.len());
        for (part, r) in self.results.into_iter().enumerate() {
            match r {
                Some((_, out)) => results.push(out),
                None => {
                    return Err(SparkError::Internal(format!(
                        "job {}: result partition {part} never completed",
                        self.job_seq
                    )))
                }
            }
        }
        self.profile.jobs.push(JobRecord {
            job: self.job_seq,
            submitted: self.submitted_at,
            completed: self.now,
        });
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::JobCompleted {
                    job: self.job_seq,
                    stages_run: self.stages_run,
                    tasks_run: self.next_task,
                },
            );
        }
        Ok(JobOutcome {
            results,
            finished_at: self.now,
            stages_run: self.stages_run,
        })
    }

    fn handle_cpu_event(&mut self) {
        let (t, ev) = self.queue.pop().expect("peeked event vanished");
        self.now = t;
        self.mem.advance(t);
        match ev {
            // Pure-compute task (no memory traffic) finished its timer.
            Ev::CpuDone(task) => self.complete_task(task),
        }
    }

    /// Cross one placement-epoch boundary: feed the engine fresh cache
    /// footprints, let the policy rebalance off the live attribution
    /// ledger, and start charging the resulting migration copies.
    fn cross_epoch(&mut self, at: SimTime) {
        // A boundary scheduled before idle driver time advanced the clock
        // fires "now" — virtual time never runs backwards.
        let t = at.max(self.now);
        self.now = t;
        self.mem.advance(t);
        // Cached RDDs have a real footprint (their blocks' bytes); report
        // it so migrations copy what is actually resident instead of the
        // traffic-derived estimate.
        let cached: Vec<(ObjectId, u64)> = self
            .mem
            .ledger()
            .object_stats()
            .keys()
            .filter_map(|&o| match o {
                ObjectId::CacheBlock { rdd } => Some((o, self.rt.cache.rdd_bytes(rdd))),
                _ => None,
            })
            .collect();
        for (object, bytes) in cached {
            self.engine.set_footprint(object, bytes);
        }
        let migrations = self.engine.rebalance(t, self.mem.ledger());
        for m in migrations {
            self.start_migration(m);
        }
    }

    /// Charge one migration: a read flow on the source tier plus a write
    /// flow on the destination, both attributed to [`ObjectId::Migration`]
    /// when they complete. The copy contends with task flows for channel
    /// bandwidth, so its cost lands on the critical path like any other
    /// traffic. Cached-RDD residency in the block manager follows the move.
    fn start_migration(&mut self, m: Migration) {
        if let ObjectId::CacheBlock { rdd } = m.object {
            self.rt.cache.set_rdd_tier(rdd, m.to);
        }
        if self.events.is_active() {
            self.events.emit(
                self.now,
                Event::ObjectMigrated {
                    object: m.object,
                    from: m.from,
                    to: m.to,
                    bytes: m.bytes,
                },
            );
        }
        for (tier, batch) in [(m.from, m.read_batch()), (m.to, m.write_batch())] {
            let flow = MIGRATION_FLOW_BASE | self.migration_seq;
            self.migration_seq += 1;
            if self.mem.begin_access(self.now, tier, flow, &batch) {
                self.migration_flows.insert(flow, (tier, batch));
            }
        }
    }

    fn handle_mem_event(&mut self) {
        let (t, tier, flow) = self.mem.next_completion().expect("peeked flow vanished");
        self.now = t;
        self.mem.advance(t);
        if let Some((migration_tier, batch)) = self.migration_flows.remove(&flow) {
            debug_assert_eq!(migration_tier, tier, "migration flow completed off-tier");
            // The whole batch is the migration's: a one-part partition, so
            // the ledger's conservation against the machine counters stays
            // exact.
            self.mem.finish_access_attributed(
                t,
                tier,
                flow,
                &batch,
                &[(ObjectId::Migration, batch)],
            );
            return;
        }
        let task_id = self
            .flow_owner
            .remove(&flow)
            .expect("completion for unowned flow");
        let (batch, parts) = {
            let task = self.running.get_mut(&task_id).expect("unknown task");
            task.outstanding -= 1;
            task.flows
                .iter()
                .find(|fl| fl.0 == tier && fl.1 == flow)
                .map(|fl| (fl.2, fl.3.clone()))
                .expect("flow not registered on task")
        };
        self.mem
            .finish_access_attributed(t, tier, flow, &batch, &parts);
        if self.running[&task_id].outstanding == 0 {
            self.complete_task(task_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Runner = JobRunner<'static, ()>;

    fn batch() -> AccessBatch {
        AccessBatch::sequential(1_000_003, 499_999)
            + AccessBatch::random_reads(12_345)
            + AccessBatch::random_writes(6_789)
    }

    #[test]
    fn split_traffic_conserves_every_field() {
        let placement = vec![
            (TierId::LOCAL_DRAM, 0.5),
            (TierId::NVM_NEAR, 0.3),
            (TierId::NVM_FAR, 0.2),
        ];
        let b = batch();
        let parts = Runner::split_traffic(&b, &placement);
        assert_eq!(parts.len(), 3);
        let total: AccessBatch = parts.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, b, "splitting must conserve the batch exactly");
        // Each share is roughly proportional (primary absorbs remainders).
        let near = parts
            .iter()
            .find(|&&(t, _)| t == TierId::NVM_NEAR)
            .expect("NVM_NEAR share missing from split")
            .1;
        let frac = near.total_bytes() as f64 / b.total_bytes() as f64;
        assert!((frac - 0.3).abs() < 0.01, "share off: {frac}");
    }

    #[test]
    fn single_tier_split_is_identity() {
        let b = batch();
        let parts = Runner::split_traffic(&b, &[(TierId::NVM_FAR, 1.0)]);
        assert_eq!(parts, vec![(TierId::NVM_FAR, b)]);
    }

    #[test]
    fn split_traffic_handles_tiny_batches() {
        // Rounding on a 1-access batch must not lose the access.
        let b = AccessBatch::random_reads(1);
        let parts =
            Runner::split_traffic(&b, &[(TierId::LOCAL_DRAM, 0.5), (TierId::NVM_NEAR, 0.5)]);
        let total: AccessBatch = parts.iter().map(|&(_, p)| p).sum();
        assert_eq!(total, b);
    }
}
