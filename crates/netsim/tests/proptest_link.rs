//! Property tests for the network plane: a shared link never serves above
//! its bandwidth, and fair sharing never beats a naive per-flow reference
//! that pretends every transfer has the link to itself.

use memtier_des::SimTime;
use memtier_netsim::{NetTopology, NetworkPlane};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A plane whose only contended resource is the node0:up link: every
/// transfer goes node 0 → node 1 inside one rack.
fn one_link_plane(node_bw: f64) -> NetworkPlane {
    let mut t = NetTopology::new(2, 1);
    t.node_bw = node_bw;
    t.latency_us = 0.0;
    NetworkPlane::new(t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At every event instant the aggregate allocation on a shared link
    /// stays within its bandwidth, and each transfer completes no earlier
    /// than the naive per-flow reference `bytes / min(rate, bandwidth)`
    /// (the lower bound a transfer alone on the link would achieve).
    #[test]
    fn concurrent_flows_never_exceed_link_bandwidth(
        node_bw in 1.0e3f64..1.0e6,
        specs in prop::collection::vec((1u64..1_000_000, 1.0f64..1.0e6), 1..24),
    ) {
        let mut p = one_link_plane(node_bw);
        let up = p.topology().link_index(memtier_netsim::LinkId::NodeUp(0));
        let mut naive: BTreeMap<u64, f64> = BTreeMap::new();
        for (i, &(bytes, rate)) in specs.iter().enumerate() {
            let id = i as u64;
            p.begin_transfer(SimTime::ZERO, id, 0, 1, bytes, rate);
            naive.insert(id, bytes as f64 / rate.min(node_bw));
        }
        let total_bytes: u64 = specs.iter().map(|&(b, _)| b).sum();

        let mut done = 0usize;
        let mut last = SimTime::ZERO;
        while let Some(t) = p.next_event_time() {
            // The memoized allocation on the contended link respects the
            // bandwidth at every piecewise-constant segment.
            let agg: f64 = p.link_rates(up).iter().map(|&(_, r)| r).sum();
            prop_assert!(
                agg <= node_bw * (1.0 + 1e-9),
                "aggregate {agg} exceeds bandwidth {node_bw}"
            );
            prop_assert!(t >= last, "event times must be monotone");
            last = t;
            if let Some(d) = p.step(t) {
                done += 1;
                // Differential vs the naive reference: sharing never makes
                // a transfer finish before it would alone.
                let floor = naive[&d.id];
                prop_assert!(
                    d.at.as_secs_f64() >= floor * (1.0 - 1e-9),
                    "transfer {} finished at {}s, below its alone-time {floor}s",
                    d.id,
                    d.at.as_secs_f64()
                );
            }
        }
        prop_assert_eq!(done, specs.len());
        // Completion credits the whole transfer to both path links, exactly.
        prop_assert_eq!(p.link_bytes()[up], total_bytes);
        prop_assert_eq!(p.link_bytes().iter().sum::<u64>(), 2 * total_bytes);
        prop_assert_eq!(p.in_flight(), 0);
    }

    /// Cancelling a random subset mid-drain: completed transfers conserve,
    /// cancelled ones contribute nothing, and the plane fully drains.
    #[test]
    fn cancellation_keeps_counters_conserved(
        node_bw in 1.0e3f64..1.0e5,
        specs in prop::collection::vec((1u64..100_000, 1.0f64..1.0e5, any::<bool>()), 1..16),
    ) {
        let mut p = one_link_plane(node_bw);
        let up = p.topology().link_index(memtier_netsim::LinkId::NodeUp(0));
        for (i, &(bytes, rate, _)) in specs.iter().enumerate() {
            p.begin_transfer(SimTime::ZERO, i as u64, 0, 1, bytes, rate);
        }
        // Cancel the marked subset at the first event instant.
        let at = p.next_event_time().unwrap();
        p.advance(at);
        let mut cancelled_bytes = 0u64;
        let mut cancelled = 0u64;
        for (i, &(bytes, _, cancel)) in specs.iter().enumerate() {
            if cancel {
                p.cancel_transfer(at, i as u64);
                cancelled_bytes += bytes;
                cancelled += 1;
            }
        }
        let mut completed_bytes = 0u64;
        while let Some(t) = p.next_event_time() {
            if let Some(d) = p.step(t) {
                completed_bytes += d.bytes;
            }
        }
        prop_assert_eq!(p.link_bytes()[up], completed_bytes);
        prop_assert_eq!(p.cancelled(), (cancelled, cancelled_bytes));
        let total: u64 = specs.iter().map(|&(b, _, _)| b).sum();
        prop_assert_eq!(completed_bytes + cancelled_bytes, total);
    }
}
