//! # memtier-netsim — simulated network plane
//!
//! A deterministic node/rack cluster network for the `spark-memtier` stack:
//!
//! * [`NetTopology`] — nodes grouped contiguously into racks; every node
//!   owns a full-duplex link into its rack switch and every rack a
//!   full-duplex uplink into the core, shrunk by an oversubscription
//!   factor. Same-node transfers take a loopback fast path and cost
//!   nothing.
//! * [`NetworkPlane`] — every cross-node transfer becomes one flow per
//!   path link, each link a max–min fair [`memtier_des::SharedResource`]
//!   (the memoized water-fill kernel memory channels use). A transfer
//!   completes when its bottleneck link drains; at that instant — and only
//!   then — the whole transfer is credited to every path link's exact
//!   integer byte counter, which is what the scheduler-side conservation
//!   invariant re-sums against.
//! * [`NetworkMode`] / [`LocalityMode`] — the `SparkConf` surface: loopback
//!   (the byte-identity baseline, no plane at all) or a topology with
//!   locality-blind or delay-scheduling task placement.
//!
//! The crate is engine-agnostic: it maps executors/datanodes/driver to
//! nodes but knows nothing about tasks, stages, or tiers. See
//! `sparklite::net` for the scheduler-side bookkeeping.

#![warn(missing_docs)]

pub mod plane;
pub mod topology;

pub use plane::{NetworkPlane, TransferDone};
pub use topology::{
    LinkId, Locality, LocalityMode, NetTopology, NetworkMode, DEFAULT_LATENCY_US, DEFAULT_NODE_BW,
};
