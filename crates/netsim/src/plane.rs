//! The flow plane: one max–min fair [`SharedResource`] per link.
//!
//! A *transfer* is one logical `src → dst` movement of `bytes`. It becomes
//! one flow on every link of its path (same flow id, same byte demand, same
//! nominal rate). Each link drains its copy independently under fair
//! sharing; the transfer completes when its **last** link drains — the
//! bottleneck decides. At that single completion instant every path link's
//! integer byte counter is credited with the whole transfer, which is what
//! the conservation invariant re-sums against: cancelled transfers credit
//! nothing.

use crate::topology::NetTopology;
use memtier_des::{ContentionModel, SharedResource, SimTime};
use std::collections::BTreeMap;

/// An in-flight transfer's bookkeeping.
#[derive(Debug, Clone)]
struct Transfer {
    src: u32,
    dst: u32,
    bytes: u64,
    /// Dense link indices of the full path (credited on completion).
    path: Vec<usize>,
    /// Path links whose flow copy has not drained yet.
    active: Vec<usize>,
}

/// A completed transfer, reported from [`NetworkPlane::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferDone {
    /// The caller-assigned transfer id.
    pub id: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Whole-transfer size in bytes.
    pub bytes: u64,
    /// Completion instant.
    pub at: SimTime,
    /// Dense link indices of the path, in hop order.
    pub links: Vec<usize>,
}

/// The simulated network: per-link fair-shared capacity plus exact integer
/// traffic counters.
#[derive(Debug, Clone)]
pub struct NetworkPlane {
    topo: NetTopology,
    /// One resource per dense link index; `ContentionModel::None` — links
    /// degrade only by sharing capacity, not by flow count.
    links: Vec<SharedResource>,
    transfers: BTreeMap<u64, Transfer>,
    /// Whole-transfer bytes credited to each path link at completion.
    link_bytes: Vec<u64>,
    /// Transfers cancelled before completion (task kills, aborts).
    cancelled: u64,
    /// Bytes of cancelled transfers (never credited to `link_bytes`).
    cancelled_bytes: u64,
}

impl NetworkPlane {
    /// A plane over a validated topology.
    ///
    /// # Panics
    /// Panics if the topology fails [`NetTopology::validate`].
    pub fn new(topo: NetTopology) -> Self {
        if let Err(e) = topo.validate() {
            panic!("invalid network topology: {e}");
        }
        let links = (0..topo.num_links())
            .map(|i| {
                SharedResource::new(topo.link_capacity(topo.link_at(i)), ContentionModel::None)
            })
            .collect();
        let link_bytes = vec![0; topo.num_links()];
        NetworkPlane {
            topo,
            links,
            transfers: BTreeMap::new(),
            link_bytes,
            cancelled: 0,
            cancelled_bytes: 0,
        }
    }

    /// The topology this plane simulates.
    pub fn topology(&self) -> &NetTopology {
        &self.topo
    }

    /// Start a transfer of `bytes` from `src` to `dst` at `now`, pacing
    /// every link flow at `rate` bytes/s when uncontended.
    ///
    /// # Panics
    /// Panics on a loopback pair (`src == dst` takes the fast path and must
    /// not reach the plane), a duplicate transfer id, or a non-positive rate.
    pub fn begin_transfer(
        &mut self,
        now: SimTime,
        id: u64,
        src: u32,
        dst: u32,
        bytes: u64,
        rate: f64,
    ) {
        let path: Vec<usize> = self
            .topo
            .path(src, dst)
            .into_iter()
            .map(|l| self.topo.link_index(l))
            .collect();
        assert!(
            !path.is_empty(),
            "loopback transfer {id} must not enter the plane"
        );
        assert!(
            self.transfers
                .insert(
                    id,
                    Transfer {
                        src,
                        dst,
                        bytes,
                        path: path.clone(),
                        active: path.clone(),
                    },
                )
                .is_none(),
            "duplicate transfer id {id}"
        );
        for &l in &path {
            self.links[l].add_flow(now, id, bytes as f64, rate);
        }
    }

    /// Advance every link's clock to `now`, draining flows at current rates.
    pub fn advance(&mut self, now: SimTime) {
        for l in &mut self.links {
            l.advance(now);
        }
    }

    /// The earliest instant at which some link flow drains, or `None` when
    /// no transfers are in flight. The caller advances to this instant and
    /// calls [`step`](Self::step).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.links
            .iter()
            .filter_map(|l| l.next_completion().map(|(t, _)| t))
            .min()
    }

    /// Process exactly one link-drain event at `at` (which must be the time
    /// returned by [`next_event_time`](Self::next_event_time)).
    ///
    /// Returns `Some` when the drained flow was its transfer's last active
    /// link — the transfer is complete and its bytes have been credited to
    /// every path link — and `None` for an intermediate link drain (rates
    /// on that link re-share; the caller just re-queries). Ties process in
    /// ascending (link index, transfer id) order, deterministically.
    pub fn step(&mut self, at: SimTime) -> Option<TransferDone> {
        let mut best: Option<(SimTime, usize, u64)> = None;
        for (i, l) in self.links.iter().enumerate() {
            if let Some((t, f)) = l.next_completion() {
                if best.map_or(true, |(bt, _, _)| t < bt) {
                    best = Some((t, i, f));
                }
            }
        }
        let (t, li, id) = best.expect("step with no flows in flight");
        debug_assert!(t <= at, "stepping past the next drain event");
        self.advance(at);
        let residual = self.links[li].remove_flow(at, id);
        debug_assert_eq!(residual, 0.0, "stepped flow must have drained");
        let tr = self
            .transfers
            .get_mut(&id)
            .expect("flow without a transfer");
        tr.active.retain(|&x| x != li);
        if !tr.active.is_empty() {
            return None;
        }
        let tr = self.transfers.remove(&id).expect("transfer vanished");
        for &l in &tr.path {
            self.link_bytes[l] += tr.bytes;
        }
        Some(TransferDone {
            id,
            src: tr.src,
            dst: tr.dst,
            bytes: tr.bytes,
            at,
            links: tr.path,
        })
    }

    /// Cancel an in-flight transfer (task kill / job abort): its remaining
    /// link flows are removed and **no** byte counters are credited.
    ///
    /// # Panics
    /// Panics if the transfer is unknown (the caller owns the id map).
    pub fn cancel_transfer(&mut self, now: SimTime, id: u64) {
        let tr = self
            .transfers
            .remove(&id)
            .unwrap_or_else(|| panic!("cancelling unknown transfer {id}"));
        for &l in &tr.active {
            self.links[l].remove_flow(now, id);
        }
        self.cancelled += 1;
        self.cancelled_bytes += tr.bytes;
    }

    /// Number of transfers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.transfers.len()
    }

    /// Whole-transfer bytes credited per dense link index.
    pub fn link_bytes(&self) -> &[u64] {
        &self.link_bytes
    }

    /// Transfers cancelled before completion, and their bytes.
    pub fn cancelled(&self) -> (u64, u64) {
        (self.cancelled, self.cancelled_bytes)
    }

    /// Seconds each link spent with at least one active flow, per dense
    /// link index.
    pub fn link_busy_secs(&self) -> Vec<f64> {
        self.links
            .iter()
            .map(|l| l.busy_time().as_secs_f64())
            .collect()
    }

    /// Current fair-share allocation on one link (tests/diagnostics).
    pub fn link_rates(&self, index: usize) -> Vec<(u64, f64)> {
        self.links[index].current_rates()
    }

    /// Capacity of the link at a dense index, in bytes/s.
    pub fn link_capacity(&self, index: usize) -> f64 {
        self.links[index].capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(oversub: f64) -> NetworkPlane {
        let mut t = NetTopology::new(4, 2);
        t.node_bw = 100.0; // tiny units keep the arithmetic readable
        t.rack_oversubscription = oversub;
        t.latency_us = 0.0;
        NetworkPlane::new(t)
    }

    /// Drive the plane to completion, returning (time, done) events.
    fn drain(p: &mut NetworkPlane) -> Vec<TransferDone> {
        let mut done = Vec::new();
        while let Some(t) = p.next_event_time() {
            if let Some(d) = p.step(t) {
                done.push(d);
            }
        }
        done
    }

    #[test]
    fn single_transfer_runs_at_its_rate() {
        let mut p = plane(1.0);
        p.begin_transfer(SimTime::ZERO, 1, 0, 1, 100, 50.0);
        let done = drain(&mut p);
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].at.as_secs_f64() - 2.0).abs() < 1e-6,
            "{:?}",
            done[0].at
        );
        // Both path links credited with the whole transfer.
        let up = p.topology().link_index(crate::topology::LinkId::NodeUp(0));
        let down = p
            .topology()
            .link_index(crate::topology::LinkId::NodeDown(1));
        assert_eq!(p.link_bytes()[up], 100);
        assert_eq!(p.link_bytes()[down], 100);
        assert_eq!(p.link_bytes().iter().sum::<u64>(), 200);
    }

    #[test]
    fn shared_link_fair_shares_and_ties_break_low_id_first() {
        let mut p = plane(1.0);
        // Two transfers out of node 0 wanting full node bandwidth each:
        // the node0:up link halves them.
        p.begin_transfer(SimTime::ZERO, 1, 0, 1, 100, 100.0);
        p.begin_transfer(SimTime::ZERO, 2, 0, 1, 100, 100.0);
        let done = drain(&mut p);
        assert_eq!(done.iter().map(|d| d.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!((done[0].at.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn oversubscribed_rack_uplink_is_the_bottleneck() {
        let mut p = plane(4.0); // rack links: 100*2/4 = 50
        p.begin_transfer(SimTime::ZERO, 1, 0, 2, 100, 100.0);
        let done = drain(&mut p);
        // Nominal rate 100 is capacity-clamped to 50 on the rack hops.
        assert!(
            (done[0].at.as_secs_f64() - 2.0).abs() < 1e-6,
            "{:?}",
            done[0].at
        );
        assert_eq!(done[0].links.len(), 4);
    }

    #[test]
    fn cancel_credits_nothing() {
        let mut p = plane(1.0);
        p.begin_transfer(SimTime::ZERO, 1, 0, 3, 100, 10.0);
        p.advance(SimTime::from_secs(1));
        p.cancel_transfer(SimTime::from_secs(1), 1);
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.cancelled(), (1, 100));
        assert!(p.link_bytes().iter().all(|&b| b == 0));
        assert!(p.next_event_time().is_none());
    }

    #[test]
    fn completion_waits_for_the_last_link() {
        let mut p = plane(8.0); // rack links: 100*2/8 = 25
        p.begin_transfer(SimTime::ZERO, 1, 0, 2, 100, 100.0);
        // Node links would drain at t=1 (rate min(100, cap 100)); rack links
        // cap the flow at 25/s there, draining at t=4: intermediate steps
        // return None, the final one reports the transfer.
        let mut completions = 0;
        let mut last = SimTime::ZERO;
        while let Some(t) = p.next_event_time() {
            if let Some(d) = p.step(t) {
                completions += 1;
                last = d.at;
            }
        }
        assert_eq!(completions, 1);
        assert!((last.as_secs_f64() - 4.0).abs() < 1e-6, "{last:?}");
    }

    #[test]
    #[should_panic(expected = "loopback transfer")]
    fn loopback_transfers_are_rejected() {
        let mut p = plane(1.0);
        p.begin_transfer(SimTime::ZERO, 1, 2, 2, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate transfer id")]
    fn duplicate_ids_are_rejected() {
        let mut p = plane(1.0);
        p.begin_transfer(SimTime::ZERO, 1, 0, 1, 10, 1.0);
        p.begin_transfer(SimTime::ZERO, 1, 1, 0, 10, 1.0);
    }
}
