//! Node/rack topology: link naming, routing, capacities, and locality.

use memtier_des::SimTime;
use serde::{Deserialize, Serialize};

/// Default per-node link bandwidth: 10 Gb/s Ethernet in bytes/second.
pub const DEFAULT_NODE_BW: f64 = 1.25e9;
/// Default per-hop latency in microseconds (commodity datacenter RTT scale).
pub const DEFAULT_LATENCY_US: f64 = 100.0;

/// A two-level (node → rack) cluster topology.
///
/// Every node owns a full-duplex link into its rack switch (modeled as a
/// separate `up` and `down` half, each of [`node_bw`](Self::node_bw)
/// bytes/s), and every rack owns a full-duplex uplink into the core. The
/// rack uplink carries the aggregate of its nodes divided by the
/// [`rack_oversubscription`](Self::rack_oversubscription) factor — the
/// classic leaf/spine oversubscription knob. Transfers between co-located
/// endpoints (same node) take the loopback fast path: no links, no latency,
/// no flows.
///
/// Nodes are assigned to racks contiguously: with `nodes = 4, racks = 2`,
/// rack 0 holds nodes {0, 1} and rack 1 holds nodes {2, 3}.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetTopology {
    /// Number of physical nodes.
    pub nodes: u32,
    /// Number of racks; must divide `nodes` evenly.
    pub racks: u32,
    /// Bandwidth of each node↔rack-switch link half, in bytes/second.
    pub node_bw: f64,
    /// Rack-uplink oversubscription factor (≥ 1): the uplink's capacity is
    /// `node_bw × nodes_per_rack / rack_oversubscription`.
    pub rack_oversubscription: f64,
    /// Per-hop propagation + switching latency in microseconds.
    pub latency_us: f64,
}

impl Default for NetTopology {
    fn default() -> Self {
        NetTopology::new(1, 1)
    }
}

impl NetTopology {
    /// A topology with the default bandwidth/latency/oversubscription.
    pub fn new(nodes: u32, racks: u32) -> Self {
        NetTopology {
            nodes,
            racks,
            node_bw: DEFAULT_NODE_BW,
            rack_oversubscription: 1.0,
            latency_us: DEFAULT_LATENCY_US,
        }
    }

    /// The degenerate single-node topology: every transfer is loopback.
    pub fn single_node() -> Self {
        NetTopology::new(1, 1)
    }

    /// Set the rack-uplink oversubscription factor (builder style).
    pub fn with_oversubscription(mut self, factor: f64) -> Self {
        self.rack_oversubscription = factor;
        self
    }

    /// Check the structural invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("network topology needs at least one node".into());
        }
        if self.racks == 0 {
            return Err("network topology needs at least one rack".into());
        }
        if self.racks > self.nodes {
            return Err(format!(
                "network topology has more racks ({}) than nodes ({})",
                self.racks, self.nodes
            ));
        }
        if self.nodes % self.racks != 0 {
            return Err(format!(
                "network topology nodes ({}) must divide evenly into racks ({})",
                self.nodes, self.racks
            ));
        }
        if !(self.node_bw.is_finite() && self.node_bw > 0.0) {
            return Err(format!(
                "network node bandwidth must be positive and finite, got {}",
                self.node_bw
            ));
        }
        if !(self.rack_oversubscription.is_finite() && self.rack_oversubscription >= 1.0) {
            return Err(format!(
                "rack oversubscription must be a finite factor >= 1, got {}",
                self.rack_oversubscription
            ));
        }
        if !(self.latency_us.is_finite() && self.latency_us >= 0.0) {
            return Err(format!(
                "network latency must be finite and non-negative, got {}",
                self.latency_us
            ));
        }
        Ok(())
    }

    /// Nodes per rack (contiguous assignment).
    pub fn nodes_per_rack(&self) -> u32 {
        self.nodes / self.racks
    }

    /// The rack holding `node`.
    pub fn rack_of(&self, node: u32) -> u32 {
        node / self.nodes_per_rack()
    }

    /// The node hosting executor `exec` (round-robin assignment, matching
    /// how a cluster manager spreads executors over a homogeneous fleet).
    pub fn node_of_executor(&self, exec: usize) -> u32 {
        (exec as u64 % self.nodes as u64) as u32
    }

    /// The node hosting DFS datanode `datanode` (round-robin, co-located
    /// with executors the way HDFS datanodes share Spark workers).
    pub fn node_of_datanode(&self, datanode: u32) -> u32 {
        datanode % self.nodes
    }

    /// The node hosting the driver.
    pub fn driver_node(&self) -> u32 {
        0
    }

    /// Locality class of a transfer between two nodes.
    pub fn locality(&self, a: u32, b: u32) -> Locality {
        if a == b {
            Locality::NodeLocal
        } else if self.rack_of(a) == self.rack_of(b) {
            Locality::RackLocal
        } else {
            Locality::Remote
        }
    }

    /// The ordered link path of a `src → dst` transfer. Same-node transfers
    /// return the empty path (loopback fast path: free).
    pub fn path(&self, src: u32, dst: u32) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        let (rs, rd) = (self.rack_of(src), self.rack_of(dst));
        if rs == rd {
            vec![LinkId::NodeUp(src), LinkId::NodeDown(dst)]
        } else {
            vec![
                LinkId::NodeUp(src),
                LinkId::RackUp(rs),
                LinkId::RackDown(rd),
                LinkId::NodeDown(dst),
            ]
        }
    }

    /// Capacity of a link in bytes/second.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        match link {
            LinkId::NodeUp(_) | LinkId::NodeDown(_) => self.node_bw,
            LinkId::RackUp(_) | LinkId::RackDown(_) => {
                self.node_bw * self.nodes_per_rack() as f64 / self.rack_oversubscription
            }
        }
    }

    /// Total number of links: an up/down half per node plus per rack.
    pub fn num_links(&self) -> usize {
        2 * self.nodes as usize + 2 * self.racks as usize
    }

    /// Dense index of a link in `0..num_links()`, stable across runs:
    /// node-up halves first, then node-down, rack-up, rack-down.
    pub fn link_index(&self, link: LinkId) -> usize {
        let n = self.nodes as usize;
        match link {
            LinkId::NodeUp(i) => i as usize,
            LinkId::NodeDown(i) => n + i as usize,
            LinkId::RackUp(r) => 2 * n + r as usize,
            LinkId::RackDown(r) => 2 * n + self.racks as usize + r as usize,
        }
    }

    /// The link at a dense index (inverse of [`link_index`](Self::link_index)).
    pub fn link_at(&self, index: usize) -> LinkId {
        let n = self.nodes as usize;
        let r = self.racks as usize;
        if index < n {
            LinkId::NodeUp(index as u32)
        } else if index < 2 * n {
            LinkId::NodeDown((index - n) as u32)
        } else if index < 2 * n + r {
            LinkId::RackUp((index - 2 * n) as u32)
        } else {
            LinkId::RackDown((index - 2 * n - r) as u32)
        }
    }

    /// Whether the dense link index names a rack uplink/downlink half.
    pub fn is_rack_link(&self, index: usize) -> bool {
        index >= 2 * self.nodes as usize
    }

    /// Nominal (uncontended) duration of a transfer: per-hop latency plus
    /// the serialization time on the path's bottleneck link. Loopback
    /// transfers are free.
    pub fn nominal_time(&self, src: u32, dst: u32, bytes: u64) -> SimTime {
        let path = self.path(src, dst);
        if path.is_empty() {
            return SimTime::ZERO;
        }
        let bottleneck = path
            .iter()
            .map(|&l| self.link_capacity(l))
            .fold(f64::INFINITY, f64::min);
        let secs = self.latency_us * 1e-6 * path.len() as f64 + bytes as f64 / bottleneck;
        SimTime::from_secs_f64(secs)
    }
}

/// One half-duplex link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkId {
    /// Node `n` → rack switch.
    NodeUp(u32),
    /// Rack switch → node `n`.
    NodeDown(u32),
    /// Rack `r` → core.
    RackUp(u32),
    /// Core → rack `r`.
    RackDown(u32),
}

impl LinkId {
    /// Stable human-readable label (used by events, traces, and reports).
    pub fn label(&self) -> String {
        match self {
            LinkId::NodeUp(n) => format!("node{n}:up"),
            LinkId::NodeDown(n) => format!("node{n}:down"),
            LinkId::RackUp(r) => format!("rack{r}:up"),
            LinkId::RackDown(r) => format!("rack{r}:down"),
        }
    }
}

/// Locality class of a transfer (and of a task placement decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Endpoints share a node: loopback, free.
    NodeLocal,
    /// Endpoints share a rack but not a node.
    RackLocal,
    /// Endpoints sit in different racks.
    Remote,
}

impl Locality {
    /// Stable label for events and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Locality::NodeLocal => "node-local",
            Locality::RackLocal => "rack-local",
            Locality::Remote => "remote",
        }
    }
}

/// How the simulated cluster is wired, from `SparkConf`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum NetworkMode {
    /// No network plane: every transfer is free loopback (the pre-plane
    /// model, and the byte-identity baseline).
    #[default]
    Loopback,
    /// A node/rack topology with flows on every cross-node transfer.
    Topology {
        /// The cluster wiring.
        topology: NetTopology,
        /// How the scheduler uses (or ignores) locality.
        locality: LocalityMode,
    },
}

impl NetworkMode {
    /// The topology, when one is configured.
    pub fn topology(&self) -> Option<&NetTopology> {
        match self {
            NetworkMode::Loopback => None,
            NetworkMode::Topology { topology, .. } => Some(topology),
        }
    }

    /// The locality policy, when a topology is configured.
    pub fn locality(&self) -> Option<&LocalityMode> {
        match self {
            NetworkMode::Loopback => None,
            NetworkMode::Topology { locality, .. } => Some(locality),
        }
    }

    /// Short display label for scenario keys: `loopback`, or e.g.
    /// `net(4n/2r,os4,delay1000us)`.
    pub fn label(&self) -> String {
        match self {
            NetworkMode::Loopback => "loopback".to_string(),
            NetworkMode::Topology { topology, locality } => {
                let policy = match locality {
                    LocalityMode::Blind => "blind".to_string(),
                    LocalityMode::DelayScheduling { wait } => {
                        format!("delay{}us", wait.as_ps() / 1_000_000)
                    }
                };
                format!(
                    "net({}n/{}r,os{},{policy})",
                    topology.nodes, topology.racks, topology.rack_oversubscription
                )
            }
        }
    }
}

/// Task-placement policy of the scheduler under a topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocalityMode {
    /// Ignore locality: keep the plain round-robin placement (charges
    /// traffic but never moves a task for it).
    Blind,
    /// Spark-style delay scheduling: hold a task for up to `wait` of
    /// virtual time per locality level before relaxing node-local →
    /// rack-local → any.
    DelayScheduling {
        /// How long a task may wait per level before relaxing.
        wait: SimTime,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> NetTopology {
        NetTopology::new(4, 2)
    }

    #[test]
    fn rack_assignment_is_contiguous() {
        let t = topo();
        assert_eq!(t.nodes_per_rack(), 2);
        assert_eq!(
            (0..4).map(|n| t.rack_of(n)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
    }

    #[test]
    fn loopback_path_is_empty_and_free() {
        let t = topo();
        assert!(t.path(2, 2).is_empty());
        assert_eq!(t.nominal_time(2, 2, 1 << 30), SimTime::ZERO);
    }

    #[test]
    fn same_rack_path_has_two_hops() {
        let t = topo();
        assert_eq!(t.path(0, 1), vec![LinkId::NodeUp(0), LinkId::NodeDown(1)]);
    }

    #[test]
    fn cross_rack_path_traverses_both_uplinks() {
        let t = topo();
        assert_eq!(
            t.path(1, 2),
            vec![
                LinkId::NodeUp(1),
                LinkId::RackUp(0),
                LinkId::RackDown(1),
                LinkId::NodeDown(2),
            ]
        );
    }

    #[test]
    fn oversubscription_shrinks_rack_capacity() {
        let mut t = topo();
        t.rack_oversubscription = 4.0;
        // nodes_per_rack = 2, so the uplink aggregates 2 × node_bw / 4.
        let expect = t.node_bw * 2.0 / 4.0;
        assert_eq!(t.link_capacity(LinkId::RackUp(0)), expect);
        assert_eq!(t.link_capacity(LinkId::NodeUp(0)), t.node_bw);
    }

    #[test]
    fn link_index_round_trips() {
        let t = topo();
        for i in 0..t.num_links() {
            assert_eq!(t.link_index(t.link_at(i)), i);
        }
        assert_eq!(t.num_links(), 12);
        assert!(t.is_rack_link(t.link_index(LinkId::RackUp(1))));
        assert!(!t.is_rack_link(t.link_index(LinkId::NodeDown(3))));
    }

    #[test]
    fn locality_classes() {
        let t = topo();
        assert_eq!(t.locality(0, 0), Locality::NodeLocal);
        assert_eq!(t.locality(0, 1), Locality::RackLocal);
        assert_eq!(t.locality(0, 3), Locality::Remote);
        assert_eq!(Locality::Remote.label(), "remote");
    }

    #[test]
    fn executor_and_datanode_mapping_wraps() {
        let t = topo();
        assert_eq!(t.node_of_executor(5), 1);
        assert_eq!(t.node_of_datanode(7), 3);
        assert_eq!(t.driver_node(), 0);
    }

    #[test]
    fn nominal_time_uses_bottleneck_and_hops() {
        let mut t = topo();
        t.node_bw = 1e9;
        t.rack_oversubscription = 8.0; // rack links: 2e9/8 = 0.25e9
        t.latency_us = 10.0;
        let bytes = 250_000_000u64; // 1 s on the rack bottleneck
        let got = t.nominal_time(0, 2, bytes).as_secs_f64();
        assert!((got - (1.0 + 4.0 * 10.0e-6)).abs() < 1e-9, "{got}");
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(NetTopology::new(0, 1).validate().is_err());
        assert!(NetTopology::new(4, 3).validate().is_err());
        assert!(NetTopology::new(2, 4).validate().is_err());
        let mut t = topo();
        t.rack_oversubscription = 0.5;
        assert!(t.validate().is_err());
        let mut t = topo();
        t.node_bw = 0.0;
        assert!(t.validate().is_err());
        let mut t = topo();
        t.latency_us = f64::NAN;
        assert!(t.validate().is_err());
        assert!(topo().validate().is_ok());
    }

    #[test]
    fn network_mode_default_is_loopback_and_serde_skips_cleanly() {
        let m = NetworkMode::default();
        assert_eq!(m, NetworkMode::Loopback);
        assert!(m.topology().is_none());
        let m = NetworkMode::Topology {
            topology: topo(),
            locality: LocalityMode::DelayScheduling {
                wait: SimTime::from_us(500),
            },
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: NetworkMode = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
