//! `als` — alternating least squares matrix factorization.
//!
//! Table II sizes kept verbatim (100/1 000/10 000 users & products,
//! 200/2 000/20 000 ratings — the paper's ALS inputs are already small,
//! which is exactly why its runtime is nearly flat across profiles: the
//! per-iteration scheduling and factor-exchange overhead dominates).
//!
//! The implementation is genuine distributed ALS with rank-8 factors: each
//! half-iteration groups ratings by one side, joins in the other side's
//! factors, accumulates per-entity normal equations `(Σ qqᵀ + λI) x = Σ rq`
//! and solves them with the dense solver.

use crate::gen::generate_ratings;
use crate::linalg::{add_outer, dot, solve_dense};
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use sparklite::error::Result;
use sparklite::rdd::Rdd;
use sparklite::{OpCost, SparkContext};

/// Factor rank.
const RANK: usize = 8;
/// Regularization.
const LAMBDA: f64 = 0.05;
/// Alternation rounds (each updates users then products).
const ITERATIONS: usize = 3;

/// (users, products, ratings) per profile — Table II verbatim.
fn profile(size: DataSize) -> (u64, u64, usize) {
    match size {
        DataSize::Tiny => (100, 100, 200),
        DataSize::Small => (1_000, 1_000, 2_000),
        DataSize::Large => (10_000, 10_000, 20_000),
    }
}

/// The ALS workload.
pub struct Als;

type Factor = Vec<f64>;

/// Solve one entity's normal equations given its `(rating, other-side
/// factor)` observations.
fn solve_entity(obs: &[(f64, Factor)]) -> Factor {
    let mut a = vec![vec![0.0; RANK]; RANK];
    let mut b = vec![0.0; RANK];
    for (r, q) in obs {
        add_outer(&mut a, q);
        for (bi, qi) in b.iter_mut().zip(q) {
            *bi += r * qi;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += LAMBDA;
    }
    solve_dense(a, b).unwrap_or_else(|| vec![0.1; RANK])
}

/// One half-iteration: update `side` factors from the other side's.
fn update_side(
    ratings_by_side: &Rdd<(u64, (u64, f64))>,
    other_factors: &Rdd<(u64, Factor)>,
    partitions: usize,
) -> Rdd<(u64, Factor)> {
    // (other_id, (side_id, rating)) join (other_id, factor)
    //   -> regroup by side_id -> solve.
    let keyed_by_other = ratings_by_side.map(|(side, (other, r))| (*other, (*side, *r)));
    keyed_by_other
        .join(other_factors, partitions)
        .map(|(_, ((side, r), q))| (*side, (*r, q.clone())))
        .group_by_key_with_partitions(partitions)
        .map_values_with_cost(
            |obs| solve_entity(obs),
            // k² accumulate per observation + k³ solve amortized.
            OpCost::cpu((RANK * RANK) as f64 * 18.0)
                .with_reads(2.0)
                .with_writes(1.0),
        )
}

impl Workload for Als {
    fn name(&self) -> &'static str {
        "als"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn data_description(&self, size: DataSize) -> String {
        let (u, p, r) = profile(size);
        format!("{u} users, {p} products, {r} ratings, rank {RANK}")
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let (users, products, n_ratings) = profile(size);
        let partitions = sc.conf().parallelism();
        let per_part = n_ratings.div_ceil(partitions);

        let ratings = sc
            .generate(
                partitions,
                move |part| {
                    let lo = part * per_part;
                    let hi = (lo + per_part).min(n_ratings);
                    generate_ratings(seed, part, hi.saturating_sub(lo), users, products)
                },
                OpCost::cpu(80.0),
            )
            .map(|&(u, p, r)| (u, (p, r as f64)))
            .cache();
        ratings.count()?; // materialize the cached input

        // Initial product factors: small deterministic values.
        let init = |id: u64| -> Factor {
            (0..RANK)
                .map(|k| 0.1 + 0.8 * (((id + 1) * (k as u64 + 3)) % 97) as f64 / 97.0)
                .collect()
        };
        let mut product_factors = sc.generate(
            partitions,
            move |part| {
                let per = products.div_ceil(partitions as u64);
                let lo = part as u64 * per;
                let hi = (lo + per).min(products);
                (lo..hi).map(|p| (p, init(p))).collect::<Vec<_>>()
            },
            OpCost::cpu(30.0),
        );

        let ratings_by_product = ratings.map(|(u, (p, r))| (*p, (*u, *r))).cache();
        // `update_side(r, f)` expects `r` keyed by the entity being updated
        // and `f` the opposite side's factors.
        let mut user_factors = update_side(&ratings, &product_factors, partitions);
        for _ in 0..ITERATIONS {
            product_factors = update_side(&ratings_by_product, &user_factors, partitions);
            user_factors = update_side(&ratings, &product_factors, partitions);
        }

        // Evaluate reconstruction RMSE over the training ratings.
        let predictions = ratings
            .join(&user_factors, partitions)
            .map(|(u, ((p, r), fu))| (*p, (*u, *r, fu.clone())))
            .join(&product_factors, partitions)
            .map_with_cost(
                |(_, ((_, r, fu), fp))| {
                    let err = r - dot(fu, fp);
                    err * err
                },
                OpCost::cpu(RANK as f64 * 10.0),
            );
        let sse = predictions.fold(0.0, |a, b| a + b)?;
        let rmse = (sse / n_ratings as f64).sqrt();

        let factors = user_factors.collect()?;
        let checksum = factors.iter().fold(0u64, |acc, (id, f)| {
            let q = (f[0] * 1e6) as i64;
            super::fnv_fold(acc, &[*id as u8, (q & 0xff) as u8])
        });
        Ok(WorkloadOutput {
            output_records: factors.len() as u64,
            checksum,
            quality: rmse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn recovers_low_rank_structure() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let out = Als.run(&sc, DataSize::Tiny, 11).unwrap();
        assert!(out.output_records > 0);
        // Planted ratings are inner products of 4-vectors in [0.2, 1.2] plus
        // ±0.1 noise; a rank-8 fit must get close.
        assert!(out.quality < 0.35, "ALS RMSE too high: {}", out.quality);
    }

    #[test]
    fn solve_entity_fits_exact_data() {
        // Observations generated from a known factor with orthogonal q's.
        let truth: Factor = (0..RANK).map(|i| (i + 1) as f64 / 8.0).collect();
        let mut obs = Vec::new();
        for i in 0..RANK {
            let mut q = vec![0.0; RANK];
            q[i] = 1.0;
            obs.push((truth[i], q));
        }
        // Duplicate observations to dominate the regularizer.
        let obs: Vec<_> = std::iter::repeat_n(obs, 200).flatten().collect();
        let sol = solve_entity(&obs);
        for (s, t) in sol.iter().zip(&truth) {
            assert!((s - t).abs() < 0.01, "{sol:?} vs {truth:?}");
        }
    }
}
