//! The seven applications.

pub mod als;
pub mod bayes;
pub mod lda;
pub mod pagerank;
pub mod repartition;
pub mod rf;
pub mod sort;

/// FNV-1a checksum folding, used by every workload to produce a stable
/// output digest.
pub(crate) fn fnv_fold(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = if acc == 0 { 0xcbf29ce484222325 } else { acc };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        let a = fnv_fold(0, b"hello");
        let b = fnv_fold(0, b"hello");
        assert_eq!(a, b);
        assert_ne!(fnv_fold(0, b"ab"), fnv_fold(0, b"ba"));
        // Folding continues a digest.
        assert_ne!(fnv_fold(a, b"x"), a);
    }
}
