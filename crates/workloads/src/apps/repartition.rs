//! `repartition` — HiBench's pure-shuffle micro benchmark.
//!
//! Table II: 3.2 KB / 3.2 MB / 32 MB of records. Scaled ~1/10 for the two
//! larger profiles. The dataflow is a single wide dependency with no
//! aggregation: every byte generated crosses the shuffle.

use crate::gen::rng_for;
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use rand::Rng;
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};

/// 32-byte payload records per profile.
fn records(size: DataSize) -> usize {
    match size {
        DataSize::Tiny => 100,      // ≈ 3.2 KB
        DataSize::Small => 10_000,  // ≈ 320 KB
        DataSize::Large => 100_000, // ≈ 3.2 MB
    }
}

/// The repartition workload.
pub struct Repartition;

impl Workload for Repartition {
    fn name(&self) -> &'static str {
        "repartition"
    }

    fn category(&self) -> Category {
        Category::Micro
    }

    fn data_description(&self, size: DataSize) -> String {
        format!(
            "{} × 32-byte records (≈{} KB)",
            records(size),
            records(size) * 32 / 1024
        )
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let n = records(size);
        let partitions = sc.conf().parallelism();
        let per_part = n.div_ceil(partitions);

        let input = sc.generate(
            partitions,
            move |part| {
                let mut rng = rng_for(seed, part);
                let lo = part * per_part;
                let hi = (lo + per_part).min(n);
                (lo..hi)
                    .map(|i| {
                        (
                            rng.gen::<u64>(),
                            [i as u64, rng.gen::<u64>(), rng.gen::<u64>()],
                        )
                    })
                    .collect::<Vec<(u64, [u64; 3])>>()
            },
            OpCost::cpu(60.0),
        );

        let shuffled = input.partition_by(partitions);
        let out_count = shuffled.count()?;

        // Quality: per-partition balance (max/mean record ratio) via a
        // partition-size job.
        let sizes: Vec<(u64, u64)> = shuffled
            .map_partitions(
                |part, items| vec![(part as u64, items.len() as u64)],
                OpCost::cpu(5.0),
            )
            .collect()?;
        let mean = out_count as f64 / sizes.len().max(1) as f64;
        let max = sizes.iter().map(|&(_, c)| c).max().unwrap_or(0) as f64;
        let checksum = sizes.iter().fold(0u64, |acc, &(p, c)| {
            super::fnv_fold(acc, &[p as u8, c as u8])
        });
        Ok(WorkloadOutput {
            output_records: out_count,
            checksum,
            quality: if mean > 0.0 { max / mean } else { 0.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn preserves_every_record_and_balances() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
        let out = Repartition.run(&sc, DataSize::Small, 3).unwrap();
        assert_eq!(out.output_records, 10_000);
        assert!(
            out.quality < 1.5,
            "hash partitioning should balance within 50 % (got {})",
            out.quality
        );
    }
}
