//! `pagerank` — the classic cached-links power iteration.
//!
//! Table II: 50 / 5 000 / 500 000 pages (large scaled 1/20 → 25 000).
//! The dataflow is Spark's canonical PageRank: links are hash-partitioned
//! once and cached; every iteration joins ranks against them, fans
//! contributions out along edges and aggregates with `reduce_by_key`. The
//! per-iteration join + aggregation state makes this the paper's most
//! access-intensive websearch workload, while the `tiny`/`small` profiles
//! are small enough to be tier-tolerant (Fig. 2's pagerank-tiny/small
//! observation).

use crate::gen::generate_links;
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};

/// Pages per profile.
fn pages(size: DataSize) -> u64 {
    match size {
        DataSize::Tiny => 50,
        DataSize::Small => 5_000,
        DataSize::Large => 25_000,
    }
}

/// Power iterations.
const ITERATIONS: usize = 5;
/// Damping factor.
const DAMPING: f64 = 0.85;
/// Maximum out-degree of the generator.
const MAX_DEGREE: usize = 10;

/// The PageRank workload.
pub struct PageRank;

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn category(&self) -> Category {
        Category::WebSearch
    }

    fn data_description(&self, size: DataSize) -> String {
        format!(
            "{} pages, ≤{MAX_DEGREE} out-links, {ITERATIONS} iterations",
            pages(size)
        )
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let n = pages(size);
        let partitions = sc.conf().parallelism();
        let per_part = n.div_ceil(partitions as u64);

        // links: (page, out-neighbours), partitioned once and cached — the
        // canonical Spark pagerank optimization.
        let links = sc
            .generate(
                partitions,
                move |part| {
                    // More partitions than pages leaves the tail empty.
                    let lo = (part as u64 * per_part).min(n);
                    let hi = (lo + per_part).min(n);
                    generate_links(seed, part, lo, hi, n, MAX_DEGREE)
                },
                OpCost::cpu(70.0),
            )
            .group_by_key_with_partitions(partitions)
            .cache();
        links.count()?;

        let mut ranks = links.map_values(move |_| 1.0f64 / n as f64);
        for _ in 0..ITERATIONS {
            let contribs = links
                .join(&ranks, partitions)
                .flat_map_with_cost(
                    |(_, (neighbours, rank))| {
                        let share = *rank / neighbours.len().max(1) as f64;
                        neighbours
                            .iter()
                            .map(|&dst| (dst, share))
                            .collect::<Vec<(u64, f64)>>()
                    },
                    OpCost::cpu(20.0).with_reads(1.0),
                )
                .reduce_by_key(|a, b| a + b);
            let base = (1.0 - DAMPING) / n as f64;
            ranks = contribs.map_values(move |sum| base + DAMPING * sum);
        }

        let final_ranks = ranks.collect()?;
        // Quality: total rank mass over pages that receive links. (Pages
        // with no in-links drop out of `contribs`; their mass re-enters via
        // the damping term of pages that do. Mass stays bounded in (0, 1].)
        let mass: f64 = final_ranks.iter().map(|&(_, r)| r).sum();
        let mut top: Vec<(u64, f64)> = final_ranks.clone();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let checksum = top.iter().take(20).fold(0u64, |acc, &(p, r)| {
            super::fnv_fold(acc, &[(p & 0xff) as u8, (r * 1e4) as u8])
        });
        Ok(WorkloadOutput {
            output_records: final_ranks.len() as u64,
            checksum,
            quality: mass,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn rank_mass_is_conserved_approximately() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let out = PageRank.run(&sc, DataSize::Small, 17).unwrap();
        assert!(out.output_records > 0);
        assert!(
            out.quality > 0.5 && out.quality <= 1.01,
            "rank mass out of range: {}",
            out.quality
        );
    }

    #[test]
    fn hubs_accumulate_rank() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        // Two runs with the same seed agree; ranks are skewed toward the
        // preferentially-attached head pages.
        let a = PageRank.run(&sc, DataSize::Tiny, 1).unwrap();
        let sc2 = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let b = PageRank.run(&sc2, DataSize::Tiny, 1).unwrap();
        assert_eq!(a.checksum, b.checksum);
    }
}
