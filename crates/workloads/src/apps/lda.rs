//! `lda` — Latent Dirichlet Allocation by EM over a word×topic table.
//!
//! Table II: 2 000/5 000/10 000 docs, vocab 1 000/2 000/3 000, topics
//! 10/20/30. Docs scaled ~1/10. Each EM iteration's M-step rebuilds the
//! whole word×topic count table through a wide aggregation keyed by
//! `(word, topic)` — for the large profile that is 90 000 hot counters
//! being *written* every iteration, which is exactly the write-heavy access
//! mix the paper blames for lda-large's blow-up on Optane (Takeaway 3: the
//! DCPM write asymmetry bites hardest here).

use crate::gen::{rng_for, zipf::Zipf};
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use rand::Rng;
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};
use std::collections::HashMap;

/// (docs, vocabulary, topics, words per doc).
fn profile(size: DataSize) -> (usize, usize, usize, usize) {
    match size {
        DataSize::Tiny => (200, 1_000, 10, 50),
        DataSize::Small => (500, 2_000, 20, 60),
        DataSize::Large => (1_000, 3_000, 30, 80),
    }
}

/// EM iterations.
const ITERATIONS: usize = 6;

/// The LDA workload.
pub struct Lda;

impl Workload for Lda {
    fn name(&self) -> &'static str {
        "lda"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn data_description(&self, size: DataSize) -> String {
        let (docs, vocab, topics, wpd) = profile(size);
        format!("{docs} docs, vocab {vocab}, {topics} topics, {wpd} words/doc")
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let (n_docs, vocab, topics, wpd) = profile(size);
        let partitions = sc.conf().parallelism();
        let per_part = n_docs.div_ceil(partitions);

        // Documents with planted topic structure: each doc mixes two true
        // topics whose vocabularies live in disjoint Zipf-shifted regions.
        let docs = sc
            .generate(
                partitions,
                move |part| {
                    let mut rng = rng_for(seed, part);
                    let zipf = Zipf::new(vocab / topics, 1.1);
                    let lo = part * per_part;
                    let hi = (lo + per_part).min(n_docs);
                    (lo..hi)
                        .map(|doc| {
                            let t1 = doc % topics;
                            let t2 = (doc * 7 + 3) % topics;
                            let words: Vec<u32> = (0..wpd)
                                .map(|_| {
                                    let t = if rng.gen::<f64>() < 0.6 { t1 } else { t2 };
                                    (t * (vocab / topics) + zipf.sample(&mut rng)) as u32
                                })
                                .collect();
                            (doc as u32, words)
                        })
                        .collect::<Vec<(u32, Vec<u32>)>>()
                },
                OpCost::cpu(100.0),
            )
            .cache();
        docs.count()?;

        // word_topic[(word, topic)] -> weight. Initialized deterministically.
        let mut word_topic: HashMap<(u32, u16), f64> = HashMap::new();
        for w in 0..vocab as u32 {
            for t in 0..topics as u16 {
                let h = super::fnv_fold(seed, &[(w & 0xff) as u8, (w >> 8) as u8, t as u8]);
                word_topic.insert((w, t), 0.5 + (h % 100) as f64 / 100.0);
            }
        }

        let mut checksum = 0u64;
        for _iter in 0..ITERATIONS {
            // E-step + M-step fused: each doc soft-assigns its words to
            // topics given the current table, emitting ((word, topic),
            // responsibility); the wide aggregation rebuilds the table.
            // Per-topic normalization: phi-hat(w, t) = phi(w, t) / total_t,
            // otherwise heavy topics swallow every theta and EM collapses.
            let mut topic_totals = vec![0.0f64; topics];
            for ((_, t), v) in &word_topic {
                topic_totals[*t as usize] += v;
            }
            let normalized: HashMap<(u32, u16), f64> = word_topic
                .iter()
                .map(|(&(w, t), &v)| ((w, t), v / topic_totals[t as usize].max(1e-12)))
                .collect();
            // The table ships to executors as a broadcast variable: each
            // task pays an amortized fetch of the serialized table, exactly
            // like Spark's TorrentBroadcast of the LDA model.
            let table = sc.broadcast(normalized);
            let t_topics = topics;
            let contributions = docs
                .map_partitions_with_env(move |_, items, env| {
                    let table = table.value(env);
                    // Traffic scales with emissions; the closure CPU is
                    // charged separately per input record (flat_map
                    // semantics).
                    let per_emit = OpCost::cpu(0.0)
                        .with_reads(2.2)
                        .with_writes(0.08 * t_topics as f64);
                    let mut out = Vec::new();
                    for (_, words) in items {
                        let phi =
                            |w: u32, t: usize| table.get(&(w, t as u16)).copied().unwrap_or(1e-6);
                        // Doc-level topic proportions: a short inner EM
                        // (proper variational theta, not a one-shot guess).
                        let mut theta = vec![1.0f64 / t_topics as f64; t_topics];
                        for _ in 0..3 {
                            let mut acc = vec![0.02f64; t_topics];
                            for &w in words.iter() {
                                let resp: Vec<f64> =
                                    (0..t_topics).map(|t| theta[t] * phi(w, t)).collect();
                                let rs: f64 = resp.iter().sum();
                                if rs > 0.0 {
                                    for (a, r) in acc.iter_mut().zip(&resp) {
                                        *a += r / rs;
                                    }
                                }
                            }
                            let s: f64 = acc.iter().sum();
                            theta = acc.into_iter().map(|a| a / s).collect();
                        }
                        // Word-level responsibilities.
                        for &w in words.iter() {
                            let mut resp: Vec<f64> =
                                (0..t_topics).map(|t| theta[t] * phi(w, t)).collect();
                            // Annealed sharpening (square-and-renormalize)
                            // accelerates symmetry breaking in few-iteration
                            // EM runs.
                            for r in &mut resp {
                                *r = *r * *r;
                            }
                            let rs: f64 = resp.iter().sum();
                            for r in &mut resp {
                                *r /= rs.max(1e-12);
                            }
                            // Emit only the two strongest responsibilities
                            // (sparse EM), like practical LDA implementations.
                            let mut idx: Vec<usize> = (0..t_topics).collect();
                            idx.sort_by(|&a, &b| resp[b].partial_cmp(&resp[a]).unwrap());
                            for &t in &idx[..2.min(t_topics)] {
                                out.push(((w, t as u16), resp[t]));
                            }
                        }
                    }
                    // The E-step walks the big table per word (read-heavy);
                    // the M-step update traffic scales with the topic count —
                    // lda-large's 30 topics make it the suite's most
                    // write-intensive workload, which is what blows it up on
                    // DCPM (Takeaway 3). Charged per emission, like the
                    // flat_map operator does.
                    env.charge_op(out.len() as u64, &per_emit);
                    env.charge_cpu_ns(
                        items.len() as f64 * 60.0
                            + out.len() as f64 * env.rt.cost.per_record_ns * 0.25,
                    );
                    out
                })
                .reduce_by_key(|a, b| a + b);
            let new_table = contributions.collect()?;
            word_topic = new_table
                .iter()
                .map(|&((w, t), v)| ((w, t), v + 0.01))
                .collect();
            // Driver-side M-step finalization: renormalizing the full
            // word×topic table is serial work on the driver (as in MLlib's
            // EM-LDA driver aggregation) and dominates LDA's runtime — which
            // is why the paper finds lda insensitive to the executor grid.
            sc.run_driver_work((vocab * topics) as f64 * 150.0);
            checksum = new_table.iter().fold(checksum, |acc, ((w, t), v)| {
                super::fnv_fold(acc, &[*w as u8, *t as u8, (v * 10.0) as u8])
            });
        }

        // Quality: permutation-invariant topic coherence — EM recovers
        // topics up to relabeling, so for each learned topic we take the
        // *dominant* planted region's share of its top-10 words and average.
        // Chance level is 1/topics.
        let region = vocab / topics;
        let mut coherence_sum = 0.0;
        for t in 0..topics as u16 {
            let mut words: Vec<(u32, f64)> = word_topic
                .iter()
                .filter(|((_, wt), _)| *wt == t)
                .map(|((w, _), &v)| (*w, v))
                .collect();
            words.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            let top: Vec<u32> = words.iter().take(10).map(|&(w, _)| w).collect();
            if top.is_empty() {
                continue;
            }
            let mut region_counts = vec![0usize; topics];
            for &w in &top {
                region_counts[((w as usize) / region).min(topics - 1)] += 1;
            }
            coherence_sum += *region_counts.iter().max().unwrap() as f64 / top.len() as f64;
        }
        let coherence = coherence_sum / topics as f64;

        Ok(WorkloadOutput {
            output_records: word_topic.len() as u64,
            checksum,
            quality: coherence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn topics_align_with_planted_regions() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let out = Lda.run(&sc, DataSize::Tiny, 13).unwrap();
        assert!(out.output_records > 0);
        // Chance coherence is 1/topics = 0.1; EM should beat it clearly.
        assert!(
            out.quality > 0.4,
            "topic coherence too low: {}",
            out.quality
        );
    }
}
