//! `bayes` — multinomial naive Bayes training.
//!
//! Table II: 25 000 / 30 000 / 100 000 pages with 10/100/100 classes.
//! Scaled ~1/12. The dataflow follows HiBench's Bayes: tokenize pages,
//! count `(class, word)` occurrences with a wide aggregation whose state is
//! the full vocabulary×class table — far beyond cache residency for the
//! larger profiles, which is what makes `bayes` one of the paper's
//! access-heavy, strongly tier-sensitive applications (and the one whose
//! system-level events correlate almost linearly with runtime, Fig. 5).

use crate::gen::{rng_for, zipf::Zipf};
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use rand::Rng;
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};

/// (pages, classes, vocabulary, words per page).
fn profile(size: DataSize) -> (usize, usize, usize, usize) {
    match size {
        DataSize::Tiny => (400, 10, 2_000, 40),
        DataSize::Small => (2_500, 20, 12_000, 60),
        DataSize::Large => (8_000, 20, 40_000, 80),
    }
}

/// The naive Bayes workload.
pub struct Bayes;

impl Workload for Bayes {
    fn name(&self) -> &'static str {
        "bayes"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn data_description(&self, size: DataSize) -> String {
        let (pages, classes, vocab, wpp) = profile(size);
        format!("{pages} pages, {classes} classes, vocab {vocab}, {wpp} words/page")
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let (pages, classes, vocab, wpp) = profile(size);
        let partitions = sc.conf().parallelism();
        let per_part = pages.div_ceil(partitions);

        // Pages: (class, word ids). Class-conditional vocabularies are
        // shifted Zipf heads so classes are actually separable.
        let docs = sc.generate(
            partitions,
            move |part| {
                let mut rng = rng_for(seed, part);
                let zipf = Zipf::new(vocab, 1.05);
                let lo = part * per_part;
                let hi = (lo + per_part).min(pages);
                (lo..hi)
                    .map(|page| {
                        let class = (page % classes) as u32;
                        let words: Vec<u32> = (0..wpp)
                            .map(|_| {
                                let base = zipf.sample(&mut rng);
                                // Shift a third of the mass into a
                                // class-specific region of the vocabulary.
                                if rng.gen::<f64>() < 0.33 {
                                    ((base + class as usize * 31) % vocab) as u32
                                } else {
                                    base as u32
                                }
                            })
                            .collect();
                        (class, words)
                    })
                    .collect::<Vec<(u32, Vec<u32>)>>()
            },
            OpCost::cpu(90.0),
        );

        // Count (class, word) occurrences: the big aggregation.
        let class_word_counts = docs
            .flat_map_with_cost(
                |(class, words)| {
                    words
                        .iter()
                        .map(|&w| ((*class, w), 1u64))
                        .collect::<Vec<((u32, u32), u64)>>()
                },
                OpCost::cpu(30.0).with_reads(1.0),
            )
            .reduce_by_key(|a, b| a + b);

        // Per-class totals and priors.
        let class_totals = class_word_counts
            .map(|((c, _), n)| (*c, *n))
            .reduce_by_key(|a, b| a + b);
        let totals: std::collections::HashMap<u32, u64> =
            class_totals.collect()?.into_iter().collect();
        let class_docs = docs.map(|(c, _)| (*c, 1u64)).reduce_by_key(|a, b| a + b);
        let priors: std::collections::HashMap<u32, u64> =
            class_docs.collect()?.into_iter().collect();

        // Laplace-smoothed log-probabilities (the trained model).
        let v = vocab as f64;
        let totals_cl = totals.clone();
        let model = class_word_counts.map_with_cost(
            move |((c, w), n)| {
                let t = *totals_cl.get(c).unwrap_or(&0) as f64;
                ((*c, *w), ((*n as f64 + 1.0) / (t + v)).ln())
            },
            OpCost::cpu(40.0),
        );
        let trained = model.collect()?;

        // Quality: classify a held-out sample generated the same way and
        // report accuracy. Chance level is 1/classes.
        let table: std::collections::HashMap<(u32, u32), f64> = trained.iter().cloned().collect();
        let n_docs: u64 = priors.values().sum();
        let mut rng = rng_for(seed ^ 0x7E57, 0);
        let mut correct = 0usize;
        const HELD_OUT: usize = 200;
        let zipf = Zipf::new(vocab, 1.05);
        for i in 0..HELD_OUT {
            let truth = (i % classes) as u32;
            let words: Vec<u32> = (0..wpp)
                .map(|_| {
                    let base = zipf.sample(&mut rng);
                    if rng.gen::<f64>() < 0.33 {
                        ((base + truth as usize * 31) % vocab) as u32
                    } else {
                        base as u32
                    }
                })
                .collect();
            let best = (0..classes as u32)
                .max_by(|&a, &b| {
                    let score = |c: u32| {
                        let prior = (*priors.get(&c).unwrap_or(&1) as f64 / n_docs as f64).ln();
                        prior
                            + words
                                .iter()
                                .map(|&w| {
                                    table.get(&(c, w)).copied().unwrap_or_else(|| {
                                        (1.0 / (*totals.get(&c).unwrap_or(&0) as f64 + v)).ln()
                                    })
                                })
                                .sum::<f64>()
                    };
                    score(a).partial_cmp(&score(b)).unwrap()
                })
                .unwrap();
            if best == truth {
                correct += 1;
            }
        }

        let checksum = trained.iter().fold(0u64, |acc, ((c, w), p)| {
            super::fnv_fold(acc, &[*c as u8, *w as u8, (p * -10.0) as u8])
        });
        Ok(WorkloadOutput {
            output_records: trained.len() as u64,
            checksum,
            quality: correct as f64 / HELD_OUT as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn trains_a_better_than_chance_model() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
        let out = Bayes.run(&sc, DataSize::Tiny, 5).unwrap();
        assert!(out.output_records > 1000, "model must cover the vocabulary");
        // 10 classes -> chance is 0.1; the planted signal should lift it.
        assert!(
            out.quality > 0.5,
            "classifier barely better than chance: {}",
            out.quality
        );
    }
}
