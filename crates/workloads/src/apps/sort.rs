//! `sort` — HiBench's micro benchmark: totally order a text dataset.
//!
//! Table II: 32 KB / 320 MB / 3.2 GB of text. Scaled ~1/800 for `large`
//! (tiny stays as-is: it is already tiny).

use crate::gen::{random_line, rng_for};
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};

/// Lines per size profile and words per line.
fn profile(size: DataSize) -> (usize, usize) {
    match size {
        DataSize::Tiny => (500, 8),     // ≈ 32 KB
        DataSize::Small => (12_000, 8), // ≈ 0.8 MB
        DataSize::Large => (40_000, 8), // ≈ 2.6 MB
    }
}

/// The sort workload.
pub struct Sort;

impl Workload for Sort {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn category(&self) -> Category {
        Category::Micro
    }

    fn data_description(&self, size: DataSize) -> String {
        let (lines, words) = profile(size);
        format!(
            "{lines} text lines × {words} words (≈{} KB)",
            lines * words * 6 / 1024
        )
    }

    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let (lines, words) = profile(size);
        let partitions = sc.conf().parallelism();
        let per_part = lines.div_ceil(partitions);
        let vocab = 50_000;

        let input = sc.generate(
            partitions,
            move |part| {
                let mut rng = rng_for(seed, part);
                let lo = part * per_part;
                let hi = (lo + per_part).min(lines);
                (lo..hi)
                    .map(|_| random_line(&mut rng, words, vocab))
                    .collect::<Vec<String>>()
            },
            OpCost::cpu(200.0),
        );

        let sorted = input
            .map(|line| (line.clone(), ()))
            .sort_by_key(partitions)?
            .keys();
        sorted.save_as_text_file(&format!("/out/sort-{}-{seed}", size.label()))?;
        let out = sorted.collect()?;

        // Quality: number of adjacent inversions (must be 0).
        let inversions = out.windows(2).filter(|w| w[0] > w[1]).count();
        let checksum = out
            .iter()
            .fold(0u64, |acc, l| super::fnv_fold(acc, l.as_bytes()));
        Ok(WorkloadOutput {
            output_records: out.len() as u64,
            checksum,
            quality: inversions as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn sorts_correctly_and_deterministically() {
        let run = || {
            let sc = SparkContext::new(SparkConf::default().with_parallelism(8)).unwrap();
            Sort.run(&sc, DataSize::Tiny, 7).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.quality, 0.0, "output must be totally ordered");
        assert_eq!(a.output_records, 500);
    }
}
