//! `rf` — random-forest training via distributed histogram splits.
//!
//! Table II: 10/100/1 000 examples with 100/500/1 000 features. We scale
//! examples *up* (200/1 000/4 000) and features down (20/50/100) so the
//! distributed split-finding actually has work per task while the total
//! volume stays laptop-scale. The algorithm is the classic
//! histogram-based level-wise tree growth (Spark MLlib's strategy):
//! for every tree level, each task bins its examples per (tree, node,
//! feature, bin) and a `reduce_by_key` aggregates the class histograms from
//! which the driver picks the best Gini splits.

use crate::gen::rng_for;
use crate::suite::{Category, DataSize, Workload, WorkloadOutput};
use rand::Rng;
use sparklite::error::Result;
use sparklite::{OpCost, SparkContext};
use std::collections::{BTreeMap, HashMap};

/// Class histogram per (feature, bin): (negatives, positives).
type FeatureBins = BTreeMap<(u16, u8), (u64, u64)>;
/// Per-feature list of (bin, (negatives, positives)).
type BinList = Vec<(u8, (u64, u64))>;

/// (examples, features) per profile.
fn profile(size: DataSize) -> (usize, usize) {
    match size {
        DataSize::Tiny => (200, 20),
        DataSize::Small => (1_000, 50),
        DataSize::Large => (4_000, 100),
    }
}

/// Trees in the forest.
const TREES: usize = 8;
/// Tree depth (levels of split finding).
const DEPTH: usize = 3;
/// Histogram bins per feature.
const BINS: usize = 8;

/// The random-forest workload.
pub struct RandomForest;

/// A labelled example: binary class + binned feature vector.
type Example = (u8, Vec<u8>);

/// Generate one partition of examples. The label is a noisy function of
/// two planted features, so trees have real signal to find.
fn generate_examples(
    seed: u64,
    part: usize,
    lo: usize,
    hi: usize,
    features: usize,
) -> Vec<Example> {
    let mut rng = rng_for(seed, part);
    (lo..hi)
        .map(|_| {
            let fv: Vec<u8> = (0..features)
                .map(|_| rng.gen_range(0..BINS as u8))
                .collect();
            // Signal spans features 0..4 so every sqrt-feature subsample
            // group contains one informative feature.
            let k = features.min(4);
            let signal: usize = fv[..k].iter().map(|&b| b as usize).sum();
            let noisy = rng.gen::<f64>() < 0.1;
            let label = u8::from((signal >= k * BINS / 2) ^ noisy);
            (label, fv)
        })
        .collect()
}

/// Gini impurity of a (neg, pos) count pair.
fn gini(neg: f64, pos: f64) -> f64 {
    let n = neg + pos;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

impl Workload for RandomForest {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn category(&self) -> Category {
        Category::MachineLearning
    }

    fn data_description(&self, size: DataSize) -> String {
        let (examples, features) = profile(size);
        format!("{examples} examples × {features} features, {TREES} trees depth {DEPTH}")
    }

    #[allow(clippy::needless_range_loop)] // `tree` indexes parallel structures
    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput> {
        let (examples, features) = profile(size);
        let partitions = sc.conf().parallelism();
        let per_part = examples.div_ceil(partitions);

        let data = sc
            .generate(
                partitions,
                move |part| {
                    let lo = part * per_part;
                    let hi = (lo + per_part).min(examples);
                    generate_examples(seed, part, lo, hi, features)
                },
                OpCost::cpu(100.0),
            )
            .cache();
        data.count()?;

        // splits[tree][level] = map node -> (feature, threshold_bin).
        let mut splits: Vec<HashMap<u32, (u16, u8, u8, u8)>> = vec![HashMap::new(); TREES];
        let mut checksum = 0u64;

        for level in 0..DEPTH {
            let splits_snapshot = splits.clone();
            let tree_seed = seed ^ 0xF0;
            // Histogram: ((tree, node, feature, bin), (neg, pos)).
            let hists = data
                .flat_map_with_cost(
                    move |(label, fv)| {
                        let mut out = Vec::with_capacity(TREES * fv.len());
                        for tree in 0..TREES {
                            // Bootstrap: each tree sees ~63% of examples,
                            // selected deterministically per (tree, row).
                            let row_hash =
                                super::fnv_fold(tree_seed ^ tree as u64, &fv[..fv.len().min(4)]);
                            if row_hash % 100 >= 63 {
                                continue;
                            }
                            // Route the example to its current leaf node.
                            let mut node = 1u32;
                            for lvl in 0..level {
                                match splits_snapshot[tree].get(&node) {
                                    Some(&(f, t, _, _)) => {
                                        node = node * 2 + u32::from(fv[f as usize] > t);
                                    }
                                    None => break,
                                }
                                let _ = lvl;
                            }
                            // Feature subsampling: sqrt(features) per node.
                            let stride = (fv.len() as f64).sqrt().max(1.0) as usize;
                            for f in (tree % stride..fv.len()).step_by(stride) {
                                let bin = fv[f];
                                let key = (tree as u16, node, f as u16, bin);
                                let counts = if *label == 0 {
                                    (1u64, 0u64)
                                } else {
                                    (0u64, 1u64)
                                };
                                out.push((key, counts));
                            }
                        }
                        out
                    },
                    OpCost::cpu(25.0).with_reads(1.0),
                )
                .reduce_by_key(|a, b| (a.0 + b.0, a.1 + b.1))
                .collect()?;

            // Driver-side: pick best Gini split per (tree, node). BTreeMaps
            // keep iteration (and thus the checksum fold and split
            // tie-breaking) deterministic.
            let mut by_node: BTreeMap<(u16, u32), FeatureBins> = BTreeMap::new();
            for ((tree, node, f, bin), counts) in hists {
                let slot = by_node
                    .entry((tree, node))
                    .or_default()
                    .entry((f, bin))
                    .or_insert((0, 0));
                slot.0 += counts.0;
                slot.1 += counts.1;
            }
            for ((tree, node), feature_bins) in by_node {
                // For each feature, evaluate every bin threshold.
                let mut per_feature: BTreeMap<u16, BinList> = BTreeMap::new();
                for ((f, bin), c) in feature_bins {
                    per_feature.entry(f).or_default().push((bin, c));
                }
                let mut best: Option<(f64, u16, u8, u8, u8)> = None;
                for (f, mut bins) in per_feature {
                    bins.sort_by_key(|&(b, _)| b);
                    let total: (u64, u64) = bins
                        .iter()
                        .fold((0, 0), |a, &(_, c)| (a.0 + c.0, a.1 + c.1));
                    let mut left = (0u64, 0u64);
                    for &(bin, c) in &bins[..bins.len().saturating_sub(1)] {
                        left = (left.0 + c.0, left.1 + c.1);
                        let right = (total.0 - left.0, total.1 - left.1);
                        let nl = (left.0 + left.1) as f64;
                        let nr = (right.0 + right.1) as f64;
                        let n = nl + nr;
                        if nl == 0.0 || nr == 0.0 {
                            continue;
                        }
                        let g = (nl / n) * gini(left.0 as f64, left.1 as f64)
                            + (nr / n) * gini(right.0 as f64, right.1 as f64);
                        if best.is_none_or(|(bg, _, _, _, _)| g < bg) {
                            let l_label = u8::from(left.1 > left.0);
                            let r_label = u8::from(right.1 > right.0);
                            best = Some((g, f, bin, l_label, r_label));
                        }
                    }
                }
                if let Some((g, f, bin, l_label, r_label)) = best {
                    splits[tree as usize].insert(node, (f, bin, l_label, r_label));
                    checksum = super::fnv_fold(
                        checksum,
                        &[tree as u8, node as u8, f as u8, bin, (g * 100.0) as u8],
                    );
                }
            }
        }

        // Quality: forest training accuracy on a held-out sample.
        let test = generate_examples(seed ^ 0xE5A, 999, 0, 300, features);
        let mut correct = 0usize;
        for (label, fv) in &test {
            let mut votes = 0usize;
            for tree in 0..TREES {
                let mut node = 1u32;
                let mut prediction = 0u8;
                for _ in 0..DEPTH {
                    match splits[tree].get(&node) {
                        Some(&(f, t, l_label, r_label)) => {
                            let right = fv[f as usize] > t;
                            node = node * 2 + u32::from(right);
                            prediction = if right { r_label } else { l_label };
                        }
                        None => break,
                    }
                }
                votes += prediction as usize;
            }
            let forest_says = u8::from(votes * 2 > TREES);
            if forest_says == *label {
                correct += 1;
            }
        }

        let nodes: u64 = splits.iter().map(|t| t.len() as u64).sum();
        Ok(WorkloadOutput {
            output_records: nodes,
            checksum,
            quality: correct as f64 / test.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklite::SparkConf;

    #[test]
    fn gini_basics() {
        assert_eq!(gini(0.0, 0.0), 0.0);
        assert_eq!(gini(10.0, 0.0), 0.0);
        assert!((gini(5.0, 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forest_learns_planted_signal() {
        let sc = SparkContext::new(SparkConf::default().with_parallelism(4)).unwrap();
        let out = RandomForest.run(&sc, DataSize::Tiny, 21).unwrap();
        assert!(out.output_records > 0, "no splits were found");
        assert!(
            out.quality > 0.6,
            "forest accuracy barely above chance: {}",
            out.quality
        );
    }
}
