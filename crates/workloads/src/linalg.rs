//! Tiny dense linear algebra for the ML workloads (ALS normal equations).

/// Solve the symmetric positive-definite system `a·x = b` in place via
/// Cholesky-free Gaussian elimination with partial pivoting. `a` is a
/// row-major `n×n` matrix. Returns `None` on a (numerically) singular
/// system.
#[allow(clippy::needless_range_loop)] // index arithmetic is the algorithm
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n), "shape");
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("NaN in system")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Rank-1 update `a += x·xᵀ` on a row-major square matrix.
pub fn add_outer(a: &mut [Vec<f64>], x: &[f64]) {
    for (i, row) in a.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell += x[i] * x[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_dense(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn outer_and_dot() {
        let mut a = vec![vec![0.0; 2]; 2];
        add_outer(&mut a, &[1.0, 2.0]);
        assert_eq!(a, vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
