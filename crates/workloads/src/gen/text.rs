//! Synthetic text generation (the `sort` / `bayes` input corpus).

use rand::Rng;

const SYLLABLES: [&str; 16] = [
    "ka", "to", "mi", "ra", "zu", "be", "no", "li", "sa", "du", "we", "po", "chi", "va", "ne",
    "gor",
];

/// A pronounceable pseudo-word for vocabulary index `idx` (bijective, so a
/// vocabulary of any size has distinct words).
pub fn random_word(idx: usize) -> String {
    let mut s = String::new();
    let mut v = idx + 1;
    while v > 0 {
        s.push_str(SYLLABLES[v % SYLLABLES.len()]);
        v /= SYLLABLES.len();
    }
    s
}

/// A random text line of `words` words drawn uniformly from a vocabulary of
/// `vocab` words.
pub fn random_line<R: Rng>(rng: &mut R, words: usize, vocab: usize) -> String {
    let mut line = String::with_capacity(words * 6);
    for i in 0..words {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&random_word(rng.gen_range(0..vocab.max(1))));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng_for;
    use std::collections::HashSet;

    #[test]
    fn words_are_distinct() {
        let words: HashSet<String> = (0..10_000).map(random_word).collect();
        assert_eq!(words.len(), 10_000);
    }

    #[test]
    fn line_has_requested_word_count() {
        let mut rng = rng_for(3, 0);
        let line = random_line(&mut rng, 12, 100);
        assert_eq!(line.split(' ').count(), 12);
        assert!(!line.contains("  "));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_line(&mut rng_for(9, 4), 8, 50);
        let b = random_line(&mut rng_for(9, 4), 8, 50);
        assert_eq!(a, b);
    }
}
