//! Rating-matrix generation for `als`.

use crate::gen::rng_for;
use rand::Rng;

/// Generate `count` ratings `(user, product, rating)` with a planted
/// low-rank structure: each user/product has a latent 4-vector and the
/// rating is their (noised, clamped) inner product — so ALS has signal to
/// recover and the test suite can check reconstruction error drops.
pub fn generate_ratings(
    seed: u64,
    partition: usize,
    count: usize,
    users: u64,
    products: u64,
) -> Vec<(u64, u64, f32)> {
    assert!(users > 0 && products > 0);
    let mut rng = rng_for(seed, partition);
    let latent = |id: u64, salt: u64| -> [f32; 4] {
        let mut r = rng_for(seed ^ salt, id as usize);
        [0; 4].map(|_| r.gen_range(0.2f32..1.2))
    };
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..users);
            let p = rng.gen_range(0..products);
            let fu = latent(u, 0xA11CE);
            let fp = latent(p, 0xB0B);
            let dot: f32 = fu.iter().zip(&fp).map(|(a, b)| a * b).sum();
            let noise: f32 = rng.gen_range(-0.1..0.1);
            (u, p, (dot + noise).clamp(0.1, 5.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let ratings = generate_ratings(1, 0, 500, 20, 30);
        assert_eq!(ratings.len(), 500);
        for &(u, p, r) in &ratings {
            assert!(u < 20);
            assert!(p < 30);
            assert!((0.1..=5.0).contains(&r));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_ratings(7, 3, 100, 10, 10),
            generate_ratings(7, 3, 100, 10, 10)
        );
    }

    #[test]
    fn same_pair_gets_consistent_signal() {
        // Two draws of the same (user, product) should differ only by noise.
        let ratings = generate_ratings(2, 0, 50_000, 5, 5);
        let mut by_pair: std::collections::HashMap<(u64, u64), Vec<f32>> = Default::default();
        for (u, p, r) in ratings {
            by_pair.entry((u, p)).or_default().push(r);
        }
        for (_, rs) in by_pair {
            if rs.len() > 1 {
                let min = rs.iter().cloned().fold(f32::MAX, f32::min);
                let max = rs.iter().cloned().fold(f32::MIN, f32::max);
                assert!(max - min <= 0.2 + 1e-5, "noise band exceeded: {rs:?}");
            }
        }
    }
}
