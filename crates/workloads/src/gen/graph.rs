//! Web-graph generation for `pagerank`.

use crate::gen::rng_for;
use crate::gen::zipf::Zipf;

/// Generate the outgoing links of pages `[lo, hi)` for a graph of `pages`
/// pages: out-degrees follow Zipf over `[1, max_degree]` and targets are
/// preferentially attached (Zipf over page ids), giving the skewed in-degree
/// distribution real web graphs (and HiBench's pagerank generator) have.
pub fn generate_links(
    seed: u64,
    partition: usize,
    lo: u64,
    hi: u64,
    pages: u64,
    max_degree: usize,
) -> Vec<(u64, u64)> {
    assert!(pages > 0 && lo <= hi && hi <= pages);
    let mut rng = rng_for(seed, partition);
    let degree_dist = Zipf::new(max_degree.max(1), 0.8);
    let target_dist = Zipf::new(pages as usize, 0.6);
    let mut links = Vec::new();
    for page in lo..hi {
        let degree = degree_dist.sample(&mut rng) + 1;
        for _ in 0..degree {
            let mut target = target_dist.sample(&mut rng) as u64;
            if target == page {
                target = (target + 1) % pages;
            }
            links.push((page, target));
        }
    }
    // Ensure every source page has at least one link (dangling sources
    // would leak rank mass in the simple power iteration).
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_in_range_and_self_loop_free() {
        let links = generate_links(1, 0, 0, 100, 100, 10);
        assert!(!links.is_empty());
        for &(src, dst) in &links {
            assert!(src < 100);
            assert!(dst < 100);
            assert_ne!(src, dst);
        }
    }

    #[test]
    fn every_source_in_range_has_links() {
        let links = generate_links(5, 0, 10, 20, 100, 6);
        let sources: std::collections::HashSet<u64> = links.iter().map(|&(s, _)| s).collect();
        for page in 10..20 {
            assert!(sources.contains(&page), "page {page} has no out-links");
        }
        assert!(links.iter().all(|&(s, _)| (10..20).contains(&s)));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            generate_links(9, 2, 0, 50, 200, 8),
            generate_links(9, 2, 0, 50, 200, 8)
        );
    }

    #[test]
    fn in_degree_is_skewed() {
        let links = generate_links(3, 0, 0, 2000, 2000, 10);
        let mut indeg = vec![0usize; 2000];
        for &(_, d) in &links {
            indeg[d as usize] += 1;
        }
        let mut sorted = indeg.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = sorted[..20].iter().sum();
        assert!(
            top_share as f64 / links.len() as f64 > 0.05,
            "expected a skewed in-degree head"
        );
    }
}
