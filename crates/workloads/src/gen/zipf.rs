//! Zipf-distributed sampling (word frequencies, graph degrees).

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` using precomputed cumulative
/// weights (exact inverse-CDF sampling; O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite/non-negative.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n` (0 is the most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng_for;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rng_for(7, 0);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = rng_for(42, 0);
        let mut head = 0;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With alpha=1.2 over 1000 ranks, the top-10 mass is > 40 %.
        assert!(head as f64 / N as f64 > 0.4, "head mass {head}/{N}");
    }

    #[test]
    fn alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rng_for(1, 0);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
