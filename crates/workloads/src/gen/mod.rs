//! Deterministic, seeded data generators (the HiBench data-prep stage).

pub mod graph;
pub mod ratings;
pub mod text;
pub mod zipf;

pub use graph::generate_links;
pub use ratings::generate_ratings;
pub use text::{random_line, random_word};
pub use zipf::Zipf;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The suite's RNG: seeded ChaCha8, deterministic across platforms.
pub type SuiteRng = ChaCha8Rng;

/// Derive a per-partition RNG from a workload seed.
pub fn rng_for(seed: u64, partition: usize) -> SuiteRng {
    // Golden-ratio mix keeps neighbouring partitions decorrelated.
    SuiteRng::seed_from_u64(seed ^ (partition as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_partition_rngs_are_deterministic_and_distinct() {
        let a1: u64 = rng_for(1, 0).gen();
        let a2: u64 = rng_for(1, 0).gen();
        let b: u64 = rng_for(1, 1).gen();
        let c: u64 = rng_for(2, 0).gen();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }
}
