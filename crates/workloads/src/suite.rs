//! The suite registry: workload trait, size profiles, Table II metadata.

use serde::{Deserialize, Serialize};
use sparklite::error::Result;
use sparklite::SparkContext;

/// Input scale, matching the paper's tiny/small/large profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSize {
    /// Smallest profile.
    Tiny,
    /// Middle profile.
    Small,
    /// Largest profile.
    Large,
}

impl DataSize {
    /// All sizes in ascending order.
    pub fn all() -> [DataSize; 3] {
        [DataSize::Tiny, DataSize::Small, DataSize::Large]
    }

    /// Lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            DataSize::Tiny => "tiny",
            DataSize::Small => "small",
            DataSize::Large => "large",
        }
    }
}

impl std::fmt::Display for DataSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload category (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Micro-operations (sort, repartition).
    Micro,
    /// Machine learning (als, bayes, rf, lda).
    MachineLearning,
    /// Web search (pagerank).
    WebSearch,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Category::Micro => "micro",
            Category::MachineLearning => "ml",
            Category::WebSearch => "websearch",
        })
    }
}

/// What a workload hands back for verification.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutput {
    /// Records in the job's principal output.
    pub output_records: u64,
    /// A deterministic checksum over the output (implementation-defined but
    /// stable for a given seed), used by the determinism tests.
    pub checksum: u64,
    /// An algorithm-specific quality figure (sortedness violations, rank
    /// mass, reconstruction error, ...); its meaning is documented per app.
    pub quality: f64,
}

/// One benchmark application.
pub trait Workload: Send + Sync {
    /// Short HiBench-style name (`sort`, `pagerank`, ...).
    fn name(&self) -> &'static str;
    /// Category.
    fn category(&self) -> Category;
    /// Human-readable description of the input at `size` (our scaled
    /// Table II row).
    fn data_description(&self, size: DataSize) -> String;
    /// Run against a context. Deterministic in `(size, seed)`.
    fn run(&self, sc: &SparkContext, size: DataSize, seed: u64) -> Result<WorkloadOutput>;
}

/// All seven workloads in the paper's Table II order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::apps::sort::Sort),
        Box::new(crate::apps::repartition::Repartition),
        Box::new(crate::apps::als::Als),
        Box::new(crate::apps::bayes::Bayes),
        Box::new(crate::apps::rf::RandomForest),
        Box::new(crate::apps::lda::Lda),
        Box::new(crate::apps::pagerank::PageRank),
    ]
}

/// Look a workload up by name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "sort",
                "repartition",
                "als",
                "bayes",
                "rf",
                "lda",
                "pagerank"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("pagerank").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn categories_match_paper() {
        let cat = |n: &str| workload_by_name(n).unwrap().category();
        assert_eq!(cat("sort"), Category::Micro);
        assert_eq!(cat("repartition"), Category::Micro);
        assert_eq!(cat("als"), Category::MachineLearning);
        assert_eq!(cat("bayes"), Category::MachineLearning);
        assert_eq!(cat("rf"), Category::MachineLearning);
        assert_eq!(cat("lda"), Category::MachineLearning);
        assert_eq!(cat("pagerank"), Category::WebSearch);
    }

    #[test]
    fn descriptions_are_size_specific() {
        for w in all_workloads() {
            let d: Vec<String> = DataSize::all()
                .iter()
                .map(|&s| w.data_description(s))
                .collect();
            assert_ne!(d[0], d[1]);
            assert_ne!(d[1], d[2]);
        }
    }
}
