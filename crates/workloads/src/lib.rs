//! # memtier-workloads — the HiBench-equivalent suite
//!
//! The paper evaluates seven Spark applications from the HiBench benchmark
//! suite across three workload categories (§III-C, Table II). This crate
//! implements all seven against the `sparklite` public API, each with
//! `tiny` / `small` / `large` input profiles and a deterministic, seeded
//! data generator:
//!
//! | App          | Category          | Dataflow |
//! |--------------|-------------------|----------|
//! | `sort`       | micro             | text gen → `sort_by_key` → DFS write |
//! | `repartition`| micro             | record gen → `partition_by` (pure shuffle) |
//! | `als`        | machine learning  | alternating least squares, 8-dim factors |
//! | `bayes`      | machine learning  | multinomial naive Bayes training over a large vocabulary |
//! | `rf`         | machine learning  | random-forest training via distributed histogram splits |
//! | `lda`        | machine learning  | EM-style LDA with a word×topic count table |
//! | `pagerank`   | websearch         | classic cached-links power iteration |
//!
//! Dataset sizes are scaled down from Table II (~1/100–1/800, documented per
//! app) so the whole characterization campaign runs in seconds; relative
//! tiny/small/large proportions and the per-app access *mixes* (read- vs
//! write-heavy, cache-resident vs table-thrashing) are preserved, which is
//! what the paper's shapes depend on.
//!
//! Every workload returns a [`WorkloadOutput`] with verification values so
//! the test suite can check algorithmic correctness, not just completion.

#![warn(missing_docs)]

pub mod apps;
pub mod gen;
pub mod linalg;
pub mod suite;

pub use suite::{all_workloads, workload_by_name, Category, DataSize, Workload, WorkloadOutput};
