//! Suite-level behavioural invariants: the properties of the seven
//! workloads that the paper's characterization depends on.

use memtier_memsim::TierId;
use memtier_workloads::{all_workloads, workload_by_name, DataSize, Workload};
use sparklite::{SparkConf, SparkContext};

fn run_on(w: &dyn Workload, size: DataSize, tier: TierId) -> (f64, u64, u64, f64) {
    let sc = SparkContext::new(SparkConf::bound_to_tier(tier)).unwrap();
    w.run(&sc, size, 42).unwrap();
    let report = sc.finish();
    let c = report.telemetry.counters.tier(tier);
    (
        report.elapsed.as_secs_f64(),
        c.reads,
        c.writes,
        c.writes as f64 / (c.reads + c.writes).max(1) as f64,
    )
}

#[test]
fn every_workload_slows_down_monotonically_across_tiers() {
    for w in all_workloads() {
        let mut prev = 0.0;
        for tier in TierId::all() {
            let (t, _, _, _) = run_on(w.as_ref(), DataSize::Tiny, tier);
            assert!(
                t > prev,
                "{} tiny: tier ordering violated at {tier} ({t} <= {prev})",
                w.name()
            );
            prev = t;
        }
    }
}

#[test]
fn access_counts_grow_with_input_size() {
    for w in all_workloads() {
        let (_, r1, w1, _) = run_on(w.as_ref(), DataSize::Tiny, TierId::NVM_NEAR);
        let (_, r2, w2, _) = run_on(w.as_ref(), DataSize::Large, TierId::NVM_NEAR);
        assert!(
            r2 + w2 > r1 + w1,
            "{}: large must touch more memory than tiny ({} vs {})",
            w.name(),
            r2 + w2,
            r1 + w1
        );
    }
}

#[test]
fn heavy_workloads_access_an_order_of_magnitude_more() {
    // Fig. 2 middle's observation: bayes/lda/pagerank vs the micro apps.
    let total = |name: &str| {
        let (_, r, w, _) = run_on(
            workload_by_name(name).unwrap().as_ref(),
            DataSize::Large,
            TierId::NVM_NEAR,
        );
        r + w
    };
    let repartition = total("repartition");
    for heavy in ["lda", "pagerank"] {
        assert!(
            total(heavy) > 4 * repartition,
            "{heavy} must be access-heavy vs repartition"
        );
    }
}

#[test]
fn lda_is_the_most_write_intensive_workload() {
    let mut ratios: Vec<(String, f64)> = all_workloads()
        .iter()
        .map(|w| {
            let (_, _, _, ratio) = run_on(w.as_ref(), DataSize::Large, TierId::NVM_NEAR);
            (w.name().to_string(), ratio)
        })
        .collect();
    ratios.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    assert_eq!(
        ratios[0].0, "lda",
        "lda must lead the write-ratio ranking: {ratios:?}"
    );
}

#[test]
fn als_runtime_is_flattest_across_sizes() {
    // Takeaway of Fig. 2 top: als is near-constant while others grow.
    let growth = |name: &str| {
        let w = workload_by_name(name).unwrap();
        let (tiny, _, _, _) = run_on(w.as_ref(), DataSize::Tiny, TierId::LOCAL_DRAM);
        let (large, _, _, _) = run_on(w.as_ref(), DataSize::Large, TierId::LOCAL_DRAM);
        large / tiny
    };
    let als = growth("als");
    assert!(als < 2.5, "als growth must stay small ({als})");
    assert!(
        growth("sort") > als * 0.5,
        "sanity: sort grows comparably or more"
    );
    assert!(growth("lda") > als, "lda must grow faster than als");
}

#[test]
fn seed_changes_output_but_structure_remains() {
    let w = workload_by_name("pagerank").unwrap();
    let sc1 = SparkContext::new(SparkConf::default()).unwrap();
    let out1 = w.run(&sc1, DataSize::Tiny, 1).unwrap();
    let sc2 = SparkContext::new(SparkConf::default()).unwrap();
    let out2 = w.run(&sc2, DataSize::Tiny, 2).unwrap();
    assert_ne!(
        out1.checksum, out2.checksum,
        "different seeds, different graphs"
    );
    // Output covers pages that receive links; both graphs have 50 pages,
    // so the counts are close but not necessarily identical.
    for out in [&out1, &out2] {
        assert!(
            (25..=50).contains(&out.output_records),
            "tiny pagerank output {} out of structural range",
            out.output_records
        );
    }
}

#[test]
fn table2_descriptions_match_scaled_profiles() {
    let sort = workload_by_name("sort").unwrap();
    assert!(sort.data_description(DataSize::Tiny).contains("500"));
    let als = workload_by_name("als").unwrap();
    // als keeps Table II verbatim.
    assert!(als
        .data_description(DataSize::Large)
        .contains("10000 users"));
    assert!(als
        .data_description(DataSize::Large)
        .contains("20000 ratings"));
    let pagerank = workload_by_name("pagerank").unwrap();
    assert!(pagerank
        .data_description(DataSize::Tiny)
        .contains("50 pages"));
}

#[test]
fn quality_figures_are_meaningful_at_small_scale() {
    // Every app's quality metric must clear its documented bar at `small`.
    let check = |name: &str, f: &dyn Fn(f64) -> bool| {
        let sc = SparkContext::new(SparkConf::default()).unwrap();
        let out = workload_by_name(name)
            .unwrap()
            .run(&sc, DataSize::Small, 42)
            .unwrap();
        assert!(
            f(out.quality),
            "{name} quality {} out of range",
            out.quality
        );
    };
    check("sort", &|q| q == 0.0); // zero inversions
    check("repartition", &|q| q > 0.0 && q < 2.0); // balance factor
    check("bayes", &|q| q > 0.3); // accuracy over 20 classes (chance 0.05)
    check("pagerank", &|q| q > 0.5 && q <= 1.01); // rank mass
}
