//! Property tests for the data generators: structural invariants that must
//! hold for any seed, partition or size the suite might use.

use memtier_workloads::gen::{generate_links, generate_ratings, random_line, rng_for, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf sampling stays in range and is deterministic per RNG state.
    #[test]
    fn zipf_in_range_and_deterministic(
        n in 1usize..5_000,
        alpha in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let z = Zipf::new(n, alpha);
        let a: Vec<usize> = {
            let mut rng = rng_for(seed, 0);
            (0..200).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = rng_for(seed, 0);
            (0..200).map(|_| z.sample(&mut rng)).collect()
        };
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&x| x < n));
    }

    /// Graph generation: every edge in range, no self loops, every source
    /// in `[lo, hi)` has at least one out-edge, deterministic.
    #[test]
    fn graph_structure(
        seed in any::<u64>(),
        pages in 2u64..2_000,
        degree in 1usize..20,
        split in 0.0f64..1.0,
    ) {
        let lo = (pages as f64 * split * 0.5) as u64;
        let hi = (lo + pages / 2).min(pages);
        prop_assume!(lo < hi);
        let links = generate_links(seed, 3, lo, hi, pages, degree);
        prop_assert_eq!(&links, &generate_links(seed, 3, lo, hi, pages, degree));
        let mut sources = std::collections::HashSet::new();
        for &(s, d) in &links {
            prop_assert!((lo..hi).contains(&s));
            prop_assert!(d < pages);
            prop_assert_ne!(s, d);
            sources.insert(s);
        }
        prop_assert_eq!(sources.len() as u64, hi - lo, "every page needs out-links");
    }

    /// Ratings: ids in range, values clamped, count exact.
    #[test]
    fn ratings_structure(
        seed in any::<u64>(),
        count in 0usize..2_000,
        users in 1u64..500,
        products in 1u64..500,
    ) {
        let ratings = generate_ratings(seed, 1, count, users, products);
        prop_assert_eq!(ratings.len(), count);
        for &(u, p, r) in &ratings {
            prop_assert!(u < users);
            prop_assert!(p < products);
            prop_assert!((0.1..=5.0).contains(&r));
        }
    }

    /// Text lines: exact word count, words drawn from the vocabulary, no
    /// double spaces, deterministic.
    #[test]
    fn text_structure(seed in any::<u64>(), words in 1usize..40, vocab in 1usize..10_000) {
        let mut rng = rng_for(seed, 9);
        let line = random_line(&mut rng, words, vocab);
        prop_assert_eq!(line.split(' ').count(), words);
        prop_assert!(!line.contains("  "));
        prop_assert!(!line.is_empty());
        let mut rng2 = rng_for(seed, 9);
        prop_assert_eq!(line, random_line(&mut rng2, words, vocab));
    }
}
