//! Property tests: the DFS round-trips arbitrary payloads under arbitrary
//! block sizes, replication factors and cluster shapes.

use memtier_dfs::Dfs;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-file round trip for arbitrary bytes / block size / replication.
    #[test]
    fn roundtrip(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        block_size in 1usize..2048,
        datanodes in 1usize..6,
        replication in 1usize..4,
    ) {
        prop_assume!(replication <= datanodes);
        let dfs = Dfs::new(datanodes, 1 << 30);
        let c = dfs.client();
        c.write_file("/f", &data, block_size, replication).unwrap();
        prop_assert_eq!(c.read_file("/f").unwrap(), data.clone());
        // Storage accounting: replication × payload.
        prop_assert_eq!(dfs.used_bytes(), (replication * data.len()) as u64);
        // Block structure: ceil division, all full except possibly the last.
        let st = c.stat("/f").unwrap();
        prop_assert_eq!(st.blocks.len(), data.len().div_ceil(block_size));
        for (i, b) in st.blocks.iter().enumerate() {
            if i + 1 < st.blocks.len() {
                prop_assert_eq!(b.len, block_size);
            }
            prop_assert_eq!(b.replicas.len(), replication);
            // Replicas land on distinct nodes.
            let mut nodes: Vec<_> = b.replicas.clone();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), replication);
        }
    }

    /// Any single replica of every block can be lost without data loss
    /// when replication ≥ 2.
    #[test]
    fn single_fault_tolerance(
        data in prop::collection::vec(any::<u8>(), 1..4096),
        block_size in 1usize..512,
        victim_choice in any::<u8>(),
    ) {
        let dfs = Dfs::new(4, 1 << 30);
        let c = dfs.client();
        c.write_file("/f", &data, block_size, 2).unwrap();
        let st = c.stat("/f").unwrap();
        // Read each block with its (victim_choice-selected) replica gone.
        let mut out = Vec::new();
        for b in &st.blocks {
            let victim = b.replicas[victim_choice as usize % b.replicas.len()];
            // The client falls back to the surviving replica when the
            // preferred one is the *other* node.
            let survivor = *b.replicas.iter().find(|&&r| r != victim).unwrap();
            let bytes = c.read_block(b, Some(survivor)).unwrap();
            out.extend_from_slice(&bytes);
        }
        prop_assert_eq!(out, data);
    }

    /// Delete always frees exactly what write allocated.
    #[test]
    fn delete_is_exact_inverse(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        block_size in 1usize..512,
    ) {
        let dfs = Dfs::new(3, 1 << 30);
        let c = dfs.client();
        c.write_file("/f", &data, block_size, 2).unwrap();
        c.delete("/f").unwrap();
        prop_assert_eq!(dfs.used_bytes(), 0);
        prop_assert!(!c.exists("/f"));
    }
}

#[test]
fn kill_and_rereplicate_restores_redundancy() {
    let dfs = Dfs::new(4, 1 << 30);
    let c = dfs.client();
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    c.write_file("/f", &data, 512, 2).unwrap();
    let before = dfs.used_bytes();

    let dropped = dfs.kill_datanode(memtier_dfs::DataNodeId(0));
    assert!(dropped > 0, "node 0 should have held replicas");
    assert!(dfs.used_bytes() < before);
    // Still readable with one replica lost.
    assert_eq!(c.read_file("/f").unwrap(), data);

    let created = dfs.rereplicate().unwrap();
    assert_eq!(created, dropped, "every lost replica must be recreated");
    assert_eq!(dfs.used_bytes(), before);
    // Every block again has 2 live replicas somewhere.
    let st = c.stat("/f").unwrap();
    for b in &st.blocks {
        assert!(c.read_block(b, None).is_ok());
    }
    // Idempotent.
    assert_eq!(dfs.rereplicate().unwrap(), 0);
}

#[test]
fn rereplicate_fails_when_all_replicas_lost() {
    let dfs = Dfs::new(2, 1 << 30);
    let c = dfs.client();
    c.write_file("/f", &[1u8; 100], 100, 2).unwrap();
    dfs.kill_datanode(memtier_dfs::DataNodeId(0));
    dfs.kill_datanode(memtier_dfs::DataNodeId(1));
    assert!(dfs.rereplicate().is_err());
}
