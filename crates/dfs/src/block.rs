//! Block identifiers and metadata.

use crate::datanode::DataNodeId;

/// Globally unique block identifier, allocated by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Namenode-side metadata for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// The block.
    pub id: BlockId,
    /// Payload length in bytes (≤ the file's block size; the last block of a
    /// file is usually short).
    pub len: usize,
    /// Datanodes holding a replica, in placement order.
    pub replicas: Vec<DataNodeId>,
}

impl BlockInfo {
    /// True if `node` holds a replica.
    pub fn is_local_to(&self, node: DataNodeId) -> bool {
        self.replicas.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let info = BlockInfo {
            id: BlockId(7),
            len: 100,
            replicas: vec![DataNodeId(0), DataNodeId(2)],
        };
        assert!(info.is_local_to(DataNodeId(0)));
        assert!(info.is_local_to(DataNodeId(2)));
        assert!(!info.is_local_to(DataNodeId(1)));
    }
}
