//! The namenode: file → block → replica metadata and placement decisions.

use crate::block::{BlockId, BlockInfo};
use crate::datanode::DataNodeId;
use crate::error::DfsError;
use std::collections::BTreeMap;

/// Namenode metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Absolute path.
    pub path: String,
    /// File length in bytes.
    pub len: u64,
    /// Block size the file was written with.
    pub block_size: usize,
    /// Replication factor.
    pub replication: usize,
    /// The file's blocks in order.
    pub blocks: Vec<BlockInfo>,
}

/// The namenode: authoritative file-system metadata.
///
/// Placement policy: replicas of consecutive blocks rotate round-robin over
/// the datanodes (starting from a per-file offset so files spread out), and
/// the replicas of a single block always land on distinct nodes — the same
/// invariants HDFS' default placement provides on a flat topology.
#[derive(Debug, Default)]
pub struct NameNode {
    files: BTreeMap<String, FileStatus>,
    next_block: u64,
    next_file_offset: usize,
}

impl NameNode {
    /// An empty namespace.
    pub fn new() -> Self {
        NameNode::default()
    }

    /// Plan a new file: allocate block ids and replica placements.
    ///
    /// `lens` are the payload lengths of the file's blocks in order.
    pub fn create_file(
        &mut self,
        path: &str,
        lens: &[usize],
        block_size: usize,
        replication: usize,
        datanodes: usize,
    ) -> Result<FileStatus, DfsError> {
        if path.is_empty() || !path.starts_with('/') {
            return Err(DfsError::InvalidArgument(format!(
                "path must be absolute, got {path:?}"
            )));
        }
        if block_size == 0 {
            return Err(DfsError::InvalidArgument("block size must be > 0".into()));
        }
        if replication == 0 {
            return Err(DfsError::InvalidArgument("replication must be > 0".into()));
        }
        if replication > datanodes {
            return Err(DfsError::InsufficientDataNodes {
                wanted: replication,
                available: datanodes,
            });
        }
        if self.files.contains_key(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }

        let offset = self.next_file_offset;
        self.next_file_offset = self.next_file_offset.wrapping_add(1);
        let blocks: Vec<BlockInfo> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let id = BlockId(self.next_block + i as u64);
                let replicas = (0..replication)
                    .map(|r| DataNodeId(((offset + i + r) % datanodes) as u32))
                    .collect();
                BlockInfo { id, len, replicas }
            })
            .collect();
        self.next_block += lens.len() as u64;

        let status = FileStatus {
            path: path.to_string(),
            len: lens.iter().map(|&l| l as u64).sum(),
            block_size,
            replication,
            blocks,
        };
        self.files.insert(path.to_string(), status.clone());
        Ok(status)
    }

    /// Look up a file.
    pub fn stat(&self, path: &str) -> Result<&FileStatus, DfsError> {
        self.files
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Remove a file, returning its metadata so the caller can free replicas.
    pub fn delete(&mut self, path: &str) -> Result<FileStatus, DfsError> {
        self.files
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// All paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<&FileStatus> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(_, s)| s)
            .collect()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_distinct_replicas() {
        let mut nn = NameNode::new();
        let st = nn.create_file("/f", &[100, 100, 50], 100, 2, 4).unwrap();
        assert_eq!(st.blocks.len(), 3);
        assert_eq!(st.len, 250);
        for b in &st.blocks {
            assert_eq!(b.replicas.len(), 2);
            assert_ne!(b.replicas[0], b.replicas[1], "replicas must differ");
        }
        // Block ids are unique and sequential.
        assert_eq!(st.blocks[0].id, BlockId(0));
        assert_eq!(st.blocks[2].id, BlockId(2));
    }

    #[test]
    fn consecutive_blocks_rotate_nodes() {
        let mut nn = NameNode::new();
        let st = nn.create_file("/f", &[10, 10, 10, 10], 10, 1, 4).unwrap();
        let primaries: Vec<u32> = st.blocks.iter().map(|b| b.replicas[0].0).collect();
        // Round-robin: all four datanodes used.
        let mut sorted = primaries.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn errors() {
        let mut nn = NameNode::new();
        assert!(matches!(
            nn.create_file("relative", &[1], 1, 1, 1),
            Err(DfsError::InvalidArgument(_))
        ));
        assert!(matches!(
            nn.create_file("/f", &[1], 0, 1, 1),
            Err(DfsError::InvalidArgument(_))
        ));
        assert!(matches!(
            nn.create_file("/f", &[1], 1, 3, 2),
            Err(DfsError::InsufficientDataNodes { .. })
        ));
        nn.create_file("/f", &[1], 1, 1, 1).unwrap();
        assert!(matches!(
            nn.create_file("/f", &[1], 1, 1, 1),
            Err(DfsError::FileExists(_))
        ));
        assert!(matches!(nn.stat("/nope"), Err(DfsError::FileNotFound(_))));
    }

    #[test]
    fn list_by_prefix() {
        let mut nn = NameNode::new();
        nn.create_file("/a/1", &[1], 1, 1, 1).unwrap();
        nn.create_file("/a/2", &[1], 1, 1, 1).unwrap();
        nn.create_file("/b/1", &[1], 1, 1, 1).unwrap();
        assert_eq!(nn.list("/a/").len(), 2);
        assert_eq!(nn.list("/").len(), 3);
        assert_eq!(nn.list("/c").len(), 0);
    }

    #[test]
    fn delete_frees_namespace() {
        let mut nn = NameNode::new();
        nn.create_file("/f", &[1], 1, 1, 1).unwrap();
        nn.delete("/f").unwrap();
        assert_eq!(nn.file_count(), 0);
        // Path can be reused after deletion.
        nn.create_file("/f", &[1], 1, 1, 1).unwrap();
    }
}
