//! DFS error types.

use crate::block::BlockId;
use crate::datanode::DataNodeId;
use std::fmt;

/// Errors surfaced by the DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// Path does not exist.
    FileNotFound(String),
    /// Path already exists (files are immutable once written).
    FileExists(String),
    /// A block id the namenode knows nothing about.
    UnknownBlock(BlockId),
    /// No replica of a block could be read.
    AllReplicasUnavailable(BlockId),
    /// A datanode ran out of capacity during placement.
    OutOfCapacity(DataNodeId),
    /// A write targeted a datanode that is currently down.
    DataNodeDown(DataNodeId),
    /// Requested replication exceeds the number of datanodes.
    InsufficientDataNodes {
        /// Replicas requested.
        wanted: usize,
        /// Datanodes available.
        available: usize,
    },
    /// Invalid argument (empty path, zero block size, ...).
    InvalidArgument(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::UnknownBlock(b) => write!(f, "unknown block: {b:?}"),
            DfsError::AllReplicasUnavailable(b) => {
                write!(f, "all replicas unavailable for block {b:?}")
            }
            DfsError::OutOfCapacity(d) => write!(f, "datanode {d:?} out of capacity"),
            DfsError::DataNodeDown(d) => write!(f, "datanode {d:?} is down"),
            DfsError::InsufficientDataNodes { wanted, available } => write!(
                f,
                "replication {wanted} exceeds available datanodes {available}"
            ),
            DfsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DfsError::FileNotFound("/x".into());
        assert!(e.to_string().contains("/x"));
        let e = DfsError::InsufficientDataNodes {
            wanted: 3,
            available: 1,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('1'));
    }
}
